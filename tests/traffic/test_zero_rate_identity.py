"""The zero-rate invariant: null open traffic is bit-identical to the
closed loop.

Mirror of ``tests/faults/test_zero_fault_identity.py``: merely building
the benchmark through :func:`repro.traffic.engine.build_open_system`
with a rate-zero arrival process must change *nothing* — same samples,
same packet log, same busy accounting, same kernel counters as the
seed ``build_conversation_system`` path, because the null source
attaches no tasks, schedules no events, and draws no randomness.
"""

import pytest

from repro.kernel.workload import build_conversation_system
from repro.models.params import Architecture, Mode
from repro.traffic.arrivals import (MMPPArrivals, ParetoArrivals,
                                    PoissonArrivals)
from repro.traffic.engine import build_open_system

HORIZON = 400_000.0


def snapshot(system, meter):
    """Everything observable about a finished run."""
    return {
        "signature": meter.signature(),
        "packets": [(p.source, p.destination, p.kind, p.sent_at,
                     p.status) for p in system.wire.packets],
        "busy": {name: {proc.name: (proc.stats.busy_time,
                                    dict(proc.stats.busy_by_label))
                        for proc in node.processors.everything}
                 for name, node in system.nodes.items()},
        "kernel": {name: (node.kernel.stats.sends,
                          node.kernel.stats.replies,
                          node.kernel.stats.remote_requests_in)
                   for name, node in system.nodes.items()},
        "tasks": sorted(system.all_task_names()),
        "events": system.sim.events_processed,
    }


def run_closed(architecture, mode):
    system, meter = build_conversation_system(
        architecture, mode, 2, 500.0, seed=0)
    system.run_for(HORIZON)
    return snapshot(system, meter)


def run_open_null(architecture, mode, process):
    bench = build_open_system(
        architecture, mode, process, servers=2, mean_compute=500.0,
        seed=0, closed_conversations=2)
    bench.system.run_for(HORIZON)
    assert bench.meter.signature() == bench.meter.__class__(
    ).signature(), "null source must record nothing"
    return snapshot(bench.system, bench.closed_meter)


@pytest.mark.parametrize("mode", [Mode.LOCAL, Mode.NONLOCAL])
@pytest.mark.parametrize("architecture",
                         [Architecture.I, Architecture.II,
                          Architecture.III])
def test_zero_rate_open_system_is_bit_identical(architecture, mode):
    baseline = run_closed(architecture, mode)
    for process in (PoissonArrivals(0.0),
                    MMPPArrivals(0.0, 0.0, 10.0, 10.0),
                    ParetoArrivals(0.0, alpha=1.5)):
        assert run_open_null(architecture, mode, process) == baseline


def test_null_source_consumes_no_randomness():
    """Two null-source builds and one closed build share every RNG
    draw: the traffic rng is never touched for a null process."""
    bench = build_open_system(
        Architecture.II, Mode.LOCAL, PoissonArrivals(0.0), servers=2,
        seed=0, closed_conversations=2)
    # the engine's private rng still holds its initial state
    untouched = bench.source.rng.getstate()
    import random
    import zlib
    assert untouched == random.Random(
        zlib.crc32(b"traffic") ^ 0).getstate()
