"""Arrival-process contracts: validation, mean rates, determinism."""

import math
import random

import pytest

from repro.errors import TrafficError
from repro.traffic.arrivals import (MMPPArrivals, ParetoArrivals,
                                    PoissonArrivals, make_process)


def draw(process, n, seed=0):
    stream = process.stream(random.Random(seed))
    return [next(stream) for _ in range(n)]


# ----------------------------------------------------------------------
# loud validation at construction
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rate", [-1.0, float("nan"), float("inf")])
def test_poisson_rejects_bad_rates(rate):
    with pytest.raises(TrafficError):
        PoissonArrivals(rate)


@pytest.mark.parametrize("alpha", [1.0, 0.5, -2.0, float("nan")])
def test_pareto_rejects_tail_without_mean(alpha):
    with pytest.raises(TrafficError):
        ParetoArrivals(0.001, alpha=alpha)


def test_mmpp_rejects_nonpositive_dwells():
    with pytest.raises(TrafficError):
        MMPPArrivals(0.01, 0.001, mean_on_us=0.0, mean_off_us=100.0)
    with pytest.raises(TrafficError):
        MMPPArrivals(0.01, 0.001, mean_on_us=100.0, mean_off_us=-1.0)


def test_make_process_rejects_unknown_name():
    with pytest.raises(TrafficError, match="unknown arrival process"):
        make_process("uniform", 0.001)


def test_make_process_rejects_impossible_burst_ratio():
    # duty cycle 0.5: peak 3x the mean would need a negative off rate
    with pytest.raises(TrafficError, match="impossible"):
        make_process("mmpp", 0.001, burst_ratio=3.0,
                     mean_on_us=100.0, mean_off_us=100.0)
    with pytest.raises(TrafficError):
        make_process("mmpp", 0.001, burst_ratio=0.5)


# ----------------------------------------------------------------------
# mean-rate contracts
# ----------------------------------------------------------------------

def test_mmpp_derived_off_rate_matches_mean_exactly():
    process = make_process("mmpp", 0.002, burst_ratio=2.0,
                           mean_on_us=20_000.0, mean_off_us=60_000.0)
    assert process.mean_rate_per_us == pytest.approx(0.002, rel=1e-12)
    assert process.rate_on_per_us == pytest.approx(0.004)


def test_pareto_scale_gives_matched_mean_gap():
    process = ParetoArrivals(0.001, alpha=1.5)
    # Pareto mean = scale * alpha / (alpha - 1) = 1 / rate
    assert process.scale_us * 1.5 / 0.5 == pytest.approx(1000.0)
    gaps = draw(process, 200_000, seed=3)
    assert sum(gaps) / len(gaps) == pytest.approx(1000.0, rel=0.2)


def test_poisson_empirical_rate():
    gaps = draw(PoissonArrivals(0.01), 50_000, seed=1)
    assert sum(gaps) / len(gaps) == pytest.approx(100.0, rel=0.05)


def test_null_processes_identified():
    assert PoissonArrivals(0.0).is_null
    assert ParetoArrivals(0.0).is_null
    assert MMPPArrivals(0.0, 0.0, 10.0, 10.0).is_null
    assert not PoissonArrivals(0.001).is_null
    # an off-state burst process still produces arrivals in bursts
    assert not MMPPArrivals(0.01, 0.0, 10.0, 10.0).is_null


def test_gaps_are_finite_and_nonnegative():
    for process in (PoissonArrivals(0.01),
                    make_process("mmpp", 0.01),
                    ParetoArrivals(0.01, alpha=1.2)):
        for gap in draw(process, 5_000, seed=9):
            assert math.isfinite(gap) and gap >= 0.0


# ----------------------------------------------------------------------
# determinism: same seed, same stream; picklable specs
# ----------------------------------------------------------------------

@pytest.mark.parametrize("process", [
    PoissonArrivals(0.005),
    make_process("mmpp", 0.005, burst_ratio=4.0),
    ParetoArrivals(0.005, alpha=1.5),
], ids=["poisson", "mmpp", "pareto"])
def test_streams_are_seed_deterministic(process):
    assert draw(process, 1_000, seed=42) == draw(process, 1_000,
                                                 seed=42)
    assert draw(process, 1_000, seed=42) != draw(process, 1_000,
                                                 seed=43)


def test_specs_pickle_roundtrip():
    import pickle
    for process in (PoissonArrivals(0.005),
                    make_process("mmpp", 0.005),
                    ParetoArrivals(0.005, alpha=1.7)):
        clone = pickle.loads(pickle.dumps(process))
        assert clone == process
        assert draw(clone, 100, seed=5) == draw(process, 100, seed=5)


# ----------------------------------------------------------------------
# batch draws (the engine's chunked hot path)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("process", [PoissonArrivals(0.002),
                                     ParetoArrivals(0.002, alpha=1.5)])
def test_sample_gaps_bit_identical_to_stream(process):
    """A batch of n draws is the same floats, in the same order, from
    the same RNG state as n next() calls on a fresh stream — the
    contract the engine's vectorized chunking stands on."""
    batched = process.sample_gaps(random.Random(7), 4096)
    assert batched == draw(process, 4096, seed=7)


@pytest.mark.parametrize("process", [PoissonArrivals(0.002),
                                     ParetoArrivals(0.002, alpha=1.5)])
def test_sample_gaps_leaves_rng_in_stream_state(process):
    """After n draws both paths leave the RNG in the identical state,
    so batch size never leaks into later draws."""
    rng_batch, rng_stream = random.Random(7), random.Random(7)
    process.sample_gaps(rng_batch, 100)
    stream = process.stream(rng_stream)
    for _ in range(100):
        next(stream)
    assert rng_batch.getstate() == rng_stream.getstate()


def test_sample_gaps_empty_probe_draws_nothing():
    """The engine's zero-length capability probe must not consume
    randomness."""
    rng = random.Random(3)
    before = rng.getstate()
    assert PoissonArrivals(0.002).sample_gaps(rng, 0) == []
    assert rng.getstate() == before


def test_mmpp_is_not_batchable():
    """The modulating chain is stateful across draws, so MMPP opts out
    and the engine slices its persistent stream instead."""
    assert make_process("mmpp", 0.002).sample_gaps(
        random.Random(1), 8) is None
