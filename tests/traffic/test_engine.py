"""Engine behaviour: admission policies, their MP cost accounting,
deadlines, draining, and loud construction errors."""

import pytest

from repro.errors import TrafficError
from repro.models.params import Architecture, Mode
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.engine import (OpenTrafficSource, build_open_system,
                                  check_policy, run_open_experiment)

ARCH = Architecture.II


def overloaded(policy, *, deadline_us=None, seed=4):
    """A point far past saturation with a tiny pool and queue, so the
    admission path is hit constantly."""
    return run_open_experiment(
        ARCH, Mode.LOCAL, PoissonArrivals(0.01),   # ~10 msgs/ms
        servers=1, warmup_us=0.0, measure_us=200_000.0,
        pool_size=1, queue_limit=1, policy=policy,
        deadline_us=deadline_us, seed=seed)


# ----------------------------------------------------------------------
# admission policies: counters + the MP pays for each refusal
# ----------------------------------------------------------------------

def test_drop_policy_counts_and_charges_the_mp():
    result = overloaded("drop")
    counts = result.counts
    assert counts.dropped > 0
    assert counts.rejected == 0 and counts.deferred == 0
    # conservation: every offered message has exactly one fate
    assert counts.offered == counts.admitted + counts.dropped
    assert result.drop_rate > 0.5      # overload point: most refused


def test_reject_policy_counts():
    result = overloaded("reject")
    counts = result.counts
    assert counts.rejected > 0
    assert counts.dropped == 0 and counts.deferred == 0
    assert counts.offered == counts.admitted + counts.rejected


def test_backpressure_policy_defers_and_eventually_completes():
    result = overloaded("backpressure")
    counts = result.counts
    assert counts.deferred > 0
    assert counts.dropped == 0 and counts.rejected == 0
    assert result.drop_rate == 0.0
    # drain=True: every admitted message resolves, overflow included
    total = result.meter.warmup
    assert (counts.completed + counts.failed
            + total.completed + total.failed) \
        == counts.admitted + total.admitted


def test_admission_work_is_charged_on_the_ipc_processor():
    expected = {"drop": "admission drop (MP)",
                "reject": "admission reject (MP)",
                "backpressure": "admission defer (MP)"}
    for policy, label in expected.items():
        bench = build_open_system(
            ARCH, Mode.LOCAL, PoissonArrivals(0.01), servers=1,
            pool_size=1, queue_limit=1, policy=policy, seed=4,
            horizon_us=100_000.0)
        bench.system.run_for(100_000.0)
        bench.system.sim.run()
        node = bench.system.nodes["node0"]
        busy = node.processors.ipc.stats.busy_by_label
        assert label in busy, (policy, sorted(busy))
        assert busy[label] > 0.0
        others = {lbl for lbl in busy if lbl.startswith("admission")
                  and lbl != label}
        assert not others, (policy, others)


def test_reject_charges_more_than_drop_per_refusal():
    """reject = match + process_reply, drop = match alone (counting
    only refusals the MP actually examined — past ``examine_limit``
    the interface tail-drops without charge)."""
    per_refusal = {}
    for policy in ("drop", "reject"):
        bench = build_open_system(
            ARCH, Mode.LOCAL, PoissonArrivals(0.01), servers=1,
            pool_size=1, queue_limit=1, policy=policy, seed=4,
            horizon_us=100_000.0)
        bench.system.run_for(100_000.0)
        bench.system.sim.run()
        node = bench.system.nodes["node0"]
        busy = node.processors.ipc.stats.busy_by_label
        label = ("admission drop (MP)" if policy == "drop"
                 else "admission reject (MP)")
        counts = bench.meter.measured
        refused = counts.dropped + counts.rejected
        examined = refused - bench.source.tail_drops
        assert examined > 0
        per_refusal[policy] = busy[label] / examined
    costs = bench.system.nodes["node0"].default_costs
    assert per_refusal["drop"] == pytest.approx(costs.match)
    assert per_refusal["reject"] == pytest.approx(
        costs.match + costs.process_reply)


def test_examination_backlog_is_bounded():
    """Receive livelock stays bounded: however hard the overload, at
    most ``examine_limit`` refusal examinations are ever outstanding
    on the MP; the rest are interface tail drops (uncharged but still
    counted as refusals by the meter)."""
    bench = build_open_system(
        ARCH, Mode.LOCAL, PoissonArrivals(0.05), servers=1,
        pool_size=1, queue_limit=1, policy="drop", seed=4,
        horizon_us=300_000.0, examine_limit=8)
    peak = 0

    original = bench.source._charge_examination

    def watch(duration, label):
        nonlocal peak
        original(duration, label)
        peak = max(peak, bench.source._examining)

    bench.source._charge_examination = watch
    bench.system.run_for(300_000.0)
    bench.system.sim.run()
    assert peak <= 8
    assert bench.source.tail_drops > 0
    counts = bench.meter.measured
    # tail drops are a subset of recorded drops, not an extra fate
    assert bench.source.tail_drops < counts.dropped
    assert counts.offered == counts.admitted + counts.dropped


def test_examine_limit_validation():
    with pytest.raises(TrafficError, match="examine_limit"):
        OpenTrafficSource(PoissonArrivals(0.001), examine_limit=0)


# ----------------------------------------------------------------------
# deadlines and goodput
# ----------------------------------------------------------------------

def test_deadline_misses_split_goodput():
    # at overload with a deep ingress queue, queue wait dominates and
    # a tight deadline is missed by almost everything admitted late
    result = run_open_experiment(
        ARCH, Mode.LOCAL, PoissonArrivals(0.005), servers=1,
        warmup_us=0.0, measure_us=300_000.0, pool_size=2,
        queue_limit=64, policy="drop", deadline_us=1_000.0, seed=4)
    counts = result.counts
    assert counts.deadline_misses > 0
    assert counts.goodput + counts.deadline_misses == counts.completed
    assert 0.0 < result.deadline_miss_rate <= 1.0
    assert result.goodput_per_us < result.throughput_per_us


def test_no_deadline_means_no_misses():
    result = overloaded("drop", deadline_us=None)
    assert result.counts.deadline_misses == 0
    assert result.deadline_miss_rate == 0.0
    assert result.counts.goodput == result.counts.completed


# ----------------------------------------------------------------------
# draining and backlog
# ----------------------------------------------------------------------

def test_drain_resolves_every_admitted_message():
    result = overloaded("drop")
    meter = result.meter
    admitted = meter.warmup.admitted + meter.measured.admitted
    resolved = (meter.warmup.completed + meter.warmup.failed
                + meter.measured.completed + meter.measured.failed)
    assert admitted == resolved


def test_backlog_property_tracks_queues():
    source = OpenTrafficSource(PoissonArrivals(0.001))
    assert source.backlog == 0


# ----------------------------------------------------------------------
# loud construction errors
# ----------------------------------------------------------------------

def test_check_policy_rejects_unknown():
    with pytest.raises(TrafficError, match="unknown admission policy"):
        check_policy("tail-drop")
    assert check_policy("reject") == "reject"


@pytest.mark.parametrize("kwargs", [
    {"pool_size": 0}, {"queue_limit": -1}, {"population": 0},
])
def test_source_rejects_bad_bounds(kwargs):
    with pytest.raises(TrafficError):
        OpenTrafficSource(PoissonArrivals(0.001), **kwargs)


def test_build_rejects_bad_servers():
    with pytest.raises(TrafficError, match="servers"):
        build_open_system(ARCH, Mode.LOCAL, PoissonArrivals(0.001),
                          servers=0)


def test_meter_rejects_bad_deadline():
    from repro.traffic.metrics import TrafficMeter
    with pytest.raises(TrafficError, match="deadline"):
        TrafficMeter(deadline_us=0.0)


def test_meter_rejects_time_travel():
    from repro.traffic.metrics import TrafficMeter
    meter = TrafficMeter()
    with pytest.raises(TrafficError):
        meter.record_completion(10.0, 5.0, 20.0)
    with pytest.raises(TrafficError):
        meter.record_completion(10.0, 12.0, 5.0)
    with pytest.raises(TrafficError):
        meter.record_failure(10.0, 5.0)


# ----------------------------------------------------------------------
# session multiplexing: population vs pool
# ----------------------------------------------------------------------

def test_population_cycles_client_ids_over_bounded_pool():
    seen = []
    bench = build_open_system(
        ARCH, Mode.LOCAL, PoissonArrivals(0.005), servers=2,
        pool_size=2, queue_limit=8, population=3, seed=1,
        horizon_us=50_000.0)
    original_dispatch = bench.source._dispatch

    def spy(message):
        seen.append(message.client_id)
        original_dispatch(message)

    bench.source._dispatch = spy
    bench.system.run_for(50_000.0)
    bench.system.sim.run()
    assert set(seen) <= {0, 1, 2}
    assert len(seen) > 10              # many messages, 3 logical clients
    # only the bounded pool ever existed as kernel tasks
    tasks = [name for name in bench.system.all_task_names()
             if name.startswith("open")]
    assert len(tasks) == 2
