"""Seed determinism of full open-arrival runs, per arrival process.

Identical ``REPRO_SEED`` (here: identical explicit seed, plus one test
through the env var) must reproduce bit-identical arrival timestamps,
admission decisions, and meter signatures; a different seed must not.
"""

import pytest

from repro import config
from repro.models.params import Architecture, Mode
from repro.traffic.arrivals import make_process
from repro.traffic.engine import build_open_system, run_open_experiment

ARCH = Architecture.II
PROCESSES = ["poisson", "mmpp", "pareto"]


def run_point(process_name, seed, *, policy="drop", queue_limit=2,
              pool_size=2):
    """A deliberately tight operating point so every admission branch
    (dispatch / queue / refuse) is exercised."""
    rate = 0.002       # ~2 msgs/ms against a few-hundred-us service
    result = run_open_experiment(
        ARCH, Mode.LOCAL, make_process(process_name, rate),
        servers=2, warmup_us=20_000.0, measure_us=300_000.0,
        pool_size=pool_size, queue_limit=queue_limit, policy=policy,
        deadline_us=4_000.0, seed=seed)
    return result


@pytest.mark.parametrize("process_name", PROCESSES)
def test_same_seed_bit_identical(process_name):
    first = run_point(process_name, seed=11)
    second = run_point(process_name, seed=11)
    assert first.meter.signature() == second.meter.signature()
    assert first.counts.as_dict() == second.counts.as_dict()
    assert first.events_processed == second.events_processed
    assert first.utilization == second.utilization


@pytest.mark.parametrize("process_name", PROCESSES)
def test_different_seed_differs(process_name):
    first = run_point(process_name, seed=11)
    second = run_point(process_name, seed=12)
    assert first.meter.signature() != second.meter.signature()


@pytest.mark.parametrize("policy", ["drop", "reject", "backpressure"])
def test_admission_decisions_are_deterministic(policy):
    first = run_point("mmpp", seed=5, policy=policy)
    second = run_point("mmpp", seed=5, policy=policy)
    assert first.counts.as_dict() == second.counts.as_dict()
    # the tight point actually refused something, so the decision
    # stream is non-trivial
    counts = first.counts
    assert counts.dropped + counts.rejected + counts.deferred > 0, \
        counts.as_dict()


def test_seed_resolves_from_env(monkeypatch):
    """REPRO_SEED drives the run exactly like an explicit seed."""
    monkeypatch.setenv("REPRO_SEED", "77")
    config.reset()
    try:
        via_env = run_point("poisson", seed=None)
    finally:
        monkeypatch.delenv("REPRO_SEED")
        config.reset()
    explicit = run_point("poisson", seed=77)
    assert via_env.meter.signature() == explicit.meter.signature()


def test_arrival_timestamps_bit_identical():
    """Arrival instants (offered events) are reproduced exactly: track
    them through a probe meter on two same-seed builds."""
    times = []
    for _ in range(2):
        bench = build_open_system(
            ARCH, Mode.LOCAL, make_process("pareto", 0.001),
            servers=2, seed=9, horizon_us=200_000.0)
        recorded = []
        original = bench.meter.record_offered

        def probe(arrived_at, _original=original, _out=recorded):
            _out.append(arrived_at)
            _original(arrived_at)

        bench.meter.record_offered = probe
        bench.system.run_for(200_000.0)
        times.append(tuple(recorded))
    assert times[0] == times[1]
    assert len(times[0]) > 50


def test_arrival_stream_independent_of_policy():
    """The admission policy decides the fate of refused messages but
    never feeds back into the arrival stream: at the same seed every
    policy sees the identical offered count."""
    offered = {policy: run_point("mmpp", seed=5,
                                 policy=policy).counts.offered
               for policy in ("drop", "reject", "backpressure")}
    assert len(set(offered.values())) == 1, offered
    assert next(iter(offered.values())) > 100
