"""Tests for the global seed default (--seed / REPRO_SEED)."""

import pytest

from repro.seeding import default_seed, resolve_seed, set_default_seed


@pytest.fixture(autouse=True)
def reset_default():
    yield
    set_default_seed(None)


def test_explicit_seed_wins():
    set_default_seed(5)
    assert resolve_seed(7) == 7


def test_global_default_beats_fallback():
    set_default_seed(5)
    assert resolve_seed(None, fallback=0) == 5


def test_env_var_supplies_default(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "99")
    assert default_seed() == 99
    assert resolve_seed(None) == 99


def test_set_default_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "99")
    set_default_seed(3)
    assert resolve_seed(None) == 3


def test_fallback_when_nothing_set(monkeypatch):
    monkeypatch.delenv("REPRO_SEED", raising=False)
    assert resolve_seed(None, fallback=0) == 0
    assert resolve_seed(None) is None


def test_bad_env_value_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "not-a-seed")
    with pytest.raises(Exception):
        default_seed()


def test_seeded_components_are_repeatable(monkeypatch):
    """The same REPRO_SEED reproduces a stochastic workload exactly."""
    from repro.kernel import build_conversation_system
    from repro.models.params import Architecture, Mode

    def run():
        system, meter = build_conversation_system(
            Architecture.II, Mode.LOCAL, 2, 1000.0)
        system.run_for(300_000.0)
        return [(s.client, s.completed_at) for s in meter.samples]

    monkeypatch.setenv("REPRO_SEED", "11")
    first = run()
    second = run()
    monkeypatch.setenv("REPRO_SEED", "12")
    third = run()
    assert first == second
    assert first != third
