"""Shared fixtures for the experiment-service suite.

Service tests run against tiny synthetic experiments (registered with
the scoped :func:`~repro.experiments.registry.temporary_experiment`)
instead of real chapter-6 grids, so the suite exercises queueing,
coalescing, and the store at millisecond cost.  Every test gets a
clean config/obs slate and a torn-down default service.
"""

from __future__ import annotations

import threading

import pytest

from repro import config, obs
from repro.experiments import Experiment
from repro.experiments.reporting import Table
from repro.perf.backends import map_sweep
from repro.service import reset_default_service


@pytest.fixture(autouse=True)
def _clean_state():
    config.reset()
    obs.uninstall()
    yield
    reset_default_service()
    config.reset()
    obs.uninstall()


def _inc(x):
    return x + 1


class ToyTracker:
    """Observable side effects of toy-experiment executions."""

    def __init__(self):
        self.runs: list[int | None] = []   # seed per execution
        self.gate: threading.Event | None = None
        self.started = threading.Semaphore(0)


def make_toy(experiment_id: str = "toy-exp",
             tracker: ToyTracker | None = None,
             fail: bool = False) -> Experiment:
    """A synthetic table experiment: seed-dependent values, exactly
    one ``map_sweep`` item (so a traced execution emits exactly one
    ``pool.task`` span), optional gate to hold executions open."""
    def runner() -> Table:
        if tracker is not None:
            tracker.started.release()
            if tracker.gate is not None:
                assert tracker.gate.wait(timeout=30.0)
        if fail:
            from repro.errors import ReproError
            raise ReproError("toy runner failed on purpose")
        seed = config.seed()
        if tracker is not None:
            tracker.runs.append(seed)
        (total,) = map_sweep(_inc, [seed if seed is not None else 0])
        return Table(experiment_id=experiment_id, title="toy",
                     headers=["metric", "value"],
                     rows=[["seed", seed], ["total", total]])
    return Experiment(experiment_id, "toy", "table", runner)
