"""ExperimentService behaviour: queueing, admission, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro import api
from repro.errors import (AdmissionError, ConfigError, ReproError,
                          ServiceError)
from repro.experiments import Experiment, temporary_experiment
from repro.experiments.reporting import Table
from repro.service import ExperimentService, JobStatus

from tests.service.conftest import ToyTracker, make_toy

TIMEOUT = 30.0


def test_async_submission_matches_inline_run():
    with temporary_experiment(make_toy()):
        service = ExperimentService()
        try:
            handle = service.submit("toy-exp", seed=7)
            result = handle.result(timeout=TIMEOUT)
        finally:
            service.shutdown()
        direct = api.run_experiment("toy-exp", seed=7)
    assert handle.poll() is JobStatus.DONE
    assert result.values == direct.values
    assert result.config == direct.config


def test_failed_job_reraises_from_result():
    with temporary_experiment(make_toy(fail=True)):
        service = ExperimentService()
        try:
            handle = service.submit("toy-exp")
            with pytest.raises(ReproError, match="on purpose"):
                handle.result(timeout=TIMEOUT)
        finally:
            service.shutdown()
    assert handle.poll() is JobStatus.FAILED
    assert service.stats()["failed"] == 1


def test_lifecycle_events_in_order():
    with temporary_experiment(make_toy()):
        service = ExperimentService()
        try:
            handle = service.submit("toy-exp", seed=1)
            handle.result(timeout=TIMEOUT)
        finally:
            service.shutdown()
    kinds = [event.kind for event in handle.stream_events()]
    assert kinds == ["submitted", "started", "done"]


def test_drop_policy_sheds_silently():
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=1, queue_depth=1,
                                    policy="drop")
        try:
            running = service.submit("toy-exp", seed=1)
            assert tracker.started.acquire(timeout=TIMEOUT)
            queued = service.submit("toy-exp", seed=2)
            shed = service.submit("toy-exp", seed=3)
            assert shed.poll() is JobStatus.DROPPED
            with pytest.raises(AdmissionError) as excinfo:
                shed.result(timeout=TIMEOUT)
            assert excinfo.value.policy == "drop"
            tracker.gate.set()
            running.result(timeout=TIMEOUT)
            queued.result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    assert service.stats()["dropped"] == 1
    assert sorted(tracker.runs) == [1, 2]     # the shed seed never ran


def test_reject_policy_raises_at_submit():
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=1, queue_depth=1,
                                    policy="reject")
        try:
            running = service.submit("toy-exp", seed=1)
            assert tracker.started.acquire(timeout=TIMEOUT)
            service.submit("toy-exp", seed=2)
            with pytest.raises(AdmissionError, match="queue full"):
                service.submit("toy-exp", seed=3)
            tracker.gate.set()
            running.result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    assert service.stats()["rejected"] == 1


def test_backpressure_blocks_submitter_until_room():
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=1, queue_depth=1,
                                    policy="backpressure")
        try:
            service.submit("toy-exp", seed=1)
            assert tracker.started.acquire(timeout=TIMEOUT)
            service.submit("toy-exp", seed=2)
            blocked_handle = []

            def pressured_submit():
                blocked_handle.append(
                    service.submit("toy-exp", seed=3))

            submitter = threading.Thread(target=pressured_submit)
            submitter.start()
            submitter.join(timeout=0.3)
            assert submitter.is_alive()       # held back, not dropped
            tracker.gate.set()                # free the worker
            submitter.join(timeout=TIMEOUT)
            assert not submitter.is_alive()
            blocked_handle[0].result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    stats = service.stats()
    assert stats["backpressured"] == 1
    assert sorted(tracker.runs) == [1, 2, 3]  # nothing was lost


def test_backpressured_identical_twins_coalesce_not_duplicate():
    # two identical submissions that both block under backpressure must
    # not both enqueue once room frees: whoever wakes second re-runs
    # the dedup block and coalesces (or store-hits), so the unique key
    # still executes exactly once
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=1, queue_depth=1,
                                    policy="backpressure")
        try:
            service.submit("toy-exp", seed=1)
            assert tracker.started.acquire(timeout=TIMEOUT)
            service.submit("toy-exp", seed=2)     # fills the queue
            handles = []
            handles_lock = threading.Lock()

            def pressured_submit():
                handle = service.submit("toy-exp", seed=3)
                with handles_lock:
                    handles.append(handle)

            twins = [threading.Thread(target=pressured_submit)
                     for _ in range(2)]
            for twin in twins:
                twin.start()
            for twin in twins:
                twin.join(timeout=0.3)
            assert all(t.is_alive() for t in twins)  # both held back
            tracker.gate.set()
            for twin in twins:
                twin.join(timeout=TIMEOUT)
            assert not any(t.is_alive() for t in twins)
            results = [h.result(timeout=TIMEOUT) for h in handles]
            service.drain(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    assert sorted(tracker.runs) == [1, 2, 3]  # seed 3 ran exactly once
    stats = service.stats()
    assert stats["coalesced"] + stats["store_hits"] == 1
    assert results[0].values == results[1].values


def test_tenant_quota_isolates_noisy_tenant():
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=1, queue_depth=8,
                                    policy="reject", tenant_quota=1)
        try:
            service.submit("toy-exp", seed=1, tenant="noisy")
            assert tracker.started.acquire(timeout=TIMEOUT)
            service.submit("toy-exp", seed=2, tenant="noisy")
            with pytest.raises(AdmissionError, match="at quota"):
                service.submit("toy-exp", seed=3, tenant="noisy")
            # a different tenant still gets in
            polite = service.submit("toy-exp", seed=4, tenant="polite")
            tracker.gate.set()
            polite.result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    assert service.stats()["tenants"] == {"noisy": 3, "polite": 1}


def test_submit_from_worker_thread_degrades_inline():
    # an experiment that re-enters the service from its own worker
    # thread must execute inline instead of deadlocking the queue
    inner = make_toy("toy-inner")
    service = ExperimentService(workers=1)

    def outer_runner() -> Table:
        nested = service.submit("toy-inner", seed=5)
        inner_result = nested.result(timeout=1.0)  # inline: already done
        return Table(experiment_id="toy-outer", title="outer",
                     headers=["k", "v"],
                     rows=[["inner", inner_result.values[0][1]]])

    outer = Experiment("toy-outer", "outer", "table", outer_runner)
    with temporary_experiment(inner), temporary_experiment(outer):
        try:
            result = service.submit("toy-outer").result(timeout=TIMEOUT)
        finally:
            service.shutdown()
    assert result.values == [["inner", 5]]
    assert service.stats()["inline"] == 1


def test_submit_from_another_services_worker_degrades_inline():
    # workers of *any* service in the process may hold the shared
    # execution lock; a nested submission across service instances must
    # degrade inline too, or the inner worker deadlocks behind the lock
    # the outer worker already holds
    inner = make_toy("toy-inner")
    outer_service = ExperimentService(workers=1)
    inner_service = ExperimentService(workers=1)

    def outer_runner() -> Table:
        nested = inner_service.submit("toy-inner", seed=9)
        inner_result = nested.result(timeout=1.0)  # inline: already done
        return Table(experiment_id="toy-outer", title="outer",
                     headers=["k", "v"],
                     rows=[["inner", inner_result.values[0][1]]])

    outer = Experiment("toy-outer", "outer", "table", outer_runner)
    with temporary_experiment(inner), temporary_experiment(outer):
        try:
            result = outer_service.submit("toy-outer").result(
                timeout=TIMEOUT)
        finally:
            outer_service.shutdown()
            inner_service.shutdown()
    assert result.values == [["inner", 9]]
    assert inner_service.stats()["inline"] == 1


def test_shutdown_rejects_new_submissions():
    with temporary_experiment(make_toy()):
        service = ExperimentService()
        service.submit("toy-exp").result(timeout=TIMEOUT)
        service.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            service.submit("toy-exp", seed=99)


def test_drain_timeout_raises():
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=1)
        try:
            service.submit("toy-exp")
            assert tracker.started.acquire(timeout=TIMEOUT)
            with pytest.raises(ServiceError, match="did not drain"):
                service.drain(timeout=0.05)
            tracker.gate.set()
            service.drain(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()


def test_invalid_construction_rejected():
    with pytest.raises(ConfigError, match="admission policy"):
        ExperimentService(policy="shrug")
    with pytest.raises(ConfigError, match="workers"):
        ExperimentService(workers=0)
    with pytest.raises(ConfigError, match="queue_depth"):
        ExperimentService(queue_depth=0)


def test_stats_reconcile_after_drain():
    with temporary_experiment(make_toy()):
        service = ExperimentService()
        try:
            handles = [service.submit("toy-exp", seed=s % 3)
                       for s in range(12)]
            for handle in handles:
                handle.result(timeout=TIMEOUT)
            service.drain(timeout=TIMEOUT)
        finally:
            service.shutdown()
    stats = service.stats()
    accounted = (stats["executed"] + stats["failed"] +
                 stats["coalesced"] + stats["store_hits"] +
                 stats["dropped"] + stats["rejected"] + stats["inline"])
    assert stats["submitted"] == 12 == accounted
    assert stats["queue_depth"] == 0 and stats["busy"] == 0
    assert stats["executed"] == 3          # one per unique seed
    assert stats["latency"]["count"] == 3
    assert stats["latency"]["p99_s"] >= stats["latency"]["p50_s"]
