"""Request coalescing: one execution, N subscribers, split-key misses."""

from __future__ import annotations

import threading

from repro import obs
from repro.experiments import temporary_experiment
from repro.service import ExperimentService, JobStatus

from tests.service.conftest import ToyTracker, make_toy

TIMEOUT = 30.0


def _gated_service(tracker: ToyTracker, **kwargs) -> ExperimentService:
    tracker.gate = threading.Event()
    return ExperimentService(**kwargs)


def test_identical_submissions_execute_once():
    tracker = ToyTracker()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = _gated_service(tracker, workers=2)
        try:
            with obs.recording() as recorder:
                first = service.submit("toy-exp", seed=7)
                assert tracker.started.acquire(timeout=TIMEOUT)
                twins = [service.submit("toy-exp", seed=7)
                         for _ in range(5)]
                tracker.gate.set()
                result = first.result(timeout=TIMEOUT)
                twin_results = [t.result(timeout=TIMEOUT)
                                for t in twins]
            service.drain(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    # one execution: the runner ran once, its single map_sweep item
    # produced exactly one pool.task span under the recorder
    assert tracker.runs == [7]
    task_spans = [s for s in recorder.spans if s.name == "pool.task"]
    assert len(task_spans) == 1
    # every subscriber sees the *same* result object
    assert all(t.coalesced for t in twins)
    assert all(r is result for r in twin_results)
    stats = service.stats()
    assert stats["executed"] == 1 and stats["coalesced"] == 5


def test_different_seed_breaks_the_coalesce_key():
    tracker = ToyTracker()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = _gated_service(tracker, workers=1)
        try:
            a = service.submit("toy-exp", seed=1)
            assert tracker.started.acquire(timeout=TIMEOUT)
            b = service.submit("toy-exp", seed=2)
            assert not b.coalesced
            tracker.gate.set()
            ra = a.result(timeout=TIMEOUT)
            rb = b.result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    assert sorted(tracker.runs) == [1, 2]      # both really ran
    assert ra.values != rb.values
    assert service.stats()["coalesced"] == 0


def test_execution_knobs_still_coalesce():
    # jobs/backend change scheduling, not values: twins coalesce
    tracker = ToyTracker()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = _gated_service(tracker, workers=2)
        try:
            first = service.submit("toy-exp", seed=3, jobs=1)
            assert tracker.started.acquire(timeout=TIMEOUT)
            twin = service.submit("toy-exp", seed=3, jobs=4,
                                  backend="serial")
            assert twin.coalesced
            tracker.gate.set()
            assert twin.result(timeout=TIMEOUT) is \
                first.result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    assert tracker.runs == [3]


def test_traced_submissions_never_coalesce(tmp_path):
    # a traced job writes side files and runs under its own recorder;
    # sharing it with an untraced twin would corrupt both contracts
    tracker = ToyTracker()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = _gated_service(tracker, workers=1)
        try:
            plain = service.submit("toy-exp", seed=4)
            assert tracker.started.acquire(timeout=TIMEOUT)
            traced = service.submit("toy-exp", seed=4,
                                    trace=str(tmp_path / "t.json"))
            assert not traced.coalesced and not traced.store_hit
            tracker.gate.set()
            plain.result(timeout=TIMEOUT)
            result = traced.result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    assert len(tracker.runs) == 2              # both executed
    assert result.trace_paths                  # and the trace exists


def test_traced_completion_keeps_untraced_twins_pending_entry(tmp_path):
    # a finishing traced job has a key but never owns an in-flight
    # registration; it must not evict an untraced twin's entry, or the
    # twin's later duplicates re-execute instead of coalescing
    tracker = ToyTracker()
    gate_traced = threading.Event()
    gate_plain = threading.Event()
    tracker.gate = gate_traced
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=1)
        try:
            traced = service.submit("toy-exp", seed=4,
                                    trace=str(tmp_path / "t.json"))
            assert tracker.started.acquire(timeout=TIMEOUT)
            tracker.gate = gate_plain      # the next run waits on this
            plain = service.submit("toy-exp", seed=4)
            assert not plain.coalesced     # traced twin isn't shareable
            gate_traced.set()              # traced finishes...
            assert tracker.started.acquire(timeout=TIMEOUT)
            # ...and the untraced twin is now running, still registered
            late = service.submit("toy-exp", seed=4)
            assert late.coalesced          # not a third execution
            gate_plain.set()
            assert late.result(timeout=TIMEOUT) is \
                plain.result(timeout=TIMEOUT)
            traced.result(timeout=TIMEOUT)
        finally:
            gate_traced.set()
            gate_plain.set()
            service.shutdown()
    assert tracker.runs == [4, 4]          # traced + untraced, no more


def test_coalesced_handle_sees_the_shared_lifecycle():
    tracker = ToyTracker()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = _gated_service(tracker, workers=1)
        try:
            first = service.submit("toy-exp", seed=6)
            assert tracker.started.acquire(timeout=TIMEOUT)
            twin = service.submit("toy-exp", seed=6)
            tracker.gate.set()
            twin.result(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    kinds = [event.kind for event in twin.stream_events()]
    assert "coalesced" in kinds and kinds[-1] == "done"
    assert twin.poll() is JobStatus.DONE
    assert first.key == twin.key
