"""Service smoke + acceptance: mixed load, dedupe rate, 1000 jobs."""

from __future__ import annotations

import threading

from repro.experiments import temporary_experiment
from repro.service import ExperimentService, ResultStore

from tests.service.conftest import ToyTracker, make_toy

TIMEOUT = 60.0


def test_smoke_200_mixed_jobs_dedupe_at_least_40_percent():
    # the CI service-smoke scenario: 200 submissions, half duplicates,
    # executions held open until the full batch is in so every
    # duplicate coalesces onto its in-flight twin
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(workers=2, queue_depth=256)
        try:
            handles = [service.submit("toy-exp", seed=n % 100)
                       for n in range(200)]
            tracker.gate.set()
            results = [h.result(timeout=TIMEOUT) for h in handles]
            service.drain(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    stats = service.stats()
    assert stats["submitted"] == 200
    assert stats["executed"] == 100            # one per unique seed
    deduped = stats["coalesced"] + stats["store_hits"]
    assert stats["coalesced"] / 200 >= 0.40
    assert deduped == 100
    assert stats["queue_depth"] == 0 and stats["busy"] == 0
    # every handle resolved to its seed's values
    for n, result in enumerate(results):
        assert result.values[0] == ["seed", n % 100]


def test_acceptance_1000_concurrent_submissions_bounded():
    # the PR acceptance bar: 1000 concurrent submissions, >= 50%
    # duplicates, every unique point executed exactly once, bounded
    # store memory, clean drain
    tracker = ToyTracker()
    tracker.gate = threading.Event()
    unique = 250                               # 4 submissions each
    with temporary_experiment(make_toy(tracker=tracker)):
        service = ExperimentService(
            workers=4, queue_depth=1024,
            store=ResultStore(memory_limit=64))   # force LRU pressure
        handles: list = []
        handles_lock = threading.Lock()

        def submitter(offset: int) -> None:
            mine = [service.submit("toy-exp", seed=(offset + n) % unique)
                    for n in range(125)]
            with handles_lock:
                handles.extend(mine)

        threads = [threading.Thread(target=submitter, args=(i * 31,))
                   for i in range(8)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=TIMEOUT)
            assert not any(t.is_alive() for t in threads)
            tracker.gate.set()
            for handle in handles:
                handle.result(timeout=TIMEOUT)
            service.drain(timeout=TIMEOUT)
        finally:
            tracker.gate.set()
            service.shutdown()
    stats = service.stats()
    assert stats["submitted"] == 1000
    # exactly-once: each unique seed executed a single time
    assert stats["executed"] == unique
    assert sorted(tracker.runs) == sorted(range(unique))
    assert stats["coalesced"] + stats["store_hits"] == 1000 - unique
    # bounded memory: the LRU never grows past its limit
    assert len(service.store) <= 64
    assert stats["queue_depth"] == 0 and stats["busy"] == 0
