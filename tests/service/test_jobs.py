"""Job identity (structure × timing keys) and handle semantics."""

from __future__ import annotations

import pytest

from repro import config
from repro.errors import ServiceError
from repro.service import JobStatus, build_job_key
from repro.service.jobs import JobHandle, _Execution


def test_key_equal_for_identical_submissions():
    a = build_job_key("figure-6.7", {"seed": 7})
    b = build_job_key("figure-6.7", {"seed": 7})
    assert a == b and a.digest == b.digest


def test_seed_lands_in_timing_half():
    base = build_job_key("figure-6.7", {"seed": 7})
    other = build_job_key("figure-6.7", {"seed": 8})
    assert base != other
    assert base.structure_digest == other.structure_digest
    assert base.timing_digest != other.timing_digest


def test_experiment_id_lands_in_structure_half():
    base = build_job_key("figure-6.7", {"seed": 7})
    other = build_job_key("table-5.1", {"seed": 7})
    assert base.structure_digest != other.structure_digest
    assert base.timing_digest == other.timing_digest


def test_execution_knobs_do_not_fragment_the_key():
    # jobs / cache / backend change scheduling, never values (the
    # backends bit-identity contract) — they must share one address
    base = build_job_key("figure-6.7", {"seed": 7})
    for extra in ({"jobs": 4}, {"cache_enabled": False},
                  {"backend": "sharded"}):
        assert build_job_key("figure-6.7",
                             {"seed": 7, **extra}) == base


def test_unset_knobs_resolve_through_config():
    # explicit seed=7 and ambient CLI seed 7 are the same run
    explicit = build_job_key("figure-6.7", {"seed": 7})
    config.set_seed(7)
    try:
        ambient = build_job_key("figure-6.7", {})
    finally:
        config.set_seed(None)
    assert explicit == ambient


def test_key_resolution_ignores_running_jobs_overrides():
    # keys built while another job has config.overrides installed
    # (what a running execution does, process-globally) must resolve
    # from the ambient CLI/env state, never the running job's values —
    # otherwise a concurrent submission aliases onto the wrong address
    base = build_job_key("figure-6.7", {})
    with config.overrides(seed=99, duration=123.0, reduction="lump"):
        concurrent = build_job_key("figure-6.7", {})
        explicit = build_job_key("figure-6.7", {"seed": 99})
    assert concurrent == base
    assert explicit != base
    assert explicit == build_job_key("figure-6.7", {"seed": 99})


def test_ambient_cli_state_survives_nested_overrides():
    # CLI-level state set *outside* any scoped override is ambient and
    # must keep keying submissions even while overrides are active
    config.set_seed(7)
    try:
        outside = build_job_key("figure-6.7", {})
        with config.overrides(seed=99):
            with config.overrides(duration=5.0):
                inside = build_job_key("figure-6.7", {})
    finally:
        config.set_seed(None)
    assert inside == outside
    assert inside == build_job_key("figure-6.7", {"seed": 7})


def test_numeric_normalisation():
    assert build_job_key("t", {"duration": 500000}) == \
        build_job_key("t", {"duration": 500000.0})


def test_traffic_knobs_land_in_timing_half():
    base = build_job_key("traffic-knee-quick", {})
    other = build_job_key("traffic-knee-quick", {"arrival_rate": 9.0})
    assert base.structure_digest == other.structure_digest
    assert base.timing_digest != other.timing_digest


def test_str_shows_split_halves():
    key = build_job_key("figure-6.7", {"seed": 7})
    assert str(key) == f"{key.structure_digest}x{key.timing_digest}"
    assert len(key.digest) == 16


def test_status_terminality():
    assert not JobStatus.QUEUED.terminal
    assert not JobStatus.RUNNING.terminal
    assert JobStatus.DONE.terminal
    assert JobStatus.FAILED.terminal
    assert JobStatus.DROPPED.terminal


def test_handle_result_timeout_raises():
    execution = _Execution("toy", None, {})
    handle = JobHandle("job-0", execution, "default")
    with pytest.raises(ServiceError, match="still queued"):
        handle.result(timeout=0.05)


def test_handle_replays_events_after_completion():
    execution = _Execution("toy", None, {})
    handle = JobHandle("job-0", execution, "default")
    execution.mark("submitted", job_id="job-0")
    execution.mark("started", status=JobStatus.RUNNING)
    execution.mark("done", status=JobStatus.DONE, result="r")
    kinds = [event.kind for event in handle.stream_events()]
    assert kinds == ["submitted", "started", "done"]
    assert handle.result() == "r"
