"""The content-addressed result store: LRU, disk tier, restarts."""

from __future__ import annotations

import pytest

from repro.service import ResultStore, build_job_key


def _key(seed: int, experiment_id: str = "toy"):
    return build_job_key(experiment_id, {"seed": seed})


def test_roundtrip_and_counters():
    store = ResultStore()
    key = _key(1)
    assert store.get(key) is None
    store.put(key, {"value": 41})
    assert store.get(key) == {"value": 41}
    assert store.hits == 1 and store.misses == 1


def test_memory_lru_bound():
    store = ResultStore(memory_limit=2)
    for seed in range(4):
        store.put(_key(seed), seed)
    assert len(store) == 2
    # the two most recent survive; the eldest were evicted
    assert store.get(_key(3)) == 3
    assert store.get(_key(0)) is None


def test_disk_tier_survives_restart(tmp_path):
    first = ResultStore(directory=tmp_path)
    first.put(_key(7), {"seed": 7})
    assert first.disk_entries() == 1
    # a fresh store over the same directory answers from disk
    reborn = ResultStore(directory=tmp_path)
    assert len(reborn) == 0
    assert reborn.get(_key(7)) == {"seed": 7}
    assert reborn.hits == 1


def test_eviction_falls_back_to_disk(tmp_path):
    store = ResultStore(directory=tmp_path, memory_limit=1)
    store.put(_key(1), "one")
    store.put(_key(2), "two")          # evicts key 1 from memory
    assert store.get(_key(1)) == "one"  # reloaded from the disk tier


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    store = ResultStore(directory=tmp_path)
    key = _key(5)
    store.put(key, "fine")
    path = store._entry_path(key.digest)
    path.write_bytes(b"not a pickle")
    fresh = ResultStore(directory=tmp_path)
    assert fresh.get(key) is None       # torn entry deleted, miss
    assert not path.exists()


def test_unpicklable_result_stays_memory_only(tmp_path):
    store = ResultStore(directory=tmp_path)
    key = _key(9)
    store.put(key, lambda: None)        # lambdas do not pickle
    assert store.disk_entries() == 0
    assert callable(store.get(key))     # memory tier still serves it


def test_clear_drops_both_tiers(tmp_path):
    store = ResultStore(directory=tmp_path)
    store.put(_key(1), 1)
    store.clear()
    assert len(store) == 0 and store.disk_entries() == 0
    assert store.get(_key(1)) is None


def test_stats_shape(tmp_path):
    store = ResultStore(directory=tmp_path)
    store.put(_key(1), 1)
    stats = store.stats()
    assert stats["entries"] == 1 and stats["disk_entries"] == 1
    assert stats["directory"] == str(tmp_path)


def test_spill_failure_is_counted_and_surfaced(tmp_path):
    from repro import obs
    store = ResultStore(directory=tmp_path)
    with obs.recording() as recorder:
        store.put(_key(1), lambda: None)   # unpicklable: memory-only
        store.put(_key(2), "fine")         # picklable: spills to disk
    assert store.spill_failures == 1
    assert store.stats()["spill_failures"] == 1
    assert recorder.counters.get("store.spill_failure") == 1.0


class _ExplodesOnLoad:
    """Pickles fine; its __setstate__ raises on unpickling — a
    programming defect, not a torn disk entry."""

    def __init__(self):
        self.payload = "armed"      # non-empty state forces __setstate__

    def __setstate__(self, state):
        raise RuntimeError("defective __setstate__")


def test_defective_disk_entry_propagates(tmp_path):
    store = ResultStore(directory=tmp_path)
    key = _key(3)
    store.put(key, _ExplodesOnLoad())
    assert store.disk_entries() == 1
    fresh = ResultStore(directory=tmp_path)
    with pytest.raises(RuntimeError):
        fresh.get(key)                     # not silently a miss
    assert fresh.disk_entries() == 1       # and not deleted
