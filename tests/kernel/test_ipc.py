"""Functional tests of the IPC kernel semantics (chapter 4)."""

import pytest

from repro.errors import KernelError
from repro.kernel import (AccessRight, DistributedSystem, MemoryReference,
                          TaskState)
from repro.models.params import Architecture, Mode


def make_local_system(architecture=Architecture.II):
    system = DistributedSystem(architecture)
    node = system.add_node("n0")
    return system, node


def make_two_node_system(architecture=Architecture.II):
    system = DistributedSystem(architecture)
    a = system.add_node("a", default_mode=Mode.NONLOCAL)
    b = system.add_node("b", default_mode=Mode.NONLOCAL)
    return system, a, b


class TestServices:
    def test_create_and_lookup(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "files")
        found_node, service = system.lookup_service("files")
        assert found_node is node
        assert service.creator == "owner"

    def test_duplicate_service_rejected(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "files")
        with pytest.raises(KernelError):
            node.kernel.create_service(owner, "files")

    def test_receive_requires_offer(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "files")
        server = node.create_task("server")
        with pytest.raises(KernelError):
            node.kernel.receive(server, "files", lambda m: None)

    def test_destroyed_service_unreachable(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        service = node.kernel.create_service(owner, "files")
        service.destroy()
        with pytest.raises(KernelError):
            system.lookup_service("files")

    def test_inquire_polls_for_messages(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "files")
        server = node.create_task("server")
        node.kernel.offer(server, "files")
        assert not node.kernel.inquire(server, "files")
        client = node.create_task("client")
        node.kernel.send(client, "files", expects_reply=False)
        system.sim.run()
        assert node.kernel.inquire(server, "files")


class TestLocalRendezvous:
    def _rendezvous(self, architecture):
        system, node = make_local_system(architecture)
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "svc")
        server = node.create_task("server")
        client = node.create_task("client")
        node.kernel.offer(server, "svc")
        log = []

        def on_message(message):
            log.append(("served", message.payload, system.now))
            node.kernel.reply(server, message, payload="pong")

        node.kernel.receive(server, "svc", on_message)
        node.kernel.send(client, "svc", payload="ping",
                         on_reply=lambda p: log.append(
                             ("replied", p, system.now)))
        system.sim.run()
        return system, node, log

    def test_round_trip_completes(self):
        _system, _node, log = self._rendezvous(Architecture.II)
        assert log[0][:2] == ("served", "ping")
        assert log[1][:2] == ("replied", "pong")

    def test_round_trip_time_matches_cost_model_arch1(self):
        # architecture I local with both steps serialized on one host:
        # the client sees send + receive + match + reply + restarts
        system, _node, log = self._rendezvous(Architecture.I)
        reply_time = log[1][2]
        assert reply_time == pytest.approx(4970.0, rel=1e-6)

    def test_tasks_return_to_computing(self):
        _system, node, _log = self._rendezvous(Architecture.II)
        assert node.tasks["client"].state is TaskState.COMPUTING
        assert node.tasks["server"].state is TaskState.COMPUTING

    def test_fifo_delivery_across_clients(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "svc")
        server = node.create_task("server")
        node.kernel.offer(server, "svc")
        order = []

        def serve(message):
            order.append(message.payload)
            node.kernel.reply(server, message,
                              on_done=lambda: node.kernel.receive(
                                  server, "svc", serve))

        node.kernel.receive(server, "svc", serve)
        for i in range(3):
            client = node.create_task(f"c{i}")
            node.kernel.send(client, "svc", payload=i)
        system.sim.run()
        assert order == [0, 1, 2]

    def test_stats_counted(self):
        _system, node, _log = self._rendezvous(Architecture.II)
        assert node.kernel.stats.sends == 1
        assert node.kernel.stats.receives == 1
        assert node.kernel.stats.replies == 1
        assert node.kernel.stats.local_rendezvous == 1


class TestNonLocalRendezvous:
    def _run(self, architecture=Architecture.II):
        system, a, b = make_two_node_system(architecture)
        owner = b.create_task("owner")
        b.kernel.create_service(owner, "svc")
        server = b.create_task("server")
        b.kernel.offer(server, "svc")
        client = a.create_task("client")
        log = []
        b.kernel.receive(
            server, "svc",
            lambda m: b.kernel.reply(server, m, payload="pong"))
        a.kernel.send(client, "svc", payload="ping",
                      on_reply=lambda p: log.append((p, system.now)))
        system.sim.run()
        return system, a, b, log

    def test_remote_round_trip_completes(self):
        _system, _a, _b, log = self._run()
        assert log and log[0][0] == "pong"

    def test_exactly_two_packets_per_round_trip(self):
        """Section 4.6: one packet for send, one for reply."""
        system, _a, _b, _log = self._run()
        assert system.wire.packet_count == 2
        kinds = [p.kind for p in system.wire.packets]
        assert kinds == ["send", "reply"]

    def test_client_node_never_runs_server_work(self):
        _system, a, _b, _log = self._run()
        assert a.kernel.stats.receives == 0
        assert a.kernel.stats.remote_requests_in == 0

    def test_round_trip_nonzero_on_wire_latency(self):
        system = DistributedSystem(Architecture.I, wire_latency_us=500.0)
        a = system.add_node("a", default_mode=Mode.NONLOCAL)
        b = system.add_node("b", default_mode=Mode.NONLOCAL)
        owner = b.create_task("owner")
        b.kernel.create_service(owner, "svc")
        server = b.create_task("server")
        b.kernel.offer(server, "svc")
        b.kernel.receive(server, "svc",
                         lambda m: b.kernel.reply(server, m))
        client = a.create_task("client")
        done = []
        a.kernel.send(client, "svc",
                      on_reply=lambda p: done.append(system.now))
        system.sim.run()
        # two wire crossings add 1000 us over the zero-latency time
        assert done[0] > 1000.0


class TestMemoryReferences:
    def test_memory_move_with_rights(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "svc")
        server = node.create_task("server")
        client = node.create_task("client")
        node.kernel.offer(server, "svc")
        ref = MemoryReference(owner="client", address=0x1000, size=4096,
                              rights=AccessRight.READ)
        moved = []

        def on_message(message):
            node.kernel.memory_move(
                server, message.memory_ref, 4096, write=False,
                on_done=lambda: (moved.append(system.now),
                                 node.kernel.reply(server, message)))

        node.kernel.receive(server, "svc", on_message)
        node.kernel.send(client, "svc", memory_ref=ref)
        system.sim.run()
        assert moved
        assert node.kernel.stats.bytes_moved == 4096

    def test_write_without_right_rejected(self):
        ref = MemoryReference(owner="t", address=0, size=100,
                              rights=AccessRight.READ)
        with pytest.raises(KernelError):
            ref.check(AccessRight.WRITE, 10)

    def test_oversized_move_rejected(self):
        ref = MemoryReference(owner="t", address=0, size=100,
                              rights=AccessRight.READ)
        with pytest.raises(KernelError):
            ref.check(AccessRight.READ, 200)

    def test_rights_revoked_after_reply(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "svc")
        server = node.create_task("server")
        client = node.create_task("client")
        node.kernel.offer(server, "svc")
        ref = MemoryReference(owner="client", address=0, size=100,
                              rights=AccessRight.READ)
        node.kernel.receive(server, "svc",
                            lambda m: node.kernel.reply(server, m))
        node.kernel.send(client, "svc", memory_ref=ref)
        system.sim.run()
        assert ref.revoked
        with pytest.raises(KernelError):
            ref.check(AccessRight.READ, 10)


class TestGuards:
    def test_task_bound_to_node(self):
        system, a, b = make_two_node_system()
        stranger = a.create_task("stranger")
        with pytest.raises(KernelError):
            b.kernel.compute(stranger, 10.0, lambda: None)

    def test_duplicate_task_names_rejected_system_wide(self):
        system, a, b = make_two_node_system()
        a.create_task("t")
        with pytest.raises(KernelError):
            b.create_task("t")

    def test_reply_to_no_wait_send_rejected(self):
        system, node = make_local_system()
        owner = node.create_task("owner")
        node.kernel.create_service(owner, "svc")
        server = node.create_task("server")
        client = node.create_task("client")
        node.kernel.offer(server, "svc")
        captured = []
        node.kernel.receive(server, "svc", captured.append)
        node.kernel.send(client, "svc", expects_reply=False)
        system.sim.run()
        assert captured
        with pytest.raises(KernelError):
            node.kernel.reply(server, captured[0])

    def test_send_to_unknown_service_rejected(self):
        system, node = make_local_system()
        client = node.create_task("client")
        with pytest.raises(KernelError):
            node.kernel.send(client, "ghost")
