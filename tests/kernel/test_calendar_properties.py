"""Property suite: the fast-lane calendar vs a reference heapq model.

The :class:`~repro.kernel.sim.Simulator` splits its calendar across
three lanes (indexed heap, zero-delay deque, presorted bulk runs) as a
mechanical optimisation.  These properties pin the contract that makes
that split invisible: whatever mix of ``at`` / ``after`` /
``after(0.0)`` / ``at_cancellable`` / ``post_run`` / ``cancel`` /
``run_until`` a caller throws at it, execution order, ``now``
advancement, ``pending_events`` and ``events_processed`` match a
single naive heap ordered by ``(time, seq)``.

Times are drawn from a tiny grid so same-instant ties (the interesting
case — FIFO stability across lanes) occur constantly.
"""

from heapq import heappop, heappush

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernel.sim import Simulator

# a coarse grid makes ties and zero gaps frequent
DELTAS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0, 5.0])


class ReferenceCalendar:
    """The obviously-correct model: one heap, (time, seq) order."""

    def __init__(self):
        self.now = 0.0
        self.log = []
        self.processed = 0
        self._heap = []
        self._seq = 0
        self._cancelled = set()

    def schedule(self, time, ident):
        self._seq += 1
        heappush(self._heap, (time, self._seq, ident))

    def cancel(self, ident):
        self._cancelled.add(ident)

    def run_until(self, horizon):
        while self._heap and self._heap[0][0] <= horizon:
            time, _seq, ident = heappop(self._heap)
            if ident in self._cancelled:
                continue
            self.now = time
            self.log.append(ident)
            self.processed += 1
        self.now = max(self.now, horizon)

    @property
    def pending(self):
        return sum(1 for _t, _s, ident in self._heap
                   if ident not in self._cancelled)


def op_lists():
    """Randomised schedules: each op applies to both calendars."""
    op = st.one_of(
        st.tuples(st.just("at"), DELTAS),
        st.tuples(st.just("after"), DELTAS),
        st.just(("after0",)),
        st.tuples(st.just("cancellable"), DELTAS),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("run"),
                  st.lists(DELTAS, min_size=0, max_size=6)),
        st.tuples(st.just("advance"), DELTAS),
    )
    return st.lists(op, min_size=1, max_size=40)


def apply_ops(ops):
    """Drive a Simulator and the reference model identically.

    ``post_run`` shares one callback across its batch, so batch events
    log a negative marker (one per run) while individually scheduled
    events log their positive ident."""
    sim = Simulator()
    model = ReferenceCalendar()
    log = []
    handles = []
    ident = 0

    for operation in ops:
        kind = operation[0]
        if kind == "at":
            ident += 1
            time = sim.now + operation[1]
            sim.at(time, log.append, ident)
            model.schedule(time, ident)
        elif kind == "after":
            ident += 1
            sim.after(operation[1], log.append, ident)
            model.schedule(sim.now + operation[1], ident)
        elif kind == "after0":
            ident += 1
            sim.after(0.0, log.append, ident)
            model.schedule(sim.now, ident)
        elif kind == "cancellable":
            ident += 1
            time = sim.now + operation[1]
            handles.append((sim.at_cancellable(time, log.append, ident),
                            ident))
            model.schedule(time, ident)
        elif kind == "cancel":
            if handles:
                handle, handle_ident = \
                    handles[operation[1] % len(handles)]
                if sim.cancel(handle):
                    model.cancel(handle_ident)
        elif kind == "run":
            ident += 1
            marker = -ident     # negative: a batch event of run #ident
            times, acc = [], sim.now
            for delta in operation[1]:
                acc += delta
                times.append(acc)
            sim.post_run(times, lambda m=marker: log.append(m))
            for time in times:
                model.schedule(time, marker)
        elif kind == "advance":
            horizon = sim.now + operation[1]
            sim.run_until(horizon)
            model.run_until(horizon)
            assert sim.now == model.now
            assert sim.pending_events == model.pending
            assert log == model.log
    sim.run()
    model.run_until(float("inf"))
    assert log == model.log
    assert sim.pending_events == 0 == model.pending
    assert sim.events_processed == model.processed


@settings(max_examples=200, deadline=None)
@given(ops=op_lists())
def test_calendar_matches_reference_model(ops):
    apply_ops(ops)


@settings(max_examples=100, deadline=None)
@given(zero_delays=st.lists(st.booleans(), min_size=1, max_size=20))
def test_same_instant_fifo_across_lanes(zero_delays):
    """Events landing at one instant run in schedule order no matter
    which lane each took (heap via at(now), deque via after(0.0))."""
    sim = Simulator()
    order = []

    def kickoff():
        for index, use_lane in enumerate(zero_delays):
            if use_lane:
                sim.after(0.0, order.append, index)
            else:
                sim.at(sim.now, order.append, index)

    sim.at(1.0, kickoff)
    sim.run()
    assert order == list(range(len(zero_delays)))


@settings(max_examples=100, deadline=None)
@given(deltas=st.lists(DELTAS, min_size=1, max_size=15),
       horizon=DELTAS)
def test_pending_events_accounting(deltas, horizon):
    sim = Simulator()
    times = []
    acc = 0.0
    for delta in deltas:
        acc += delta
        times.append(acc)
    for time in times:
        sim.at(time, lambda: None)
    assert sim.pending_events == len(times)
    sim.run_until(horizon)
    expected_left = sum(1 for t in times if t > horizon)
    assert sim.pending_events == expected_left
    assert sim.events_processed == len(times) - expected_left


@given(offset=DELTAS)
@settings(max_examples=30, deadline=None)
def test_past_scheduling_rejected_from_any_now(offset):
    sim = Simulator()
    sim.at(5.0 + offset, lambda: None)
    sim.run()
    assert sim.now == 5.0 + offset
    for schedule in (lambda: sim.at(sim.now - 0.5, lambda: None),
                     lambda: sim.at_cancellable(sim.now - 0.5,
                                                lambda: None),
                     lambda: sim.post_run([sim.now - 0.5],
                                          lambda: None)):
        with pytest.raises(KernelError):
            schedule()
