"""Tests for 925 events, non-blocking send + wait, and device
interrupts via activate (sections 4.2.1-4.2.2, 4.7)."""

import pytest

from repro.errors import KernelError
from repro.kernel import DistributedSystem, TaskState
from repro.kernel.events import Event, InterruptContext
from repro.models.params import Architecture


def make_node():
    system = DistributedSystem(Architecture.II)
    node = system.add_node("n0")
    return system, node


class TestEventGroups:
    def test_wait_any_fires_on_first_event(self):
        system, node = make_node()
        task = node.create_task("t")
        a, b = Event(kind="x"), Event(kind="y")
        got = []
        node.events.wait_any(task, [a, b], got.append)
        node.events.fire(b, "payload")
        system.sim.run()
        assert got == [b]
        assert b.value == "payload"

    def test_group_satisfied_once(self):
        system, node = make_node()
        task = node.create_task("t")
        a, b = Event(), Event()
        got = []
        node.events.wait_any(task, [a, b], got.append)
        node.events.fire(a)
        node.events.fire(b)
        system.sim.run()
        assert got == [a]          # only the first wakes the task

    def test_already_fired_event_completes_immediately(self):
        system, node = make_node()
        task = node.create_task("t")
        a = Event()
        node.events.fire(a, 42)
        got = []
        node.events.wait_any(task, [a], got.append)
        system.sim.run()
        assert got == [a]

    def test_event_cannot_fire_twice(self):
        _system, node = make_node()
        a = Event()
        node.events.fire(a)
        with pytest.raises(KernelError):
            node.events.fire(a)

    def test_many_waiters_all_wake_in_wait_order(self):
        """Firing into a large wait list wakes every matching group in
        registration order with one linear sweep (regression for the
        old copy-and-remove sweep, which was O(n^2) and would time
        this test out long before n grows interesting)."""
        system, node = make_node()
        shared = Event(kind="shared")
        woken = []
        n = 2_000
        for i in range(n):
            task = node.create_task(f"w{i}")
            other = Event(kind=f"other{i}")
            node.events.wait_any(
                task, [shared, other],
                lambda _e, i=i: woken.append(i))
        node.events.fire(shared)
        system.sim.run()
        assert woken == list(range(n))
        assert node.events._waits == []

    def test_fire_keeps_unrelated_waiters_registered(self):
        system, node = make_node()
        hit, miss = Event(kind="hit"), Event(kind="miss")
        got = []
        waiting = node.create_task("waiting")
        bystander = node.create_task("bystander")
        node.events.wait_any(waiting, [hit],
                             lambda e: got.append(("hit", e)))
        node.events.wait_any(bystander, [miss],
                             lambda e: got.append(("miss", e)))
        node.events.fire(hit)
        system.sim.run()
        assert got == [("hit", hit)]
        assert len(node.events._waits) == 1
        node.events.fire(miss)
        system.sim.run()
        assert got == [("hit", hit), ("miss", miss)]

    def test_empty_group_rejected(self):
        _system, node = make_node()
        task = node.create_task("t")
        with pytest.raises(KernelError):
            node.events.wait_any(task, [], lambda e: None)


class TestNonBlockingSendWithWait:
    def test_send_completion_event(self):
        """Section 4.2.1: non-blocking send, then wait for the
        completion notice."""
        system, node = make_node()
        server = node.create_task("server")
        client = node.create_task("client")
        node.kernel.create_service(server, "svc")
        node.kernel.offer(server, "svc")
        node.kernel.receive(server, "svc",
                            lambda m: node.kernel.reply(
                                server, m, payload="done"))
        message = node.kernel.send(client, "svc")
        completion = node.events.send_completion_event(message)
        got = []
        node.events.wait_any(client, [completion], got.append)
        system.sim.run()
        assert got == [completion]
        assert completion.value == "done"

    def test_event_for_unknown_message_rejected(self):
        _system, node = make_node()
        from repro.kernel.messages import Message
        stray = Message(sender="x", service="y")
        with pytest.raises(KernelError):
            node.events.send_completion_event(stray)


class TestDeviceInterrupts:
    def _driver_setup(self):
        system, node = make_node()
        driver = node.create_task("disk-driver")
        serviced = []

        def handler(ctx: InterruptContext):
            # time-critical work, then hand off via activate
            ctx.activate(payload=ctx.data)

        node.events.install_handler(driver, "disk", handler)
        node.kernel.receive(driver, "interrupt:disk",
                            lambda m: serviced.append(m.payload))
        return system, node, driver, serviced

    def test_interrupt_flows_through_activate_to_service(self):
        system, node, _driver, serviced = self._driver_setup()
        node.events.raise_interrupt("disk", data="block-42")
        system.sim.run()
        assert serviced == ["block-42"]
        assert node.events.interrupt_count("disk") == 1

    def test_handler_runs_even_while_driver_blocked(self):
        """The handler executes in the task's context while the task
        itself is stopped in receive (section 4.2.2)."""
        system, node, driver, serviced = self._driver_setup()
        system.sim.run()
        assert driver.state is TaskState.STOPPED
        node.events.raise_interrupt("disk", data="late")
        system.sim.run()
        assert serviced == ["late"]
        assert driver.state is TaskState.COMPUTING

    def test_handler_at_interrupt_priority(self):
        """The handler jumps ahead of queued normal work."""
        system, node, _driver, serviced = self._driver_setup()
        order = []
        node.processors.host.submit(500.0, lambda: order.append("slow"))
        node.processors.host.submit(500.0, lambda: order.append("slow2"))
        node.events.raise_interrupt("disk", data="x")
        # the handler (urgent) runs after the in-service item but
        # before 'slow2'
        system.sim.run()
        assert serviced == ["x"]
        handler_done = 500.0 + 100.0          # slow + handler cost
        assert order == ["slow", "slow2"]

    def test_activate_only_once_per_interrupt(self):
        system, node = make_node()
        driver = node.create_task("driver")

        def bad_handler(ctx: InterruptContext):
            ctx.activate()
            ctx.activate()

        node.events.install_handler(driver, "timer", bad_handler)
        node.events.raise_interrupt("timer")
        with pytest.raises(KernelError):
            system.sim.run()

    def test_duplicate_driver_rejected(self):
        _system, node = make_node()
        driver = node.create_task("driver")
        node.events.install_handler(driver, "net", lambda ctx: None)
        with pytest.raises(KernelError):
            node.events.install_handler(driver, "net",
                                        lambda ctx: None)

    def test_interrupt_without_driver_rejected(self):
        _system, node = make_node()
        with pytest.raises(KernelError):
            node.events.raise_interrupt("ghost-device")
        with pytest.raises(KernelError):
            node.events.interrupt_count("ghost-device")
