"""Tests for the conversation workload and cost models."""

import pytest

from repro.errors import KernelError, WorkloadError
from repro.kernel import (build_conversation_system, cost_model,
                          run_conversation_experiment)
from repro.models.params import Architecture, Mode, round_trip_sum


class TestCostModels:
    def test_cost_model_total_matches_action_table(self):
        for arch in Architecture:
            for mode in Mode:
                costs = cost_model(arch, mode)
                assert costs.total() == pytest.approx(
                    round_trip_sum(arch, mode)), (arch, mode)

    def test_arch1_runs_ipc_on_host(self):
        costs = cost_model(Architecture.I, Mode.LOCAL)
        assert not costs.ipc_on_mp
        assert costs.process_send == 0.0

    def test_arch2_has_coprocessor_steps(self):
        costs = cost_model(Architecture.II, Mode.LOCAL)
        assert costs.ipc_on_mp
        assert costs.process_send == pytest.approx(1030.2)
        assert costs.match == pytest.approx(1264.4)

    def test_local_mode_has_no_dma(self):
        for arch in Architecture:
            costs = cost_model(arch, Mode.LOCAL)
            assert costs.dma_out_request == 0.0
            assert costs.dma_in_reply == 0.0

    def test_smart_bus_cheaper_everywhere(self):
        a2 = cost_model(Architecture.II, Mode.NONLOCAL)
        a3 = cost_model(Architecture.III, Mode.NONLOCAL)
        assert a3.total() < a2.total()


class TestConversationWorkload:
    def test_zero_compute_single_conversation_arch1_local(self):
        result = run_conversation_experiment(
            Architecture.I, Mode.LOCAL, 1, 0.0,
            warmup_us=50_000, measure_us=500_000)
        # deterministic: exactly 1/4970 round trips per microsecond
        assert result.throughput == pytest.approx(1 / 4970.0, rel=0.02)
        assert result.mean_round_trip == pytest.approx(4970.0, rel=0.02)

    def test_arch1_local_throughput_flat_in_conversations(self):
        t1 = run_conversation_experiment(
            Architecture.I, Mode.LOCAL, 1, 0.0,
            warmup_us=50_000, measure_us=500_000).throughput
        t3 = run_conversation_experiment(
            Architecture.I, Mode.LOCAL, 3, 0.0,
            warmup_us=50_000, measure_us=500_000).throughput
        assert t3 == pytest.approx(t1, rel=0.02)

    def test_coprocessor_gains_with_conversations(self):
        t1 = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 1, 2850.0,
            warmup_us=50_000, measure_us=500_000).throughput
        t3 = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 3, 2850.0,
            warmup_us=50_000, measure_us=500_000).throughput
        assert t3 > t1 * 1.2

    def test_compute_time_lowers_throughput(self):
        fast = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 2, 0.0,
            warmup_us=50_000, measure_us=400_000).throughput
        slow = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 2, 5700.0,
            warmup_us=50_000, measure_us=400_000).throughput
        assert slow < fast

    def test_nonlocal_splits_clients_and_servers(self):
        system, _meter = build_conversation_system(
            Architecture.II, Mode.NONLOCAL, 2, 0.0)
        assert set(system.nodes) == {"clients", "servers"}
        assert all(name.startswith("client")
                   for name in system.nodes["clients"].tasks)

    def test_seed_reproducibility(self):
        a = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 2, 2850.0, seed=7,
            warmup_us=50_000, measure_us=300_000)
        b = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 2, 2850.0, seed=7,
            warmup_us=50_000, measure_us=300_000)
        assert a.throughput == b.throughput

    def test_utilization_reported_per_processor(self):
        result = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 1, 0.0,
            warmup_us=10_000, measure_us=200_000)
        node_util = result.utilization["node0"]
        assert 0 < node_util["host"] < 1
        assert 0 < node_util["mp"] < 1

    def test_mp_busier_than_host_at_max_load(self):
        """At zero compute the MP is the bottleneck (section 6.9.1)."""
        result = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 3, 0.0,
            warmup_us=50_000, measure_us=400_000)
        node_util = result.utilization["node0"]
        assert node_util["mp"] > node_util["host"]

    def test_rejects_zero_conversations(self):
        with pytest.raises(WorkloadError):
            build_conversation_system(Architecture.I, Mode.LOCAL, 0, 0.0)

    def test_rejects_empty_window(self):
        from repro.kernel import ConversationMeter
        meter = ConversationMeter()
        with pytest.raises(KernelError):
            meter.throughput(10.0, 10.0)
