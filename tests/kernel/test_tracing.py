"""Tests for kernel execution tracing."""

import pytest

from repro.kernel import DistributedSystem
from repro.kernel.tracing import record_node
from repro.models.params import Architecture


def traced_rendezvous():
    system = DistributedSystem(Architecture.II)
    node = system.add_node("n0")
    trace = record_node(node)
    server = node.create_task("server")
    client = node.create_task("client")
    node.kernel.create_service(server, "svc")
    node.kernel.offer(server, "svc")
    node.kernel.receive(server, "svc",
                        lambda m: node.kernel.reply(server, m))
    node.kernel.send(client, "svc")
    system.sim.run()
    return system, node, trace


def test_trace_captures_every_kernel_activity():
    _system, _node, trace = traced_rendezvous()
    labels = {event.label for event in trace.events}
    for expected in ("syscall send", "process send", "syscall receive",
                     "process receive", "match", "syscall reply",
                     "process reply", "restart client"):
        assert expected in labels, expected


def test_events_attributed_to_right_processor():
    _system, _node, trace = traced_rendezvous()
    mp_labels = {e.label for e in trace.by_processor("mp")}
    host_labels = {e.label for e in trace.by_processor("host")}
    assert "process send" in mp_labels
    assert "match" in mp_labels
    assert "syscall send" in host_labels
    assert "process send" not in host_labels


def test_durations_match_cost_model():
    _system, node, trace = traced_rendezvous()
    (match_event,) = trace.by_label("match")
    assert match_event.duration == pytest.approx(
        node.costs(local=True).match)


def test_busy_time_equals_processor_stats():
    _system, node, trace = traced_rendezvous()
    assert trace.busy_time("mp") == pytest.approx(
        node.processors.mp.stats.busy_time)


def test_activity_breakdown_covers_total():
    _system, node, trace = traced_rendezvous()
    breakdown = trace.activity_breakdown()
    total = sum(breakdown.values())
    stats_total = sum(p.stats.busy_time
                      for p in node.processors.everything)
    assert total == pytest.approx(stats_total)


def test_events_ordered_and_non_overlapping_per_processor():
    _system, _node, trace = traced_rendezvous()
    for processor in ("host", "mp"):
        events = trace.by_processor(processor)
        for before, after in zip(events, events[1:]):
            assert after.started_at >= before.completed_at - 1e-9


def test_timeline_rendering():
    _system, _node, trace = traced_rendezvous()
    text = trace.timeline("host")
    assert "n0.host" in text
    assert "syscall send" in text
