"""Tests for the DES core and processor model."""

import pytest

from repro.errors import KernelError
from repro.kernel import Processor, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(5.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.at(1.0, lambda: order.append(1))
        sim.at(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, lambda: fired.append(1))
        sim.at(20.0, lambda: fired.append(2))
        sim.run_until(15.0)
        assert fired == [1]
        assert sim.now == 15.0
        assert sim.pending_events == 1

    def test_actions_can_schedule_more_events(self):
        sim = Simulator()
        hits = []

        def recur(n):
            hits.append(sim.now)
            if n > 0:
                sim.after(1.0, lambda: recur(n - 1))

        sim.at(0.0, lambda: recur(3))
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(KernelError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(KernelError):
            sim.after(-1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.after(0.0, forever)

        sim.at(0.0, forever)
        with pytest.raises(KernelError):
            sim.run_until(1.0, max_events=100)

    def test_max_events_allows_exactly_max_events(self):
        """The guard trips on the (max+1)-th event, so exactly
        max_events run — not max_events + 1."""
        sim = Simulator()
        hits = []
        for i in range(4):
            sim.at(float(i), lambda i=i: hits.append(i))
        with pytest.raises(KernelError):
            sim.run(max_events=3)
        assert hits == [0, 1, 2]
        assert sim.events_processed == 3

    def test_exact_event_budget_does_not_trip(self):
        sim = Simulator()
        hits = []
        for i in range(3):
            sim.at(float(i), lambda i=i: hits.append(i))
        sim.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_events_processed_survives_raising_action(self):
        """A KernelError out of an action must not lose the count of
        events that already ran."""
        sim = Simulator()

        def boom():
            raise KernelError("boom")

        sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        sim.at(3.0, boom)
        with pytest.raises(KernelError, match="boom"):
            sim.run()
        assert sim.events_processed == 3

    def test_action_argument_passed_without_closure(self):
        sim = Simulator()
        got = []
        sim.at(1.0, got.append, "x")
        sim.after(1.0, got.append, "y")
        sim.after(0.0, got.append, "z")
        sim.run()
        assert got == ["z", "x", "y"]

    def test_now_lane_interleaves_with_heap_in_seq_order(self):
        """after(0.0) events and at(now) events at the same instant
        run in schedule order, whichever lane they took."""
        sim = Simulator()
        order = []

        def kickoff():
            sim.at(sim.now, lambda: order.append("heap1"))
            sim.after(0.0, lambda: order.append("lane1"))
            sim.at(sim.now, lambda: order.append("heap2"))
            sim.after(0.0, lambda: order.append("lane2"))

        sim.at(5.0, kickoff)
        sim.run()
        assert order == ["heap1", "lane1", "heap2", "lane2"]

    def test_now_lane_runs_before_later_heap_events(self):
        sim = Simulator()
        order = []
        sim.at(1.0, lambda: sim.after(0.0, lambda: order.append("wake")))
        sim.at(2.0, lambda: order.append("later"))
        sim.run()
        assert order == ["wake", "later"]

    def test_cancel_pending_event(self):
        sim = Simulator()
        hits = []
        handle = sim.at_cancellable(5.0, lambda: hits.append("cancelled"))
        sim.at(6.0, lambda: hits.append("kept"))
        assert sim.pending_events == 2
        assert sim.cancel(handle) is True
        assert sim.pending_events == 1
        sim.run()
        assert hits == ["kept"]
        assert sim.events_processed == 1

    def test_cancel_is_idempotent_and_safe_after_run(self):
        sim = Simulator()
        hits = []
        handle = sim.at_cancellable(1.0, lambda: hits.append(1))
        assert sim.cancel(handle) is True
        assert sim.cancel(handle) is False
        sim.run()
        ran = sim.at_cancellable(2.0, lambda: hits.append(2))
        sim.run()
        assert sim.cancel(ran) is False      # already executed
        assert hits == [2]

    def test_cancellable_event_runs_when_not_cancelled(self):
        sim = Simulator()
        hits = []
        sim.at_cancellable(3.0, hits.append, "ran")
        sim.run()
        assert hits == ["ran"]

    def test_post_run_bulk_insert_merges_with_heap(self):
        sim = Simulator()
        order = []
        count = sim.post_run([1.0, 3.0, 5.0],
                             lambda: order.append(("run", sim.now)))
        assert count == 3
        sim.at(2.0, lambda: order.append(("at", sim.now)))
        sim.after(4.0, lambda: order.append(("after", sim.now)))
        assert sim.pending_events == 5
        sim.run()
        assert order == [("run", 1.0), ("at", 2.0), ("run", 3.0),
                         ("after", 4.0), ("run", 5.0)]
        assert sim.pending_events == 0

    def test_post_run_ties_follow_posting_order(self):
        """A run posted before an at() at the same instant keeps its
        earlier sequence numbers, and vice versa."""
        sim = Simulator()
        order = []
        sim.post_run([1.0, 2.0], lambda: order.append("first"))
        sim.at(1.0, lambda: order.append("second"))
        sim.post_run([2.0], lambda: order.append("third"))
        sim.run()
        assert order == ["first", "second", "first", "third"]

    def test_post_run_rejects_unsorted_and_past_times(self):
        sim = Simulator()
        with pytest.raises(KernelError):
            sim.post_run([2.0, 1.0], lambda: None)
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(KernelError):
            sim.post_run([1.0, 2.0], lambda: None)

    def test_post_run_empty_batch_is_noop(self):
        sim = Simulator()
        assert sim.post_run([], lambda: None) == 0
        assert sim.pending_events == 0

    def test_run_until_counts_run_events_toward_horizon(self):
        sim = Simulator()
        hits = []
        sim.post_run([1.0, 2.0, 3.0], lambda: hits.append(sim.now))
        sim.run_until(2.0)
        assert hits == [1.0, 2.0]
        assert sim.pending_events == 1
        sim.run()
        assert hits == [1.0, 2.0, 3.0]


class TestProcessor:
    def test_fcfs_order(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        done = []
        cpu.submit(10.0, lambda: done.append(("a", sim.now)))
        cpu.submit(5.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 10.0), ("b", 15.0)]

    def test_urgent_jumps_queue_but_does_not_preempt(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        done = []
        cpu.submit(10.0, lambda: done.append(("normal1", sim.now)))
        cpu.submit(10.0, lambda: done.append(("normal2", sim.now)))
        sim.at(1.0, lambda: cpu.submit(
            2.0, lambda: done.append(("intr", sim.now)), urgent=True))
        sim.run()
        # the in-progress item completes, then the interrupt runs
        assert done == [("normal1", 10.0), ("intr", 12.0),
                        ("normal2", 22.0)]

    def test_utilization_accounting(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        cpu.submit(30.0)
        cpu.submit(20.0)
        sim.run()
        assert cpu.stats.busy_time == pytest.approx(50.0)
        assert cpu.stats.items_completed == 2
        assert cpu.stats.utilization(100.0) == pytest.approx(0.5)

    def test_zero_duration_work_allowed(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        hits = []
        cpu.submit(0.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [0.0]

    def test_negative_duration_rejected(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        with pytest.raises(KernelError):
            cpu.submit(-1.0)

    def test_queue_length_visible(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        cpu.submit(10.0)
        cpu.submit(10.0)
        cpu.submit(10.0)
        # one item in service, two queued
        assert cpu.queue_length == 2
        assert cpu.busy
