"""Tests for the DES core and processor model."""

import pytest

from repro.errors import KernelError
from repro.kernel import Processor, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(5.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.at(1.0, lambda: order.append(1))
        sim.at(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, lambda: fired.append(1))
        sim.at(20.0, lambda: fired.append(2))
        sim.run_until(15.0)
        assert fired == [1]
        assert sim.now == 15.0
        assert sim.pending_events == 1

    def test_actions_can_schedule_more_events(self):
        sim = Simulator()
        hits = []

        def recur(n):
            hits.append(sim.now)
            if n > 0:
                sim.after(1.0, lambda: recur(n - 1))

        sim.at(0.0, lambda: recur(3))
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(KernelError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(KernelError):
            sim.after(-1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.after(0.0, forever)

        sim.at(0.0, forever)
        with pytest.raises(KernelError):
            sim.run_until(1.0, max_events=100)


class TestProcessor:
    def test_fcfs_order(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        done = []
        cpu.submit(10.0, lambda: done.append(("a", sim.now)))
        cpu.submit(5.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 10.0), ("b", 15.0)]

    def test_urgent_jumps_queue_but_does_not_preempt(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        done = []
        cpu.submit(10.0, lambda: done.append(("normal1", sim.now)))
        cpu.submit(10.0, lambda: done.append(("normal2", sim.now)))
        sim.at(1.0, lambda: cpu.submit(
            2.0, lambda: done.append(("intr", sim.now)), urgent=True))
        sim.run()
        # the in-progress item completes, then the interrupt runs
        assert done == [("normal1", 10.0), ("intr", 12.0),
                        ("normal2", 22.0)]

    def test_utilization_accounting(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        cpu.submit(30.0)
        cpu.submit(20.0)
        sim.run()
        assert cpu.stats.busy_time == pytest.approx(50.0)
        assert cpu.stats.items_completed == 2
        assert cpu.stats.utilization(100.0) == pytest.approx(0.5)

    def test_zero_duration_work_allowed(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        hits = []
        cpu.submit(0.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [0.0]

    def test_negative_duration_rejected(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        with pytest.raises(KernelError):
            cpu.submit(-1.0)

    def test_queue_length_visible(self):
        sim = Simulator()
        cpu = Processor(sim, "cpu")
        cpu.submit(10.0)
        cpu.submit(10.0)
        cpu.submit(10.0)
        # one item in service, two queued
        assert cpu.queue_length == 2
        assert cpu.busy
