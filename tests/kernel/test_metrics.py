"""Tests for the conversation meter (windows, percentiles, fairness)."""

import random

import pytest

from repro.errors import KernelError
from repro.kernel import (ConversationMeter, RoundTripSample,
                          run_conversation_experiment)
from repro.models.params import Architecture, Mode


def loaded_meter():
    meter = ConversationMeter()
    for i in range(10):
        meter.record("c0", started_at=i * 100.0,
                     completed_at=i * 100.0 + 50.0 + i)
    return meter


def test_window_selects_completions():
    meter = loaded_meter()
    assert len(meter.window(0.0, 500.0)) == 5
    assert len(meter.window(0.0, 2000.0)) == 10


def test_throughput_counts_per_microsecond():
    meter = loaded_meter()
    assert meter.throughput(0.0, 1000.0) == pytest.approx(10 / 1000.0)


def test_mean_round_trip():
    meter = loaded_meter()
    # latencies 50..59
    assert meter.mean_round_trip(0.0, 2000.0) == pytest.approx(54.5)


def test_percentiles():
    meter = loaded_meter()
    assert meter.latency_percentile(0.0, 2000.0, 0) == 50.0
    assert meter.latency_percentile(0.0, 2000.0, 100) == 59.0
    assert meter.latency_percentile(0.0, 2000.0, 50) == \
        pytest.approx(54.5)


def test_percentile_validation():
    meter = loaded_meter()
    with pytest.raises(KernelError):
        meter.latency_percentile(0.0, 2000.0, 150)
    with pytest.raises(KernelError):
        ConversationMeter().latency_percentile(0.0, 1.0, 50)


def test_reversed_completion_rejected():
    meter = ConversationMeter()
    with pytest.raises(KernelError):
        meter.record("c", started_at=10.0, completed_at=5.0)


def test_per_client_counts_fairness():
    """With FCFS scheduling and identical clients, completions split
    roughly evenly (the thesis's equal-priority workload)."""
    from repro.kernel import build_conversation_system
    system, meter = build_conversation_system(
        Architecture.II, Mode.LOCAL, 3, 1000.0)
    system.run_for(1_500_000.0)
    counts = meter.per_client_counts(100_000.0, 1_500_000.0)
    assert set(counts) == {"client0", "client1", "client2"}
    low, high = min(counts.values()), max(counts.values())
    assert high - low <= max(3, 0.2 * high)


def test_window_boundaries_are_half_open():
    meter = ConversationMeter()
    meter.record("c", 0.0, 100.0)
    assert meter.window(100.0, 200.0) == meter.samples
    assert meter.window(0.0, 100.0) == []


def test_failure_recording_and_window():
    meter = loaded_meter()
    meter.record_failure("c1", started_at=0.0, failed_at=500.0)
    meter.record_failure("c1", started_at=400.0, failed_at=1500.0)
    assert meter.failure_count == 2
    assert len(meter.failure_window(0.0, 1000.0)) == 1
    assert meter.failures[0].duration == 500.0


def test_failure_before_start_rejected():
    with pytest.raises(KernelError):
        ConversationMeter().record_failure("c", 10.0, 5.0)


def test_completion_rate():
    meter = loaded_meter()                  # 10 completions < 1000us
    meter.record_failure("c1", 0.0, 400.0)
    assert meter.completion_rate(0.0, 1000.0) == \
        pytest.approx(10 / 11)
    assert meter.completion_rate(0.0, 300.0) == 1.0
    with pytest.raises(KernelError):
        meter.completion_rate(5000.0, 6000.0)


def test_failures_do_not_disturb_latency_statistics():
    meter = loaded_meter()
    mean_before = meter.mean_round_trip(0.0, 2000.0)
    meter.record_failure("c9", 0.0, 900.0)
    assert meter.mean_round_trip(0.0, 2000.0) == mean_before
    assert len(meter.window(0.0, 2000.0)) == 10


def test_deterministic_round_trip_latency():
    result = run_conversation_experiment(
        Architecture.I, Mode.LOCAL, 1, 0.0,
        warmup_us=20_000, measure_us=200_000)
    # a single deterministic conversation: every latency is 4970
    assert result.mean_round_trip == pytest.approx(4970.0, rel=1e-6)


# ----------------------------------------------------------------------
# regression: the indexed window/percentile fast path must agree with
# the naive linear-scan definition in every append pattern
# ----------------------------------------------------------------------

def naive_window(meter, start, end):
    return [s for s in meter.samples if start <= s.completed_at < end]


def naive_percentile(meter, start, end, percentile):
    latencies = sorted(s.latency for s in naive_window(meter, start,
                                                       end))
    if not latencies:
        raise KernelError("empty")
    rank = percentile / 100.0 * (len(latencies) - 1)
    low = int(rank)
    high = min(low + 1, len(latencies) - 1)
    fraction = rank - low
    return latencies[low] * (1 - fraction) \
        + latencies[high] * fraction


def assert_matches_naive(meter, windows):
    for start, end in windows:
        expected = naive_window(meter, start, end)
        assert meter.window(start, end) == expected, (start, end)
        if expected:
            for percentile in (0, 25, 50, 90, 99, 100):
                assert meter.latency_percentile(
                    start, end, percentile) == pytest.approx(
                    naive_percentile(meter, start, end, percentile))


def test_fast_path_matches_naive_on_monotone_stream():
    meter = ConversationMeter()
    rng = random.Random(0)
    now = 0.0
    for i in range(500):
        now += rng.expovariate(0.01)
        meter.record(f"c{i % 7}", started_at=now - rng.uniform(1, 400),
                     completed_at=now)
    assert_matches_naive(meter, [(0.0, 1e9), (5_000.0, 20_000.0),
                                 (0.0, 0.0), (1e9, 2e9),
                                 (now, now + 1.0)])


def test_fast_path_matches_naive_with_ties():
    meter = ConversationMeter()
    for i in range(30):
        meter.record("c", started_at=0.0,
                     completed_at=float(i // 3) * 100.0)
    # boundaries exactly on tied completion times, half-open semantics
    assert_matches_naive(meter, [(0.0, 100.0), (100.0, 100.0),
                                 (100.0, 300.0), (0.0, 1_000.0),
                                 (900.0, 901.0)])


def test_out_of_order_direct_appends_fall_back_correctly():
    """Hand-built meters (several tests append to ``samples``
    directly) may violate the DES monotone-completion invariant; the
    meter must notice and still give exact answers."""
    meter = ConversationMeter()
    meter.record("a", 0.0, 500.0)
    meter.samples.append(RoundTripSample("b", 0.0, 100.0))   # rewinds
    meter.samples.append(RoundTripSample("c", 50.0, 300.0))
    assert_matches_naive(meter, [(0.0, 200.0), (0.0, 1_000.0),
                                 (100.0, 500.0), (300.0, 500.0)])


def test_external_truncation_and_replacement_resync():
    meter = ConversationMeter()
    for i in range(10):
        meter.record("c", i * 10.0, i * 10.0 + 5.0)
    assert len(meter.window(0.0, 100.0)) == 10   # builds the index
    del meter.samples[5:]                        # external surgery
    assert len(meter.window(0.0, 100.0)) == 5
    meter.samples[:] = [RoundTripSample("x", 0.0, 42.0)]
    assert_matches_naive(meter, [(0.0, 100.0), (42.0, 43.0)])


def test_queries_interleaved_with_appends_stay_fresh():
    """The sorted-window cache must be invalidated by every append."""
    meter = ConversationMeter()
    meter.record("c", 0.0, 10.0)
    assert meter.latency_percentile(0.0, 100.0, 50) == 10.0
    meter.record("c", 0.0, 30.0)
    assert meter.latency_percentile(0.0, 100.0, 50) == \
        pytest.approx(20.0)
    assert meter.latency_percentile(0.0, 100.0, 100) == 30.0


def test_fast_path_fuzz_against_naive():
    rng = random.Random(42)
    meter = ConversationMeter()
    now = 0.0
    for i in range(400):
        if rng.random() < 0.1:
            # occasional out-of-order hand append
            meter.samples.append(RoundTripSample(
                "hand", 0.0, rng.uniform(0.0, max(now, 1.0))))
        else:
            now += rng.expovariate(0.05)
            meter.record("des", max(0.0, now - 10.0), now)
        if rng.random() < 0.2:
            start = rng.uniform(0.0, max(now, 1.0))
            end = start + rng.uniform(0.0, now / 2 + 1.0)
            assert meter.window(start, end) == \
                naive_window(meter, start, end)
