"""Tests for the conversation meter (windows, percentiles, fairness)."""

import pytest

from repro.errors import KernelError
from repro.kernel import ConversationMeter, run_conversation_experiment
from repro.models.params import Architecture, Mode


def loaded_meter():
    meter = ConversationMeter()
    for i in range(10):
        meter.record("c0", started_at=i * 100.0,
                     completed_at=i * 100.0 + 50.0 + i)
    return meter


def test_window_selects_completions():
    meter = loaded_meter()
    assert len(meter.window(0.0, 500.0)) == 5
    assert len(meter.window(0.0, 2000.0)) == 10


def test_throughput_counts_per_microsecond():
    meter = loaded_meter()
    assert meter.throughput(0.0, 1000.0) == pytest.approx(10 / 1000.0)


def test_mean_round_trip():
    meter = loaded_meter()
    # latencies 50..59
    assert meter.mean_round_trip(0.0, 2000.0) == pytest.approx(54.5)


def test_percentiles():
    meter = loaded_meter()
    assert meter.latency_percentile(0.0, 2000.0, 0) == 50.0
    assert meter.latency_percentile(0.0, 2000.0, 100) == 59.0
    assert meter.latency_percentile(0.0, 2000.0, 50) == \
        pytest.approx(54.5)


def test_percentile_validation():
    meter = loaded_meter()
    with pytest.raises(KernelError):
        meter.latency_percentile(0.0, 2000.0, 150)
    with pytest.raises(KernelError):
        ConversationMeter().latency_percentile(0.0, 1.0, 50)


def test_reversed_completion_rejected():
    meter = ConversationMeter()
    with pytest.raises(KernelError):
        meter.record("c", started_at=10.0, completed_at=5.0)


def test_per_client_counts_fairness():
    """With FCFS scheduling and identical clients, completions split
    roughly evenly (the thesis's equal-priority workload)."""
    from repro.kernel import build_conversation_system
    system, meter = build_conversation_system(
        Architecture.II, Mode.LOCAL, 3, 1000.0)
    system.run_for(1_500_000.0)
    counts = meter.per_client_counts(100_000.0, 1_500_000.0)
    assert set(counts) == {"client0", "client1", "client2"}
    low, high = min(counts.values()), max(counts.values())
    assert high - low <= max(3, 0.2 * high)


def test_deterministic_round_trip_latency():
    result = run_conversation_experiment(
        Architecture.I, Mode.LOCAL, 1, 0.0,
        warmup_us=20_000, measure_us=200_000)
    # a single deterministic conversation: every latency is 4970
    assert result.mean_round_trip == pytest.approx(4970.0, rel=1e-6)
