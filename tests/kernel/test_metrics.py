"""Tests for the conversation meter (windows, percentiles, fairness)."""

import pytest

from repro.errors import KernelError
from repro.kernel import ConversationMeter, run_conversation_experiment
from repro.models.params import Architecture, Mode


def loaded_meter():
    meter = ConversationMeter()
    for i in range(10):
        meter.record("c0", started_at=i * 100.0,
                     completed_at=i * 100.0 + 50.0 + i)
    return meter


def test_window_selects_completions():
    meter = loaded_meter()
    assert len(meter.window(0.0, 500.0)) == 5
    assert len(meter.window(0.0, 2000.0)) == 10


def test_throughput_counts_per_microsecond():
    meter = loaded_meter()
    assert meter.throughput(0.0, 1000.0) == pytest.approx(10 / 1000.0)


def test_mean_round_trip():
    meter = loaded_meter()
    # latencies 50..59
    assert meter.mean_round_trip(0.0, 2000.0) == pytest.approx(54.5)


def test_percentiles():
    meter = loaded_meter()
    assert meter.latency_percentile(0.0, 2000.0, 0) == 50.0
    assert meter.latency_percentile(0.0, 2000.0, 100) == 59.0
    assert meter.latency_percentile(0.0, 2000.0, 50) == \
        pytest.approx(54.5)


def test_percentile_validation():
    meter = loaded_meter()
    with pytest.raises(KernelError):
        meter.latency_percentile(0.0, 2000.0, 150)
    with pytest.raises(KernelError):
        ConversationMeter().latency_percentile(0.0, 1.0, 50)


def test_reversed_completion_rejected():
    meter = ConversationMeter()
    with pytest.raises(KernelError):
        meter.record("c", started_at=10.0, completed_at=5.0)


def test_per_client_counts_fairness():
    """With FCFS scheduling and identical clients, completions split
    roughly evenly (the thesis's equal-priority workload)."""
    from repro.kernel import build_conversation_system
    system, meter = build_conversation_system(
        Architecture.II, Mode.LOCAL, 3, 1000.0)
    system.run_for(1_500_000.0)
    counts = meter.per_client_counts(100_000.0, 1_500_000.0)
    assert set(counts) == {"client0", "client1", "client2"}
    low, high = min(counts.values()), max(counts.values())
    assert high - low <= max(3, 0.2 * high)


def test_window_boundaries_are_half_open():
    meter = ConversationMeter()
    meter.record("c", 0.0, 100.0)
    assert meter.window(100.0, 200.0) == meter.samples
    assert meter.window(0.0, 100.0) == []


def test_failure_recording_and_window():
    meter = loaded_meter()
    meter.record_failure("c1", started_at=0.0, failed_at=500.0)
    meter.record_failure("c1", started_at=400.0, failed_at=1500.0)
    assert meter.failure_count == 2
    assert len(meter.failure_window(0.0, 1000.0)) == 1
    assert meter.failures[0].duration == 500.0


def test_failure_before_start_rejected():
    with pytest.raises(KernelError):
        ConversationMeter().record_failure("c", 10.0, 5.0)


def test_completion_rate():
    meter = loaded_meter()                  # 10 completions < 1000us
    meter.record_failure("c1", 0.0, 400.0)
    assert meter.completion_rate(0.0, 1000.0) == \
        pytest.approx(10 / 11)
    assert meter.completion_rate(0.0, 300.0) == 1.0
    with pytest.raises(KernelError):
        meter.completion_rate(5000.0, 6000.0)


def test_failures_do_not_disturb_latency_statistics():
    meter = loaded_meter()
    mean_before = meter.mean_round_trip(0.0, 2000.0)
    meter.record_failure("c9", 0.0, 900.0)
    assert meter.mean_round_trip(0.0, 2000.0) == mean_before
    assert len(meter.window(0.0, 2000.0)) == 10


def test_deterministic_round_trip_latency():
    result = run_conversation_experiment(
        Architecture.I, Mode.LOCAL, 1, 0.0,
        warmup_us=20_000, measure_us=200_000)
    # a single deterministic conversation: every latency is 4970
    assert result.mean_round_trip == pytest.approx(4970.0, rel=1e-6)
