"""Tests for message-path time-stamping (section 3.3 technique 3)."""

import pytest

from repro.errors import KernelError
from repro.kernel import DistributedSystem
from repro.models.params import Architecture, Mode


def run_rendezvous(architecture=Architecture.II, remote=False):
    system = DistributedSystem(architecture)
    if remote:
        server_node = system.add_node("s", default_mode=Mode.NONLOCAL)
        client_node = system.add_node("c", default_mode=Mode.NONLOCAL)
    else:
        server_node = client_node = system.add_node("n0")
    server = server_node.create_task("server")
    client = client_node.create_task("client")
    server_node.kernel.create_service(server, "svc")
    server_node.kernel.offer(server, "svc")
    server_node.kernel.receive(
        server, "svc",
        lambda m: server_node.kernel.reply(server, m))
    message = client_node.kernel.send(client, "svc")
    system.sim.run()
    return system, message


def test_local_journey_stages_in_order():
    _system, message = run_rendezvous()
    stages = [name for name, _t in message.stamps]
    assert stages == ["posted", "queued", "matched", "delivered",
                      "reply posted", "rendezvous complete"]
    times = [t for _n, t in message.stamps]
    assert times == sorted(times)


def test_remote_journey_includes_network_queueing():
    _system, message = run_rendezvous(remote=True)
    stages = [name for name, _t in message.stamps]
    assert stages[0] == "posted"
    assert "queued" in stages
    assert stages[-1] == "rendezvous complete"
    # the wire + DMA + interrupt path makes queued noticeably later
    assert message.stage_time("queued") > \
        message.stage_time("posted") + 1000.0


def test_stage_durations_reconstruct_costs():
    """The queued->matched stage equals the match processing time."""
    system, message = run_rendezvous()
    node = system.nodes["n0"]
    durations = message.stage_durations()
    assert durations["queued->matched"] == pytest.approx(
        node.costs(local=True).match)
    assert durations["matched->delivered"] == pytest.approx(
        node.costs(local=True).restart_server_pre)


def test_round_trip_equals_first_to_last_stamp():
    _system, message = run_rendezvous(Architecture.I)
    total = message.stage_time("rendezvous complete") \
        - message.stage_time("posted")
    assert total == pytest.approx(4970.0, rel=1e-6)


def test_queue_wait_measured_under_load():
    """With a busy server, later messages wait on the service queue
    (the 'time spent by the message on different queues' measure)."""
    system = DistributedSystem(Architecture.II)
    node = system.add_node("n0")
    server = node.create_task("server")
    node.kernel.create_service(server, "svc")
    node.kernel.offer(server, "svc")

    def serve(message):
        node.kernel.compute(
            node.tasks["server"], 5000.0,
            lambda: node.kernel.reply(
                server, message,
                on_done=lambda: node.kernel.receive(server, "svc",
                                                    serve)))

    node.kernel.receive(server, "svc", serve)
    first = node.create_task("c0")
    second = node.create_task("c1")
    m1 = node.kernel.send(first, "svc")
    m2 = node.kernel.send(second, "svc")
    system.sim.run()
    wait1 = m1.stage_time("matched") - m1.stage_time("queued")
    wait2 = m2.stage_time("matched") - m2.stage_time("queued")
    assert wait2 > wait1 + 4000.0      # m2 queued behind m1's service


def test_missing_stage_rejected():
    _system, message = run_rendezvous()
    with pytest.raises(KernelError):
        message.stage_time("teleported")
