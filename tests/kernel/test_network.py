"""Tests for the wire's packet accounting."""

import pytest

from repro.errors import KernelError
from repro.kernel import PacketRecord, Simulator, Wire


def loaded_wire(latency=5.0):
    sim = Simulator()
    wire = Wire(sim, latency_us=latency)
    wire.transmit("clients", "servers", "send", lambda: None)
    sim.after(10.0, lambda: wire.transmit("servers", "clients",
                                          "reply", lambda: None))
    sim.after(20.0, lambda: wire.transmit("clients", "servers",
                                          "send", lambda: None))
    sim.run()
    return wire


def test_negative_latency_rejected():
    with pytest.raises(KernelError):
        Wire(Simulator(), latency_us=-1.0)


def test_packets_logged_in_transmission_order():
    wire = loaded_wire()
    sent = [p.sent_at for p in wire.packets]
    assert sent == sorted(sent) == [0.0, 10.0, 20.0]
    assert wire.packet_count == 3


def test_packet_records_default_to_delivered():
    assert PacketRecord("a", "b", "send", 0.0).status == "delivered"
    wire = loaded_wire()
    assert all(p.status == "delivered" for p in wire.packets)


def test_counts_by_destination():
    wire = loaded_wire()
    assert wire.counts_by_destination() == {"servers": 2, "clients": 1}


def test_counts_by_kind():
    wire = loaded_wire()
    assert wire.counts_by_kind() == {"send": 2, "reply": 1}


def test_counts_by_status():
    wire = loaded_wire()
    assert wire.counts_by_status() == {"delivered": 3}


def test_delivery_respects_constant_latency():
    sim = Simulator()
    wire = Wire(sim, latency_us=7.5)
    arrivals = []
    wire.transmit("a", "b", "send", lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [7.5]


def test_empty_wire_counts_are_empty():
    wire = Wire(Simulator())
    assert wire.counts_by_destination() == {}
    assert wire.counts_by_kind() == {}
    assert wire.counts_by_status() == {}
    assert wire.packet_count == 0
