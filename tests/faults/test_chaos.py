"""Tests for the chaos harness: degradation is graceful and seeded."""

import pytest

from repro.faults import NodeOutage, outage_recovery_table
from repro.faults.chaos import (run_chaos_experiment, sweep_table,
                                degradation_figure)
from repro.models.params import Architecture


def test_zero_loss_matches_reliable_run():
    result = run_chaos_experiment(Architecture.II, loss_rate=0.0,
                                  seed=1, measure_us=300_000.0)
    assert result.failed == 0
    assert result.retransmissions == 0
    assert result.giveups == 0
    assert result.completion_rate == 1.0


def test_one_percent_loss_degrades_gracefully():
    """Acceptance: at 1% loss every conversation still completes (via
    retransmission) with bounded latency inflation."""
    clean = run_chaos_experiment(Architecture.II, loss_rate=0.0,
                                 seed=1)
    lossy = run_chaos_experiment(Architecture.II, loss_rate=0.01,
                                 seed=1)
    assert lossy.failed == 0
    assert lossy.completed > 0
    assert lossy.retransmissions > 0
    assert lossy.packets_lost > 0
    inflation = lossy.mean_round_trip / clean.mean_round_trip
    assert 1.0 <= inflation < 3.0


def test_total_loss_fails_cleanly_not_hangs():
    """Acceptance: sustained 100% loss ends in per-conversation
    failures within the horizon — the run terminates and reports."""
    result = run_chaos_experiment(Architecture.II, loss_rate=1.0,
                                  seed=1)
    assert result.completed == 0
    assert result.failed > 0
    assert result.completion_rate == 0.0
    assert result.retransmissions > 0


def test_same_seed_is_bitwise_repeatable():
    a = run_chaos_experiment(Architecture.III, loss_rate=0.05, seed=4,
                             measure_us=300_000.0)
    b = run_chaos_experiment(Architecture.III, loss_rate=0.05, seed=4,
                             measure_us=300_000.0)
    assert a == b


def test_different_seeds_draw_different_fault_streams():
    a = run_chaos_experiment(Architecture.II, loss_rate=0.05, seed=1,
                             measure_us=300_000.0)
    b = run_chaos_experiment(Architecture.II, loss_rate=0.05, seed=2,
                             measure_us=300_000.0)
    assert (a.packets_lost, a.retransmissions) != \
        (b.packets_lost, b.retransmissions)


def test_sweep_table_shape():
    table = sweep_table(architectures=(Architecture.II,),
                        loss_rates=(0.0, 0.02), seed=1,
                        measure_us=200_000.0)
    assert table.experiment_id == "chaos-sweep"
    assert len(table.rows) == 2
    assert table.rows[0][0] == "II"
    assert table.rows[0][1] == 0.0
    # zero-loss row: no failures, no retransmissions
    assert table.rows[0][3] == 0 and table.rows[0][8] == 0


def test_sweep_results_identical_at_any_job_count():
    serial = sweep_table(architectures=(Architecture.II,),
                         loss_rates=(0.01,), seed=1,
                         measure_us=150_000.0, jobs=1)
    parallel = sweep_table(architectures=(Architecture.II,),
                           loss_rates=(0.01,), seed=1,
                           measure_us=150_000.0, jobs=2)
    assert serial.rows == parallel.rows


def test_degradation_figure_series():
    figure = degradation_figure(architectures=(Architecture.II,),
                                loss_rates=(0.0, 0.02), seed=1,
                                measure_us=200_000.0)
    assert figure.experiment_id == "chaos-degradation"
    inflation = figure.get_series("arch II rt inflation")
    completion = figure.get_series("arch II completion rate")
    assert inflation.y[0] == pytest.approx(1.0)   # self-baseline
    assert inflation.y[1] >= 1.0                  # loss never speeds up
    assert completion.y[0] == 1.0


def test_outage_recovery_resumes_after_window():
    """Acceptance: conversations stall during the server outage and
    resume after recovery, carried by retransmission."""
    table = outage_recovery_table(Architecture.II, seed=1)
    assert table.experiment_id == "chaos-outage"
    phases = {row[0]: row for row in table.rows}
    before = phases["before outage"]
    after = phases["after recovery"]
    assert before[1] > 0                 # completions before
    assert after[1] > 0                  # completions resume
    assert "retransmissions" in table.notes[0]


def test_crash_windows_only_plan_is_active():
    from repro.faults import FaultPlan
    plan = FaultPlan(outages=(NodeOutage("servers", 10.0, 20.0),))
    assert plan.active
    assert plan.build_schedule().can_fault
