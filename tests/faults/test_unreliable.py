"""Tests for the unreliable network wrapper."""

from repro.faults import (FaultSchedule, NodeOutage, PacketFaultSpec,
                          UnreliableNetwork)
from repro.kernel import Simulator, Wire


def make_net(spec, outages=(), seed=0, latency=10.0):
    sim = Simulator()
    wire = Wire(sim, latency_us=latency)
    schedule = FaultSchedule(spec, outages=outages, seed=seed)
    return sim, UnreliableNetwork(wire, schedule)


def test_zero_schedule_passes_through_to_wire():
    sim, net = make_net(PacketFaultSpec())
    arrived = []
    net.transmit("a", "b", "send", lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == [10.0]
    assert net.stats.offered == 1
    assert net.stats.delivered == 1
    assert net.stats.lost == 0
    assert net.counts_by_status() == {"delivered": 1}


def test_total_loss_drops_every_packet():
    sim, net = make_net(PacketFaultSpec(drop_rate=1.0))
    arrived = []
    for _ in range(5):
        net.transmit("a", "b", "send", lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == []
    assert net.stats.dropped == 5
    assert net.stats.delivered == 0
    assert net.counts_by_status() == {"dropped": 5}
    assert net.packet_count == 5         # drops are still logged


def test_duplicates_deliver_twice():
    sim, net = make_net(PacketFaultSpec(duplicate_rate=1.0,
                                        duplicate_gap_us=25.0))
    arrived = []
    net.transmit("a", "b", "send", lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == [10.0, 35.0]
    assert net.stats.duplicates == 1
    assert net.counts_by_status() == {"delivered": 1, "duplicate": 1}


def test_jitter_delays_within_bound():
    sim, net = make_net(PacketFaultSpec(jitter_us=40.0), seed=2)
    arrived = []
    for _ in range(20):
        net.transmit("a", "b", "send", lambda: arrived.append(sim.now))
    sim.run()
    assert len(arrived) == 20
    assert all(10.0 <= t <= 50.0 for t in arrived)


def test_reordering_lets_later_packets_overtake():
    """A reordered packet is held long enough for a later clean packet
    to arrive first."""
    spec = PacketFaultSpec(reorder_rate=1.0, reorder_window_us=500.0)
    sim, net = make_net(spec, seed=1)
    order = []
    net.transmit("a", "b", "send", lambda: order.append("first"))
    # schedule the second packet 1us later with no reordering window
    sim.after(1.0, lambda: net.wire.transmit(
        "a", "b", "send", lambda: order.append("second")))
    sim.run()
    assert order[0] == "second"
    assert net.stats.reordered == 1


def test_outage_loses_packets_to_down_node():
    outage = NodeOutage("b", 0.0, 100.0)
    sim, net = make_net(PacketFaultSpec(jitter_us=0.001),
                        outages=(outage,))
    arrived = []
    net.transmit("a", "b", "send", lambda: arrived.append("early"))
    sim.after(200.0, lambda: net.transmit(
        "a", "b", "send", lambda: arrived.append("late")))
    sim.run()
    assert arrived == ["late"]
    assert net.stats.outage_drops == 1
    assert net.counts_by_status()["outage"] == 1


def test_outage_loses_packets_from_down_node():
    outage = NodeOutage("a", 0.0, 100.0)
    sim, net = make_net(PacketFaultSpec(jitter_us=0.001),
                        outages=(outage,))
    arrived = []
    net.transmit("a", "b", "send", lambda: arrived.append(1))
    sim.run()
    assert arrived == []
    assert net.stats.outage_drops == 1


def test_same_seed_same_packet_log():
    spec = PacketFaultSpec(drop_rate=0.4, duplicate_rate=0.2,
                           jitter_us=30.0)
    logs = []
    for _ in range(2):
        sim, net = make_net(spec, seed=9)
        for i in range(50):
            sim.after(float(i), lambda: net.transmit(
                "a", "b", "send", lambda: None))
        sim.run()
        logs.append([(p.kind, p.sent_at, p.status)
                     for p in net.packets])
    assert logs[0] == logs[1]
