"""Tests for the MP acknowledgement/retransmission protocol."""

import pytest

from repro.errors import KernelError
from repro.faults import FaultPlan, PacketFaultSpec, RetryPolicy
from repro.faults.chaos import run_chaos_experiment
from repro.kernel import build_conversation_system
from repro.models.params import Architecture, Mode


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(initial_timeout_us=10.0, backoff=2.0)
        assert policy.timeout_for(0) == 10.0
        assert policy.timeout_for(1) == 20.0
        assert policy.timeout_for(3) == 80.0

    def test_validation(self):
        with pytest.raises(KernelError):
            RetryPolicy(initial_timeout_us=0.0)
        with pytest.raises(KernelError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(KernelError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(KernelError):
            RetryPolicy(conversation_timeout_us=-1.0)


def run_with_loss(loss, *, policy, seed=1, measure_us=600_000.0):
    return run_chaos_experiment(
        Architecture.II, loss_rate=loss, policy=policy, seed=seed,
        measure_us=measure_us)


class TestProtocolUnderLoss:
    def test_light_loss_recovered_by_retransmission(self):
        policy = RetryPolicy(initial_timeout_us=10_000.0,
                             max_retries=5,
                             conversation_timeout_us=500_000.0)
        result = run_with_loss(0.01, policy=policy)
        assert result.completed > 0
        assert result.failed == 0
        assert result.retransmissions > 0
        assert result.acks_sent > 0
        assert result.acks_received > 0

    def test_retry_budget_gives_up_cleanly(self):
        """With the client deadline disabled, the sender-side budget
        alone must turn total loss into failures, not a hang."""
        policy = RetryPolicy(initial_timeout_us=5_000.0, backoff=2.0,
                             max_retries=3,
                             conversation_timeout_us=0.0)
        result = run_with_loss(1.0, policy=policy)
        assert result.completed == 0
        assert result.failed > 0
        assert result.giveups > 0

    def test_conversation_deadline_covers_reply_loss(self):
        """With a generous retry budget the client deadline is what
        bounds a black-holed conversation."""
        policy = RetryPolicy(initial_timeout_us=50_000.0,
                             max_retries=20,
                             conversation_timeout_us=150_000.0)
        result = run_with_loss(1.0, policy=policy)
        assert result.completed == 0
        assert result.failed > 0
        # deadline fired before the budget could
        assert result.giveups == 0

    def test_protocol_work_charged_to_mp(self):
        policy = RetryPolicy(initial_timeout_us=10_000.0,
                             max_retries=5,
                             conversation_timeout_us=500_000.0)
        result = run_with_loss(0.02, policy=policy)
        assert result.mp_protocol_time_us > 0.0

    def test_duplicates_suppressed(self):
        result = run_chaos_experiment(
            Architecture.II, duplicate_rate=0.5, seed=1,
            measure_us=400_000.0)
        assert result.duplicates_suppressed > 0
        assert result.failed == 0
        # duplicated data packets never complete a conversation twice:
        # completions stay at most the reliable count for the window
        reliable = run_chaos_experiment(Architecture.II, seed=1,
                                        measure_us=400_000.0)
        assert result.completed <= reliable.completed


def test_transport_selected_by_plan_activity():
    from repro.faults import ReliableTransport, UnreliableNetwork
    from repro.kernel import DirectTransport, Wire

    active = FaultPlan.packet_loss(0.1, seed=0)
    system, _meter = build_conversation_system(
        Architecture.II, Mode.NONLOCAL, 1, 0.0, 0, faults=active)
    assert isinstance(system.wire, UnreliableNetwork)
    for node in system.nodes.values():
        assert isinstance(node.transport, ReliableTransport)

    inactive = FaultPlan()
    assert not inactive.active
    system, _meter = build_conversation_system(
        Architecture.II, Mode.NONLOCAL, 1, 0.0, 0, faults=inactive)
    assert isinstance(system.wire, Wire)
    for node in system.nodes.values():
        assert isinstance(node.transport, DirectTransport)


def test_sequence_numbers_are_per_destination():
    plan = FaultPlan.packet_loss(0.0, seed=0)
    # force the reliable transport with an outage far past the horizon
    from repro.faults import NodeOutage
    plan = FaultPlan(outages=(NodeOutage("servers", 1e12, 2e12),),
                     seed=0)
    system, meter = build_conversation_system(
        Architecture.II, Mode.NONLOCAL, 2, 0.0, 0, faults=plan)
    system.run_for(100_000.0)
    clients = system.nodes["clients"].transport
    assert clients._next_seq["servers"] == clients.stats.data_packets
    assert meter.count > 0
