"""The zero-fault invariant: an inactive plan is bit-identical to none.

The acceptance bar for the fault subsystem is that merely linking it
in changes nothing: a ``FaultPlan`` with all-zero intensities and no
outages must produce byte-for-byte the same simulation as the seed
code path — same samples, same packet log, same processor busy time,
same event order.
"""

import pytest

from repro.faults import FaultPlan
from repro.kernel import build_conversation_system
from repro.models.params import Architecture, Mode

HORIZON = 400_000.0


def run(architecture, mode, faults):
    system, meter = build_conversation_system(
        architecture, mode, 2, 500.0, seed=0, faults=faults)
    system.run_for(HORIZON)
    return system, meter


def snapshot(system, meter):
    """Everything observable about a finished run."""
    return {
        "samples": [(s.client, s.started_at, s.completed_at)
                    for s in meter.samples],
        "failures": len(meter.failures),
        "packets": [(p.source, p.destination, p.kind, p.sent_at,
                     p.status) for p in system.wire.packets],
        "busy": {name: {proc.name: (proc.stats.busy_time,
                                    dict(proc.stats.busy_by_label))
                        for proc in node.processors.everything}
                 for name, node in system.nodes.items()},
        "kernel": {name: (node.kernel.stats.sends,
                          node.kernel.stats.replies,
                          node.kernel.stats.remote_requests_in)
                   for name, node in system.nodes.items()},
    }


@pytest.mark.parametrize("mode", [Mode.LOCAL, Mode.NONLOCAL])
@pytest.mark.parametrize("architecture",
                         [Architecture.I, Architecture.II,
                          Architecture.III])
def test_inactive_plan_is_bit_identical(architecture, mode):
    baseline = snapshot(*run(architecture, mode, faults=None))
    gated = snapshot(*run(architecture, mode, faults=FaultPlan()))
    assert gated == baseline


def test_inactive_plan_keeps_seed_constants():
    """The arch I local single-conversation round trip is exactly the
    chapter 6 constant, with or without an (inactive) fault plan."""
    from repro.kernel import run_conversation_experiment
    result = run_conversation_experiment(
        Architecture.I, Mode.LOCAL, 1, 0.0, warmup_us=20_000,
        measure_us=200_000, faults=FaultPlan())
    assert result.mean_round_trip == pytest.approx(4970.0, rel=1e-6)


def test_active_plan_with_zero_loss_still_completes():
    """The reliable-protocol machinery itself (seq/ack/timeout) must
    not break conversations when no packet is ever faulted.  This run
    is NOT bit-identical — acks occupy the DMA engines — but it must
    be failure-free."""
    plan = FaultPlan.packet_loss(0.0)
    # an outage past the horizon forces the reliable transport on
    from repro.faults import NodeOutage
    plan = FaultPlan(outages=(NodeOutage("servers", 1e12, 2e12),),
                     seed=0)
    assert plan.active
    system, meter = build_conversation_system(
        Architecture.II, Mode.NONLOCAL, 2, 500.0, seed=0, faults=plan)
    system.run_for(HORIZON)
    assert meter.count > 0
    assert meter.failure_count == 0
    transports = [n.transport for n in system.nodes.values()]
    assert all(t.stats.retransmissions == 0 for t in transports)
    assert sum(t.stats.acks_received for t in transports) > 0
