"""Tests for the seeded fault schedule."""

import pytest

from repro.errors import KernelError
from repro.faults import (FaultSchedule, NodeOutage, PacketFaultSpec)


def drain(schedule, n=200):
    return [schedule.draw("a", "b", "send") for _ in range(n)]


class TestPacketFaultSpec:
    def test_default_is_zero(self):
        assert PacketFaultSpec().is_zero

    def test_any_intensity_breaks_zero(self):
        assert not PacketFaultSpec(drop_rate=0.1).is_zero
        assert not PacketFaultSpec(duplicate_rate=0.1).is_zero
        assert not PacketFaultSpec(reorder_rate=0.1).is_zero
        assert not PacketFaultSpec(jitter_us=5.0).is_zero

    def test_rates_validated(self):
        with pytest.raises(KernelError):
            PacketFaultSpec(drop_rate=1.5)
        with pytest.raises(KernelError):
            PacketFaultSpec(duplicate_rate=-0.1)
        with pytest.raises(KernelError):
            PacketFaultSpec(jitter_us=-1.0)


class TestNodeOutage:
    def test_covers_half_open_window(self):
        outage = NodeOutage("servers", 100.0, 200.0)
        assert not outage.covers(99.9)
        assert outage.covers(100.0)
        assert outage.covers(199.9)
        assert not outage.covers(200.0)

    def test_validation(self):
        with pytest.raises(KernelError):
            NodeOutage("n", -1.0, 10.0)
        with pytest.raises(KernelError):
            NodeOutage("n", 10.0, 10.0)


class TestFaultSchedule:
    def test_same_seed_same_fates(self):
        spec = PacketFaultSpec(drop_rate=0.3, duplicate_rate=0.2,
                               jitter_us=50.0)
        a = drain(FaultSchedule(spec, seed=7))
        b = drain(FaultSchedule(spec, seed=7))
        assert a == b

    def test_different_seed_different_fates(self):
        spec = PacketFaultSpec(drop_rate=0.3, jitter_us=50.0)
        a = drain(FaultSchedule(spec, seed=7))
        b = drain(FaultSchedule(spec, seed=8))
        assert a != b

    def test_zero_spec_draws_clean_without_randomness(self):
        schedule = FaultSchedule(PacketFaultSpec(), seed=0)
        for fate in drain(schedule):
            assert not (fate.dropped or fate.duplicated
                        or fate.reordered)
            assert fate.extra_delay_us == 0.0
        assert schedule.fates_drawn == 0

    def test_zero_components_consume_no_randomness(self):
        """Adding a zero-rate fault type must not perturb another's
        stream: drop decisions are identical with and without an
        (unused) duplicate component."""
        drops_only = FaultSchedule(
            PacketFaultSpec(drop_rate=0.5), seed=3)
        with_zero_dup = FaultSchedule(
            PacketFaultSpec(drop_rate=0.5, duplicate_rate=0.0), seed=3)
        assert [f.dropped for f in drain(drops_only)] == \
            [f.dropped for f in drain(with_zero_dup)]

    def test_drop_rate_one_drops_everything(self):
        schedule = FaultSchedule(PacketFaultSpec(drop_rate=1.0),
                                 seed=0)
        assert all(f.dropped for f in drain(schedule))

    def test_can_fault(self):
        assert not FaultSchedule(PacketFaultSpec(), seed=0).can_fault
        assert FaultSchedule(PacketFaultSpec(drop_rate=0.1),
                             seed=0).can_fault
        assert FaultSchedule(
            PacketFaultSpec(),
            outages=(NodeOutage("n", 0.0, 1.0),), seed=0).can_fault

    def test_is_down(self):
        schedule = FaultSchedule(
            PacketFaultSpec(),
            outages=(NodeOutage("servers", 100.0, 200.0),), seed=0)
        assert schedule.is_down("servers", 150.0)
        assert not schedule.is_down("servers", 250.0)
        assert not schedule.is_down("clients", 150.0)

    def test_seed_resolution_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "41")
        assert FaultSchedule(PacketFaultSpec()).seed == 41

    def test_jitter_bounded(self):
        spec = PacketFaultSpec(jitter_us=100.0)
        for fate in drain(FaultSchedule(spec, seed=5)):
            assert 0.0 <= fate.extra_delay_us <= 100.0

    def test_outage_type_checked(self):
        with pytest.raises(KernelError):
            FaultSchedule(PacketFaultSpec(),
                          outages=(("servers", 0.0, 1.0),), seed=0)
