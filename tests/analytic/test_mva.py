"""Tests for the exact MVA solver and architecture mappings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (Station, StationKind, asymptotic_bounds,
                            conversation_stations, mva_bottleneck,
                            solve_architecture_mva, solve_mva)
from repro.errors import ModelError
from repro.models import Architecture, Mode, round_trip_sum, solve


class TestMvaCore:
    def test_single_station_flat_throughput(self):
        """All demand at one station: X(n) = 1/D for every n."""
        stations = [Station("cpu", 100.0)]
        for n in (1, 2, 5):
            solution = solve_mva(stations, n)
            assert solution.throughput == pytest.approx(0.01)

    def test_single_customer_no_queueing(self):
        stations = [Station("a", 30.0), Station("b", 70.0)]
        solution = solve_mva(stations, 1)
        assert solution.throughput == pytest.approx(1 / 100.0)
        assert solution.cycle_time == pytest.approx(100.0)

    def test_two_balanced_stations_known_value(self):
        # D=D at both stations, N=2: R_k = D(1+Q_k(1)); by symmetry
        # Q_k(1)=0.5 -> R_k = 1.5D -> X = 2/(3D)
        stations = [Station("a", 10.0), Station("b", 10.0)]
        solution = solve_mva(stations, 2)
        assert solution.throughput == pytest.approx(2 / 30.0)

    def test_delay_station_adds_no_queueing(self):
        queueing = [Station("cpu", 50.0), Station("net", 50.0)]
        with_delay = [Station("cpu", 50.0),
                      Station("net", 50.0,
                              kind=StationKind.DELAY)]
        for n in (2, 4):
            q = solve_mva(queueing, n).throughput
            d = solve_mva(with_delay, n).throughput
            assert d >= q

    def test_think_time_lowers_throughput(self):
        stations = [Station("cpu", 100.0)]
        fast = solve_mva(stations, 2, think_time=0.0)
        slow = solve_mva(stations, 2, think_time=500.0)
        assert slow.throughput < fast.throughput

    def test_utilization_law(self):
        stations = [Station("a", 40.0), Station("b", 90.0)]
        solution = solve_mva(stations, 3)
        for station in stations:
            assert solution.utilizations[station.name] == \
                pytest.approx(solution.throughput * station.demand)
        assert solution.bottleneck() == "b"

    def test_littles_law_holds(self):
        stations = [Station("a", 25.0), Station("b", 60.0)]
        solution = solve_mva(stations, 4)
        for name, queue in solution.queue_lengths.items():
            assert queue == pytest.approx(
                solution.throughput * solution.residence_times[name])

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            solve_mva([], 1)
        with pytest.raises(ModelError):
            solve_mva([Station("a", 1.0)], 0)
        with pytest.raises(ModelError):
            solve_mva([Station("a", 1.0)], 1, think_time=-1.0)
        with pytest.raises(ModelError):
            solve_mva([Station("a", 1.0), Station("a", 2.0)], 1)
        with pytest.raises(ModelError):
            Station("bad", -1.0)


class TestBounds:
    def test_bounds_sandwich_exact_mva(self):
        stations = [Station("a", 30.0), Station("b", 80.0),
                    Station("c", 15.0)]
        for n in (1, 2, 4, 8):
            lower, upper = asymptotic_bounds(stations, n)
            exact = solve_mva(stations, n).throughput
            assert lower - 1e-12 <= exact <= upper + 1e-12

    def test_saturation_bound_is_bottleneck_rate(self):
        stations = [Station("a", 30.0), Station("b", 80.0)]
        _lower, upper = asymptotic_bounds(stations, 100)
        assert upper == pytest.approx(1 / 80.0)


@settings(max_examples=100)
@given(st.lists(st.floats(1.0, 500.0), min_size=1, max_size=5),
       st.integers(1, 8))
def test_property_mva_within_bounds(demands, population):
    stations = [Station(f"s{i}", d) for i, d in enumerate(demands)]
    lower, upper = asymptotic_bounds(stations, population)
    exact = solve_mva(stations, population).throughput
    assert lower - 1e-9 <= exact <= upper + 1e-9


@settings(max_examples=50)
@given(st.lists(st.floats(1.0, 500.0), min_size=1, max_size=4),
       st.integers(1, 6))
def test_property_throughput_monotone_in_population(demands, population):
    stations = [Station(f"s{i}", d) for i, d in enumerate(demands)]
    previous = 0.0
    for n in range(1, population + 1):
        current = solve_mva(stations, n).throughput
        assert current >= previous - 1e-12
        previous = current


class TestArchitectureMapping:
    def test_demands_sum_to_round_trip(self):
        """Total demand equals the action-table sum (+ compute)."""
        for arch in Architecture:
            for mode in Mode:
                stations = conversation_stations(arch, mode, 500.0)
                total = sum(s.demand for s in stations)
                assert total == pytest.approx(
                    round_trip_sum(arch, mode) + 500.0), (arch, mode)

    def test_arch1_local_is_single_host_station(self):
        stations = conversation_stations(Architecture.I, Mode.LOCAL)
        assert [s.name for s in stations] == ["host"]

    def test_arch2_local_splits_host_and_mp(self):
        stations = {s.name: s.demand for s in conversation_stations(
            Architecture.II, Mode.LOCAL)}
        assert set(stations) == {"host", "mp"}
        assert stations["mp"] == pytest.approx(
            1030.2 + 603 + 1264.4 + 1289.8)

    def test_nonlocal_has_client_and_server_sides(self):
        names = {s.name for s in conversation_stations(
            Architecture.II, Mode.NONLOCAL)}
        assert "client.host" in names
        assert "server.host" in names
        assert "client.mp" in names
        assert "server.mp" in names

    def test_bottleneck_shifts_with_compute(self):
        """Zero compute: the MP saturates; heavy compute: the host."""
        assert mva_bottleneck(Architecture.II, Mode.LOCAL, 0.0) == "mp"
        assert mva_bottleneck(Architecture.II, Mode.LOCAL,
                              20_000.0) == "host"


class TestCrossValidation:
    """MVA vs GTPN: agreement bands (MVA is uniformly conservative
    because of its exponential-service assumption)."""

    @pytest.mark.parametrize("arch", [Architecture.I, Architecture.II,
                                      Architecture.III])
    def test_local_agreement(self, arch):
        for n, x in ((1, 0.0), (3, 2850.0)):
            mva = solve_architecture_mva(arch, Mode.LOCAL, n, x)
            gtpn = solve(arch, Mode.LOCAL, n, x)
            assert mva.throughput == pytest.approx(
                gtpn.throughput, rel=0.08), (arch, n, x)
            assert mva.throughput <= gtpn.throughput * 1.001

    def test_nonlocal_agreement_band(self):
        mva = solve_architecture_mva(Architecture.II, Mode.NONLOCAL,
                                     4, 2850.0)
        gtpn = solve(Architecture.II, Mode.NONLOCAL, 4, 2850.0)
        assert mva.throughput == pytest.approx(gtpn.throughput,
                                               rel=0.18)

    def test_arch1_local_exact_match(self):
        """Single-station MVA is exact: X = 1/D, the GTPN's value."""
        mva = solve_architecture_mva(Architecture.I, Mode.LOCAL, 2)
        gtpn = solve(Architecture.I, Mode.LOCAL, 2)
        assert mva.throughput == pytest.approx(gtpn.throughput,
                                               rel=1e-6)