"""Tests for Jasmin path semantics (section 3.2)."""

import pytest

from repro.errors import KernelError
from repro.kernel import AccessRight, DistributedSystem, MemoryReference
from repro.models.params import Architecture
from repro.semantics import JasminPaths


def make_node(tasks=("client", "server", "third")):
    system = DistributedSystem(Architecture.I)
    node = system.add_node("n0")
    created = [node.create_task(name) for name in tasks]
    return system, node, created


def test_creator_holds_receive_end():
    system, node, (client, server, _t) = make_node()
    paths = JasminPaths(node)
    path = paths.create_path(server)
    assert path.creator == "server"
    with pytest.raises(KernelError):
        paths.rcvmsg(client, path, lambda m, p: None)


def test_send_end_giftable():
    system, node, (client, server, _t) = make_node()
    paths = JasminPaths(node)
    path = paths.create_path(server)
    paths.give_send_end(server, path, client)
    got = []
    paths.rcvmsg(server, path, lambda m, p: got.append(m))
    paths.sendmsg(client, path, "request")
    system.sim.run()
    assert got == ["request"]


def test_only_send_holder_may_send():
    system, node, (client, server, third) = make_node()
    paths = JasminPaths(node)
    path = paths.create_path(server)
    paths.give_send_end(server, path, client)
    with pytest.raises(KernelError):
        paths.sendmsg(third, path, "intruder")


def test_messages_buffered_fifo():
    """Kernel buffering: sends complete without a waiting receiver."""
    system, node, (client, server, _t) = make_node()
    paths = JasminPaths(node)
    path = paths.create_path(server)
    paths.give_send_end(server, path, client)
    sent = []
    for i in range(3):
        paths.sendmsg(client, path, i, on_sent=lambda i=i: sent.append(i))
    system.sim.run()
    assert sent == [0, 1, 2]           # no receiver needed
    got = []
    for _ in range(3):
        paths.rcvmsg(server, path, lambda m, p: got.append(m))
    system.sim.run()
    assert got == [0, 1, 2]


def test_sender_blocks_on_buffer_shortage():
    """Section 3.2.3: sendmsg blocks when kernel resources run out,
    resuming when a delivery frees a buffer."""
    system, node, (client, server, _t) = make_node()
    paths = JasminPaths(node, kernel_buffers=2)
    path = paths.create_path(server)
    paths.give_send_end(server, path, client)
    sent = []
    for i in range(4):
        paths.sendmsg(client, path, i, on_sent=lambda i=i: sent.append(i))
    system.sim.run()
    assert sent == [0, 1]              # two buffers, two accepted
    got = []
    paths.rcvmsg(server, path, lambda m, p: got.append(m))
    system.sim.run()
    assert got == [0]
    assert 2 in sent                   # freed buffer admitted sender 2


def test_group_receive_takes_any_ready_path():
    system, node, (client, server, third) = make_node()
    paths = JasminPaths(node)
    path1 = paths.create_path(server)
    path2 = paths.create_path(server)
    paths.give_send_end(server, path1, client)
    paths.give_send_end(server, path2, third)
    got = []
    paths.rcvmsg(server, [path1, path2],
                 lambda m, p: got.append((m, p.path_id)))
    paths.sendmsg(third, path2, "via-2")
    system.sim.run()
    assert got == [("via-2", path2.path_id)]


def test_gift_path_single_use():
    """Section 3.2.1: a gift path may be used only once for the
    reply."""
    system, node, (client, server, _t) = make_node()
    paths = JasminPaths(node)
    reply_path = paths.create_gift_path(client, server)
    got = []
    paths.rcvmsg(client, reply_path, lambda m, p: got.append(m))
    paths.sendmsg(server, reply_path, "the-reply")
    system.sim.run()
    assert got == ["the-reply"]
    with pytest.raises(KernelError):
        paths.sendmsg(server, reply_path, "second-reply")


def test_iomove_checks_rights():
    system, node, (client, server, _t) = make_node()
    paths = JasminPaths(node)
    ref = MemoryReference(owner="client", address=0, size=2048,
                          rights=AccessRight.READ)
    done = []
    paths.iomove(server, ref, 2048, write=False,
                 on_done=lambda: done.append(system.now))
    system.sim.run()
    assert done
    with pytest.raises(KernelError):
        paths.iomove(server, ref, 2048, write=True)


def test_zero_buffer_pool_rejected():
    _system, node, _tasks = make_node()
    with pytest.raises(KernelError):
        JasminPaths(node, kernel_buffers=0)


def test_empty_group_rejected():
    _system, node, (client, server, _t) = make_node()
    paths = JasminPaths(node)
    with pytest.raises(KernelError):
        paths.rcvmsg(server, [], lambda m, p: None)
