"""Tests for Unix socket semantics (section 3.2)."""

import pytest

from repro.errors import KernelError
from repro.kernel import DistributedSystem
from repro.models.params import Architecture
from repro.semantics import UnixSockets, WouldBlock


def make_node(tasks=("client", "server")):
    system = DistributedSystem(Architecture.I)
    node = system.add_node("n0")
    created = [node.create_task(name) for name in tasks]
    return system, node, created


def connected_pair():
    system, node, (client, server) = make_node()
    sockets = UnixSockets(node)
    a, b = sockets.socketpair(client, server)
    return system, sockets, client, server, a, b


class TestConnectionSetup:
    def test_bind_connect_accept(self):
        system, node, (client, server) = make_node()
        sockets = UnixSockets(node)
        listener = sockets.bind(server, "/tmp/svc")
        ends = {}
        sockets.accept(server, listener,
                       lambda s: ends.setdefault("server", s))
        sockets.connect(client, "/tmp/svc",
                        lambda s: ends.setdefault("client", s))
        system.sim.run()
        assert ends["client"].peer is ends["server"]
        assert ends["server"].peer is ends["client"]

    def test_double_bind_rejected(self):
        _system, node, (client, server) = make_node()
        sockets = UnixSockets(node)
        sockets.bind(server, "/tmp/svc")
        with pytest.raises(KernelError):
            sockets.bind(client, "/tmp/svc")

    def test_connect_to_unbound_rejected(self):
        _system, node, (client, _server) = make_node()
        sockets = UnixSockets(node)
        with pytest.raises(KernelError):
            sockets.connect(client, "/nowhere", lambda s: None)

    def test_accept_requires_owner(self):
        _system, node, (client, server) = make_node()
        sockets = UnixSockets(node)
        listener = sockets.bind(server, "/tmp/svc")
        with pytest.raises(KernelError):
            sockets.accept(client, listener, lambda s: None)


class TestByteStreams:
    def test_write_then_read(self):
        system, sockets, client, server, a, b = connected_pair()
        got = []
        sockets.write(client, a, b"hello world")
        sockets.read(server, b, 1024, got.append)
        system.sim.run()
        assert got == [b"hello world"]

    def test_stream_merges_writes(self):
        system, sockets, client, server, a, b = connected_pair()
        sockets.write(client, a, b"abc")
        sockets.write(client, a, b"def")
        got = []
        system.sim.run()
        sockets.read(server, b, 1024, got.append)
        system.sim.run()
        assert got == [b"abcdef"]        # stream, not datagram

    def test_stream_splits_large_write(self):
        system, sockets, client, server, a, b = connected_pair()
        sockets.write(client, a, b"abcdefgh")
        system.sim.run()
        got = []
        sockets.read(server, b, 3, got.append)
        system.sim.run()
        assert got == [b"abc"]
        sockets.read(server, b, 100, got.append)
        system.sim.run()
        assert got == [b"abc", b"defgh"]

    def test_read_blocks_until_data(self):
        system, sockets, client, server, a, b = connected_pair()
        got = []
        sockets.read(server, b, 10, got.append)
        system.sim.run()
        assert got == []
        sockets.write(client, a, b"late")
        system.sim.run()
        assert got == [b"late"]

    def test_bidirectional(self):
        system, sockets, client, server, a, b = connected_pair()
        got_a, got_b = [], []
        sockets.write(client, a, b"ping")
        sockets.read(server, b, 100, got_b.append)
        sockets.write(server, b, b"pong")
        sockets.read(client, a, 100, got_a.append)
        system.sim.run()
        assert got_b == [b"ping"]
        assert got_a == [b"pong"]

    def test_write_blocks_when_buffer_full(self):
        system, sockets, client, server, a, b = connected_pair()
        b.buffer_limit = 8
        done = []
        sockets.write(client, a, b"12345678",
                      on_done=lambda: done.append("first"))
        sockets.write(client, a, b"overflow",
                      on_done=lambda: done.append("second"))
        system.sim.run()
        assert done == ["first"]
        got = []
        sockets.read(server, b, 100, got.append)
        system.sim.run()
        assert "second" in done          # room freed, write resumed


class TestNonBlocking:
    def test_nonblocking_read_raises(self):
        system, sockets, client, server, a, b = connected_pair()
        sockets.set_nonblocking(b)
        with pytest.raises(WouldBlock):
            sockets.read(server, b, 10, lambda d: None)

    def test_nonblocking_write_raises_on_full_buffer(self):
        system, sockets, client, server, a, b = connected_pair()
        b.buffer_limit = 4
        sockets.set_nonblocking(a)
        sockets.write(client, a, b"1234")
        with pytest.raises(WouldBlock):
            sockets.write(client, a, b"5678")


class TestGuards:
    def test_read_requires_owner(self):
        system, sockets, client, server, a, b = connected_pair()
        with pytest.raises(KernelError):
            sockets.read(client, b, 10, lambda d: None)

    def test_write_requires_owner(self):
        system, sockets, client, server, a, b = connected_pair()
        with pytest.raises(KernelError):
            sockets.write(server, a, b"x")

    def test_zero_byte_read_rejected(self):
        system, sockets, client, server, a, b = connected_pair()
        with pytest.raises(KernelError):
            sockets.read(server, b, 0, lambda d: None)

    def test_unconnected_socket_rejected(self):
        system, node, (client, _server) = make_node()
        sockets = UnixSockets(node)
        from repro.semantics.sockets import Socket
        lonely = Socket(socket_id=999, owner="client")
        with pytest.raises(KernelError):
            sockets.write(client, lonely, b"x")
