"""Tests for Charlotte link semantics (section 3.2)."""

import pytest

from repro.errors import KernelError
from repro.kernel import DistributedSystem
from repro.models.params import Architecture
from repro.semantics import CharlotteLinks


def make_node(tasks=("alice", "bob", "carol")):
    system = DistributedSystem(Architecture.I)
    node = system.add_node("n0")
    created = [node.create_task(name) for name in tasks]
    return system, node, created


def test_create_link_assigns_two_ends():
    _system, node, (alice, bob, _carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    assert link.end_of("alice") == "A"
    assert link.end_of("bob") == "B"


def test_link_needs_two_processes():
    _system, node, (alice, _bob, _carol) = make_node()
    links = CharlotteLinks(node)
    with pytest.raises(KernelError):
        links.create_link(alice, alice)


def test_send_completes_only_when_matched():
    """No kernel buffering: the send stays pending until a receive."""
    system, node, (alice, bob, _carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    send_op = links.send(alice, link, "hello")
    system.sim.run()
    assert not links.poll(send_op)          # nobody received
    got = []
    links.receive(bob, link, got.append)
    system.sim.run()
    assert got == ["hello"]
    assert links.poll(send_op)


def test_bidirectional_equal_rights():
    """Either end may send; the link is two-way."""
    system, node, (alice, bob, _carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    got_a, got_b = [], []
    links.receive(alice, link, got_a.append)
    links.receive(bob, link, got_b.append)
    links.send(alice, link, "to-bob")
    links.send(bob, link, "to-alice")
    system.sim.run()
    assert got_b == ["to-bob"]
    assert got_a == ["to-alice"]


def test_move_transfers_an_end():
    system, node, (alice, bob, carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    links.move(alice, link, carol)
    assert link.end_of("carol") == "A"
    with pytest.raises(KernelError):
        link.end_of("alice")
    # carol can now communicate on it
    got = []
    links.receive(bob, link, got.append)
    links.send(carol, link, "via-carol")
    system.sim.run()
    assert got == ["via-carol"]


def test_either_end_can_destroy_unilaterally():
    system, node, (alice, bob, _carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    links.destroy(bob, link)            # bob needs no permission
    assert link.destroyed
    with pytest.raises(KernelError):
        links.send(alice, link, "too late")


def test_destroy_cancels_pending_ops_with_none():
    system, node, (alice, bob, _carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    outcomes = []
    links.send(alice, link, "data", on_complete=outcomes.append)
    links.destroy(alice, link)
    system.sim.run()
    assert outcomes == [None]


def test_receive_any_takes_first_message_across_links():
    system, node, (alice, bob, carol) = make_node()
    links = CharlotteLinks(node)
    link_ab = links.create_link(alice, bob)
    link_ac = links.create_link(alice, carol)
    got = []
    links.receive_any(alice, got.append)
    links.send(carol, link_ac, "from-carol")
    system.sim.run()
    assert got == ["from-carol"]
    # the group completed: a later send on the other link stays
    # pending until a fresh receive
    send_op = links.send(bob, link_ab, "from-bob")
    system.sim.run()
    assert not links.poll(send_op)


def test_receive_any_requires_some_link():
    _system, node, (alice, bob, carol) = make_node()
    links = CharlotteLinks(node)
    links.create_link(bob, carol)
    with pytest.raises(KernelError):
        links.receive_any(alice, lambda data: None)


def test_fifo_within_direction():
    system, node, (alice, bob, _carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    got = []
    for i in range(3):
        links.send(alice, link, i)
    for _ in range(3):
        links.receive(bob, link, got.append)
    system.sim.run()
    assert got == [0, 1, 2]


def test_copy_cost_scales_with_size():
    """Bigger messages keep the host busy longer (Table 3.1 copy)."""
    system, node, (alice, bob, _carol) = make_node()
    links = CharlotteLinks(node)
    link = links.create_link(alice, bob)
    done = []
    links.receive(bob, link, lambda d: done.append(system.now))
    links.send(alice, link, "big", size_bytes=6000)
    system.sim.run()
    big_time = done[0]

    system2, node2, (alice2, bob2, _c2) = make_node()
    links2 = CharlotteLinks(node2)
    link2 = links2.create_link(alice2, bob2)
    done2 = []
    links2.receive(bob2, link2, lambda d: done2.append(system2.now))
    links2.send(alice2, link2, "small", size_bytes=10)
    system2.sim.run()
    assert big_time > done2[0]
