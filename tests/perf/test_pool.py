"""Tests for the parallel sweep executor."""

import pytest

from repro.errors import ConfigError
from repro.perf.backends import (MIN_ITEMS_PER_JOB, default_jobs,
                                 last_map_info, map_sweep, plan_jobs,
                                 set_default_jobs)


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _boom(x):
    raise ValueError(f"bad point {x}")


@pytest.fixture(autouse=True)
def _reset_default_jobs():
    yield
    set_default_jobs(None)


def test_serial_map_preserves_order():
    assert map_sweep(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_parallel_map_matches_serial():
    items = list(range(20))
    assert map_sweep(_square, items, jobs=4) == \
        map_sweep(_square, items, jobs=1)


def test_star_unpacks_items():
    assert map_sweep(_add, [(1, 2), (3, 4)], jobs=1, star=True) == [3, 7]
    assert map_sweep(_add, [(1, 2), (3, 4)], jobs=2, star=True) == [3, 7]


def test_empty_items():
    assert map_sweep(_square, [], jobs=4) == []


def test_map_info_describe():
    from repro.perf.backends import MapInfo
    serial = MapInfo("serial", "serial requested (jobs=1)", 1, 1, 4,
                     None)
    assert serial.describe() == \
        "sweep ran serially (serial requested (jobs=1))"
    parallel = MapInfo("parallel", None, 8, 4, 16, 2)
    assert parallel.describe() == \
        "sweep ran on 4 workers, chunk size 2"


def test_unpicklable_function_falls_back_to_serial():
    # a lambda cannot ship to a worker process; the sweep must still
    # produce correct, ordered results via the serial fallback
    # (oversubscribe + a big enough grid force the parallel attempt
    # even on a single-CPU machine)
    items = list(range(2 * MIN_ITEMS_PER_JOB))
    assert map_sweep(lambda x: x + 1, items, jobs=2,
                     oversubscribe=True) == [x + 1 for x in items]
    info = last_map_info()
    assert info.mode == "serial" and "unpicklable" in info.reason


def test_worker_exceptions_propagate():
    with pytest.raises(ValueError):
        map_sweep(_boom, [1], jobs=2)
    with pytest.raises(ValueError):
        map_sweep(_boom, [1], jobs=1)
    with pytest.raises(ValueError):
        # through an actual pool as well, not just the serial fallback
        map_sweep(_boom, list(range(2 * MIN_ITEMS_PER_JOB)), jobs=2,
                  oversubscribe=True)


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        map_sweep(_square, [1], jobs=0)
    with pytest.raises(ValueError):
        set_default_jobs(0)
    with pytest.raises(ConfigError):
        map_sweep(_square, [1], jobs=2.5)
    with pytest.raises(ConfigError):
        map_sweep(_square, [1], jobs="four")


def test_default_jobs_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    set_default_jobs(None)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    set_default_jobs(5)
    assert default_jobs() == 5


@pytest.mark.parametrize("bad", ["not-a-number", "0", "-2", "2.5", " "])
def test_malformed_repro_jobs_rejected(monkeypatch, bad):
    # a user who exported REPRO_JOBS wanted parallelism; a typo must
    # fail loudly (ConfigError is also a ValueError), not run serial
    set_default_jobs(None)
    monkeypatch.setenv("REPRO_JOBS", bad)
    if bad.strip():
        with pytest.raises(ConfigError):
            default_jobs()
    else:
        assert default_jobs() == 1    # unset/blank still means serial


def test_plan_jobs_policy():
    # explicit serial
    assert plan_jobs(100, 1) == (1, "serial requested (jobs=1)")
    # nothing to fan out
    n, reason = plan_jobs(1, 4, oversubscribe=True)
    assert n == 1 and "nothing to fan out" in reason
    # below the per-worker threshold: serial, with the reason recorded
    n, reason = plan_jobs(MIN_ITEMS_PER_JOB, 4, oversubscribe=True)
    assert n == 1 and "threshold" in reason
    # enough work for fewer workers: the pool shrinks instead
    n, reason = plan_jobs(2 * MIN_ITEMS_PER_JOB, 8, oversubscribe=True)
    assert n == 2 and reason is None
    # plenty of work: full fan-out
    n, reason = plan_jobs(8 * MIN_ITEMS_PER_JOB, 4, oversubscribe=True)
    assert n == 4 and reason is None


def test_map_info_reports_execution():
    items = list(range(4 * MIN_ITEMS_PER_JOB))
    assert map_sweep(_square, items, jobs=2, oversubscribe=True) == \
        [x * x for x in items]
    info = last_map_info()
    assert info.mode == "parallel"
    assert info.jobs_used == 2 and info.items == len(items)
    assert info.chunk_size >= 1
    map_sweep(_square, [1, 2], jobs=2, oversubscribe=True)
    info = last_map_info()
    assert info.mode == "serial" and info.reason
    assert info.chunk_size is None


def test_pool_persists_across_sweeps():
    from repro.perf.backends import get_backend
    items = list(range(4 * MIN_ITEMS_PER_JOB))
    map_sweep(_square, items, jobs=2, oversubscribe=True)
    first = get_backend("local")._manager.executor
    assert first is not None
    map_sweep(_square, items, jobs=2, oversubscribe=True)
    assert get_backend("local")._manager.executor is first
