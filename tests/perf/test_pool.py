"""Tests for the parallel sweep executor."""

import pytest

from repro.perf.pool import default_jobs, map_sweep, set_default_jobs


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _boom(x):
    raise ValueError(f"bad point {x}")


@pytest.fixture(autouse=True)
def _reset_default_jobs():
    yield
    set_default_jobs(None)


def test_serial_map_preserves_order():
    assert map_sweep(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_parallel_map_matches_serial():
    items = list(range(20))
    assert map_sweep(_square, items, jobs=4) == \
        map_sweep(_square, items, jobs=1)


def test_star_unpacks_items():
    assert map_sweep(_add, [(1, 2), (3, 4)], jobs=1, star=True) == [3, 7]
    assert map_sweep(_add, [(1, 2), (3, 4)], jobs=2, star=True) == [3, 7]


def test_empty_items():
    assert map_sweep(_square, [], jobs=4) == []


def test_unpicklable_function_falls_back_to_serial():
    # a lambda cannot ship to a worker process; the sweep must still
    # produce correct, ordered results via the serial fallback
    assert map_sweep(lambda x: x + 1, [1, 2, 3], jobs=2) == [2, 3, 4]


def test_worker_exceptions_propagate():
    with pytest.raises(ValueError):
        map_sweep(_boom, [1], jobs=2)
    with pytest.raises(ValueError):
        map_sweep(_boom, [1], jobs=1)


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        map_sweep(_square, [1], jobs=0)
    with pytest.raises(ValueError):
        set_default_jobs(0)


def test_default_jobs_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    set_default_jobs(None)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert default_jobs() == 1
    set_default_jobs(5)
    assert default_jobs() == 5
