"""The frozen ExecutorBackend protocol and the three shipped backends.

Pins the two contracts the service and every sweep call site rely on:
the protocol surface never changes shape, and results are
bit-identical whichever backend ran the sweep.
"""

from __future__ import annotations

import importlib
import inspect
import os
import signal
import sys
import time

import pytest

from repro import config
from repro.errors import ConfigError
from repro.perf import backends
from repro.perf.backends import (MIN_ITEMS_PER_JOB, ExecutorBackend,
                                 get_backend, last_map_info, map_sweep,
                                 register_backend, shutdown_pool)


def _square(x):
    return x * x


def _scaled(x, factor):
    return x * factor + 0.125


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _kill_if_worker(item):
    parent_pid, x = item
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 2


@pytest.fixture(autouse=True)
def _fresh_pools():
    config.reset()
    shutdown_pool()
    yield
    config.reset()
    shutdown_pool()


# ----------------------------------------------------------------------
# the frozen protocol
# ----------------------------------------------------------------------

def test_protocol_surface_is_frozen():
    assert sorted(ExecutorBackend.__abstractmethods__) == \
        ["describe", "shutdown", "submit_map"]
    sig = inspect.signature(ExecutorBackend.submit_map)
    assert list(sig.parameters) == \
        ["self", "fn", "work", "n_jobs", "star", "chunksize"]
    for keyword in ("n_jobs", "star", "chunksize"):
        assert sig.parameters[keyword].kind is \
            inspect.Parameter.KEYWORD_ONLY


def test_shipped_backends_implement_the_protocol():
    for name in ("serial", "local", "sharded"):
        backend = get_backend(name)
        assert isinstance(backend, ExecutorBackend)
        assert backend.name == name
        assert isinstance(backend.describe(), str)


def test_unknown_backend_rejected():
    with pytest.raises(ConfigError, match="unknown executor backend"):
        get_backend("quantum")
    with pytest.raises(ConfigError, match="must be one of"):
        config.set_backend("quantum")


def test_backend_resolution_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert config.backend() == "local"
    monkeypatch.setenv("REPRO_BACKEND", "sharded")
    assert config.backend() == "sharded"
    config.set_backend("serial")
    assert config.backend() == "serial"
    resolved = config.resolved_config()
    assert resolved.backend == "serial"
    assert resolved.backend_source == "cli"


def test_register_backend_extension_seam():
    calls = []

    class RecordingBackend(ExecutorBackend):
        name = "recording"

        def submit_map(self, fn, work, *, n_jobs, star, chunksize):
            calls.append((n_jobs, chunksize))
            return [fn(*item) if star else fn(item) for item in work]

        def shutdown(self):
            pass

        def describe(self):
            return "test recording backend"

    register_backend(RecordingBackend())
    try:
        items = list(range(4 * MIN_ITEMS_PER_JOB))
        result = map_sweep(_square, items, jobs=2, oversubscribe=True,
                           backend="recording")
        assert result == [x * x for x in items]
        assert calls and calls[0][0] == 2
        assert last_map_info().backend == "recording"
    finally:
        backends._BACKENDS.pop("recording", None)


# ----------------------------------------------------------------------
# bit-identity across backends
# ----------------------------------------------------------------------

def test_results_bit_identical_across_backends():
    items = [(x * 0.1, 3.7) for x in range(6 * MIN_ITEMS_PER_JOB)]
    reference = map_sweep(_scaled, items, jobs=1, star=True)
    for name in ("serial", "local", "sharded"):
        got = map_sweep(_scaled, items, jobs=2, star=True,
                        oversubscribe=True, backend=name)
        assert got == reference, name
        info = last_map_info()
        if name == "serial":
            assert info.mode == "serial"
            assert info.reason == "serial backend selected"
        elif info.mode == "parallel":
            assert info.backend == name


def test_experiment_bit_identical_across_backends():
    # the PR acceptance bar, on a real artifact: same seed, three
    # backends, byte-identical values
    from repro import api
    reference = api.run_experiment("figure-6.7", seed=7,
                                   backend="serial")
    for name in ("local", "sharded"):
        result = api.run_experiment("figure-6.7", seed=7, jobs=2,
                                    backend=name)
        assert result.values == reference.values, name


def test_map_info_parity_across_backends():
    items = list(range(4 * MIN_ITEMS_PER_JOB))
    infos = {}
    for name in ("local", "sharded"):
        map_sweep(_square, items, jobs=2, oversubscribe=True,
                  backend=name)
        infos[name] = last_map_info()
    for name, info in infos.items():
        if info.mode != "parallel":
            pytest.skip(f"{name} declined to fan out: {info.reason}")
    assert infos["local"].jobs_used == infos["sharded"].jobs_used
    assert infos["local"].chunk_size == infos["sharded"].chunk_size
    assert infos["local"].items == infos["sharded"].items


# ----------------------------------------------------------------------
# degradation and lifecycle
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", ["local", "sharded"])
def test_killed_worker_degrades_to_serial(backend_name):
    # a worker SIGKILLed mid-task breaks the pool; the sweep must
    # still return correct results (serial fallback re-runs in the
    # parent, where the kill guard is a no-op) with the reason recorded
    items = [(os.getpid(), x) for x in range(4 * MIN_ITEMS_PER_JOB)]
    result = map_sweep(_kill_if_worker, items, jobs=2,
                       oversubscribe=True, backend=backend_name)
    assert result == [x * 2 for _pid, x in items]
    info = last_map_info()
    assert info.mode == "serial"
    assert "worker pool broke" in info.reason
    assert "died mid-task" in info.reason
    # the broken pool was reaped: the next sweep builds a fresh one
    # and fans out normally
    clean = map_sweep(_square, list(range(4 * MIN_ITEMS_PER_JOB)),
                      jobs=2, oversubscribe=True, backend=backend_name)
    assert clean == [x * x for x in range(4 * MIN_ITEMS_PER_JOB)]
    assert last_map_info().mode == "parallel"


def test_sharded_steals_from_imbalanced_shards():
    # shard 0 owns the slow half; shard 1 drains its fast half and
    # must steal from shard 0's tail
    items = [0.05] * 4 + [0.0] * 4
    result = map_sweep(_sleepy, items, jobs=2, chunksize=1,
                       oversubscribe=True, backend="sharded")
    assert result == items
    if last_map_info().mode == "parallel":
        assert get_backend("sharded").last_steals >= 1


def test_sharded_shard_plan_covers_all_items():
    from repro.perf.backends.sharded import ShardedBackend
    for n_items, n_jobs, chunk in ((16, 2, 2), (17, 3, 4), (5, 4, 1),
                                   (100, 7, 9)):
        shards = ShardedBackend._shard_chunks(n_items, n_jobs, chunk)
        assert len(shards) == n_jobs
        covered = sorted(
            index for shard in shards for start, stop in shard
            for index in range(start, stop))
        assert covered == list(range(n_items))


# ----------------------------------------------------------------------
# the deprecated import path
# ----------------------------------------------------------------------

def test_pool_module_warns_and_reexports():
    sys.modules.pop("repro.perf.pool", None)
    with pytest.warns(DeprecationWarning, match="repro.perf.pool is "
                                                "deprecated"):
        pool = importlib.import_module("repro.perf.pool")
    assert pool.map_sweep is backends.map_sweep
    assert pool.plan_jobs is backends.plan_jobs
    assert pool.last_map_info is backends.last_map_info
    assert pool.MapInfo is backends.MapInfo
