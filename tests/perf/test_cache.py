"""Cache-correctness tests: warm solves must be indistinguishable
from cold ones, and the fingerprint must key on structure, not names."""

import numpy as np
import pytest

from repro.gtpn import Net, analyze
from repro.models import Architecture, build_local_net
from repro.perf import AnalysisCache, cache_enabled, fingerprint_net, \
    set_cache_enabled


def _cycle_net(name="cycle", delay=5, compute=0):
    net = Net(name)
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    net.transition("serve", delay=delay + compute, inputs=[ready],
                   outputs=[done], resource="lambda")
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    return net


def test_warm_analyze_identical_to_cold():
    cache = AnalysisCache()
    cold = analyze(build_local_net(Architecture.I, 2, 500.0),
                   cache=cache)
    warm = analyze(build_local_net(Architecture.I, 2, 500.0),
                   cache=cache)
    assert cache.hits == 1 and cache.misses == 1
    assert warm.throughput() == cold.throughput()
    assert warm.state_count == cold.state_count
    assert np.array_equal(warm.pi, cold.pi)
    for t in cold.net.transitions:
        assert warm.firing_rate(t.name) == cold.firing_rate(t.name)
    for p in cold.net.places:
        assert warm.mean_tokens(p.name) == cold.mean_tokens(p.name)


def test_structurally_identical_nets_share_fingerprint():
    # net/place/transition names are cosmetic: they must not split keys
    a = _cycle_net(name="first")
    b = _cycle_net(name="second")
    b.name = "renamed-again"
    assert fingerprint_net(a) == fingerprint_net(b)

    # ... and a hit on the renamed net binds results to *its* names
    cache = AnalysisCache()
    ra = analyze(a, cache=cache)
    rb = analyze(b, cache=cache)
    assert cache.hits == 1
    assert rb.throughput() == ra.throughput()
    assert rb.net is b


def test_fingerprint_distinguishes_structure():
    base = fingerprint_net(_cycle_net())
    assert fingerprint_net(_cycle_net(delay=6)) != base
    extra = _cycle_net()
    extra.place("Spare", tokens=1)
    assert fingerprint_net(extra) != base


def test_fingerprint_distinguishes_initial_marking():
    net = _cycle_net()
    other = Net("other")
    ready = other.place("Ready", tokens=2)
    done = other.place("Done")
    other.transition("serve", delay=5, inputs=[ready], outputs=[done],
                     resource="lambda")
    other.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    assert fingerprint_net(net) != fingerprint_net(other)


def test_fingerprint_covers_closure_values():
    def freq_net(rate):
        net = Net("freq")
        ready = net.place("Ready", tokens=1)
        done = net.place("Done")
        net.transition("go", delay=1,
                       frequency=lambda ctx: rate,
                       inputs=[ready], outputs=[done],
                       resource="lambda")
        net.transition("back", delay=1, inputs=[done], outputs=[ready])
        return net

    same = fingerprint_net(freq_net(0.5))
    assert fingerprint_net(freq_net(0.5)) == same
    assert fingerprint_net(freq_net(0.25)) != same


def test_uncacheable_callable_yields_none():
    import functools
    net = Net("partial")
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    net.transition("go", delay=1,
                   frequency=functools.partial(lambda ctx, v: v, v=1.0),
                   inputs=[ready], outputs=[done])
    net.transition("back", delay=1, inputs=[done], outputs=[ready])
    assert fingerprint_net(net) is None
    # the analyzer must still solve it (no cache participation)
    cache = AnalysisCache()
    result = analyze(net, cache=cache)
    assert result.state_count > 0
    assert len(cache) == 0


def test_disk_tier_shares_solves(tmp_path):
    first = AnalysisCache(directory=tmp_path)
    cold = analyze(_cycle_net(), cache=first)
    # a fresh cache over the same directory hits the disk tier
    second = AnalysisCache(directory=tmp_path)
    warm = analyze(_cycle_net(), cache=second)
    assert second.hits == 1 and second.misses == 0
    assert warm.throughput() == cold.throughput()
    assert np.array_equal(warm.pi, cold.pi)


@pytest.mark.parametrize("junk", [b"not a pickle", b"garbage\n", b""])
def test_corrupt_disk_entry_is_a_miss(tmp_path, junk):
    # different corruption shapes raise different exceptions from
    # pickle.load (UnpicklingError, ValueError, EOFError); all must
    # read as a miss, never an error
    cache = AnalysisCache(directory=tmp_path)
    analyze(_cycle_net(), cache=cache)
    for entry in tmp_path.glob("analysis-*.pkl"):
        entry.write_bytes(junk)
    fresh = AnalysisCache(directory=tmp_path)
    result = analyze(_cycle_net(), cache=fresh)
    assert result.throughput() > 0
    assert fresh.misses >= 1


def test_lru_bound_evicts_oldest():
    cache = AnalysisCache(max_entries=2)
    for delay in (3, 4, 5):
        analyze(_cycle_net(delay=delay), cache=cache)
    assert len(cache) == 2


def test_cache_disable_switch(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    set_cache_enabled(True)
    assert cache_enabled()
    set_cache_enabled(False)
    try:
        assert not cache_enabled()
    finally:
        set_cache_enabled(True)
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert not cache_enabled()
