"""Tests for the three estimator adapters.

These run the real analyzers on the smallest grid point with short
horizons — the statistical agreement itself is exercised by the
``validate-quick`` gate, not the unit suite.
"""

import pytest

from repro.models.params import Architecture, Mode
from repro.models.solve import reference_point
from repro.validate.estimators import (estimate_point, exact_estimate,
                                       kernel_estimate,
                                       monte_carlo_estimate)
from repro.validate.grid import (DESSettings, MCSettings,
                                 ValidationConfig)

TINY_MC = MCSettings(batches=4, round_trips_per_batch=2.0,
                     min_batch_ticks=2_000)
TINY_DES = DESSettings(warmup_us=20_000.0, measure_us=100_000.0)


def tiny_config(architecture=Architecture.II, mode=Mode.LOCAL):
    return ValidationConfig(
        architecture=architecture, mode=mode, conversations=1,
        compute_us=0.0, des_throughput_rtol=0.2, busy_atol=0.15)


def test_exact_estimate_fields():
    reference = reference_point(Architecture.II, Mode.LOCAL, 1, 0.0)
    exact = exact_estimate(reference)
    assert exact.throughput_per_ms > 0
    assert exact.solution_throughput_per_ms == \
        pytest.approx(exact.throughput_per_ms, rel=1e-9)
    assert set(exact.busy) == {"Host", "MP"}
    assert all(0.0 <= value <= 1.0 for value in exact.busy.values())
    assert exact.state_count > 0


def test_monte_carlo_estimate_near_exact():
    reference = reference_point(Architecture.II, Mode.LOCAL, 1, 0.0)
    exact = exact_estimate(reference)
    mc = monte_carlo_estimate(reference, TINY_MC, seed=7)
    assert mc.batches == TINY_MC.batches
    assert mc.half_width_per_ms > 0
    low, high = mc.interval_per_ms
    assert low < mc.mean_per_ms < high
    # loose sanity: a short run still lands in the right decade
    assert mc.mean_per_ms == pytest.approx(exact.throughput_per_ms,
                                           rel=0.5)


def test_kernel_estimate_names_processors_like_the_model():
    kernel = kernel_estimate(tiny_config(), TINY_DES, seed=7)
    assert set(kernel.busy) == {"Host", "MP"}
    assert kernel.throughput_per_ms > 0
    assert kernel.round_trips > 0


def test_kernel_estimate_drops_mp_for_uniprocessor():
    """Architecture I has no message processor; its busy map must not
    invent one."""
    kernel = kernel_estimate(tiny_config(Architecture.I), TINY_DES,
                             seed=7)
    assert "MP" not in kernel.busy
    assert "Host" in kernel.busy


def test_estimate_point_is_deterministic():
    config = tiny_config()
    a = estimate_point(config, TINY_MC, TINY_DES, base_seed=7)
    b = estimate_point(config, TINY_MC, TINY_DES, base_seed=7)
    assert a.exact.throughput_per_ms == b.exact.throughput_per_ms
    assert a.monte_carlo.mean_per_ms == b.monte_carlo.mean_per_ms
    assert a.kernel.throughput_per_ms == b.kernel.throughput_per_ms
    assert a.monte_carlo.seed == config.seed_for(7)


def test_nonlocal_point_uses_client_side():
    config = tiny_config(mode=Mode.NONLOCAL)
    point = estimate_point(config, TINY_MC, TINY_DES, base_seed=7)
    # the non-local reference net models the client node; solve()'s
    # fixed-point throughput is the figure-level value
    assert point.exact.solution_throughput_per_ms > 0
    assert point.kernel.throughput_per_ms > 0
    assert set(point.exact.busy) <= {"Host", "MP"}
