"""Tests for parity-report assembly, persistence, and validation.

Built on synthetic estimates so the check logic is exercised exactly
at its boundaries without running any simulator.
"""

import json

import pytest

from repro.errors import ReproError
from repro.models.params import Architecture, Mode
from repro.validate.estimators import (ExactEstimate, KernelEstimate,
                                       MonteCarloEstimate,
                                       PointEstimates)
from repro.validate.grid import ValidationConfig
from repro.validate.metamorphic import MetamorphicResult
from repro.validate.report import (REPORT_SCHEMA, PointReport,
                                   ValidationReport, point_checks,
                                   validate_report, write_report)


def make_point(*, exact=0.20, mc_mean=0.21, mc_half=0.02,
               des=0.21, exact_busy=None, kernel_busy=None,
               rtol=0.12, atol=0.08, ci_slack=1.0):
    config = ValidationConfig(
        architecture=Architecture.II, mode=Mode.LOCAL,
        conversations=2, compute_us=0.0,
        des_throughput_rtol=rtol, busy_atol=atol, ci_slack=ci_slack)
    return PointEstimates(
        config=config,
        exact=ExactEstimate(
            throughput_per_ms=exact,
            solution_throughput_per_ms=exact,
            busy=exact_busy if exact_busy is not None
            else {"Host": 0.9, "MP": 0.5},
            state_count=10),
        monte_carlo=MonteCarloEstimate(
            mean_per_ms=mc_mean, half_width_per_ms=mc_half,
            batches=8, batch_ticks=6_000, warmup_ticks=3_000, seed=7),
        kernel=KernelEstimate(
            throughput_per_ms=des,
            busy=kernel_busy if kernel_busy is not None
            else {"Host": 0.88, "MP": 0.47},
            round_trips=100, warmup_us=1e5, measure_us=5e5, seed=7))


def by_name(checks):
    return {check.name: check for check in checks}


def test_all_checks_pass_on_agreeing_estimates():
    checks = point_checks(make_point())
    assert {c.name for c in checks} == {
        "exact-in-mc-ci", "des-throughput", "des-busy-host",
        "des-busy-mp"}
    assert all(c.ok for c in checks)


def test_exact_outside_ci_fails():
    checks = by_name(point_checks(make_point(exact=0.20, mc_mean=0.25,
                                             mc_half=0.02)))
    assert not checks["exact-in-mc-ci"].ok


def test_ci_slack_widens_the_band():
    tight = by_name(point_checks(make_point(
        exact=0.20, mc_mean=0.23, mc_half=0.02, ci_slack=1.0)))
    slack = by_name(point_checks(make_point(
        exact=0.20, mc_mean=0.23, mc_half=0.02, ci_slack=2.0)))
    assert not tight["exact-in-mc-ci"].ok
    assert slack["exact-in-mc-ci"].ok


def test_des_throughput_band_is_relative():
    ok = by_name(point_checks(make_point(des=0.20 * 1.11)))
    bad = by_name(point_checks(make_point(des=0.20 * 1.13)))
    assert ok["des-throughput"].ok
    assert not bad["des-throughput"].ok


def test_busy_fraction_band_is_absolute():
    bad = by_name(point_checks(make_point(
        kernel_busy={"Host": 0.79, "MP": 0.5})))
    assert not bad["des-busy-host"].ok
    assert bad["des-busy-mp"].ok


def test_missing_kernel_processor_fails_loudly():
    checks = by_name(point_checks(make_point(
        kernel_busy={"Host": 0.9})))
    assert not checks["des-busy-mp"].ok
    assert "no MP processor" in checks["des-busy-mp"].detail


def passing_report(tmp_path=None):
    estimates = make_point()
    return ValidationReport(
        grid_name="quick", seed=7,
        points=[PointReport(estimates=estimates,
                            checks=point_checks(estimates))],
        metamorphic=[MetamorphicResult("delay-scaling", True, "ok")],
        baseline={"ok": True, "checked": 1, "drifted": [],
                  "missing": [], "path": "b.json",
                  "drift_rtol": 1e-6},
        scoreboard={"total": 2, "passed": 2, "failing": [],
                    "ok": True, "claims": []},
        execution={"pool_note": "serial", "elapsed_s": 0.1})


def test_report_aggregates_failures():
    report = passing_report()
    assert report.ok
    assert report.failures == []
    report.baseline = {"ok": False}
    report.scoreboard = {"ok": False}
    report.metamorphic.append(
        MetamorphicResult("mc-determinism", False, "broken"))
    assert set(report.failures) == {
        "baseline-drift", "scoreboard", "metamorphic: mc-determinism"}
    assert not report.ok


def test_report_roundtrip_validates(tmp_path):
    path = write_report(passing_report(), tmp_path / "report.json")
    payload = validate_report(path)
    assert payload["schema"] == REPORT_SCHEMA
    assert payload["summary"]["ok"] is True
    assert payload["summary"]["points"] == 1


def test_table_renders_summary(capsys):
    table = passing_report().table("validate-quick")
    text = table.render()
    assert "1/1 configurations agree" in text
    assert "II-local-n2-x0" in text
    assert "PASS" in text


def test_validate_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "report.json"
    payload = json.loads(
        write_report(passing_report(), path).read_text())
    payload["schema"] = "something/else"
    path.write_text(json.dumps(payload))
    with pytest.raises(ReproError, match="schema"):
        validate_report(path)


def test_validate_report_rejects_empty_points(tmp_path):
    path = tmp_path / "report.json"
    payload = json.loads(
        write_report(passing_report(), path).read_text())
    payload["points"] = []
    path.write_text(json.dumps(payload))
    with pytest.raises(ReproError, match="no configurations"):
        validate_report(path)


def test_validate_report_detects_doctored_verdict(tmp_path):
    """A report whose checks say FAIL but whose summary says ok must
    not pass the CI artifact validation."""
    path = tmp_path / "report.json"
    payload = json.loads(
        write_report(passing_report(), path).read_text())
    payload["points"][0]["checks"][0]["ok"] = False
    path.write_text(json.dumps(payload))
    with pytest.raises(ReproError, match="summary.ok"):
        validate_report(path)


def test_validate_report_rejects_garbage(tmp_path):
    path = tmp_path / "report.json"
    path.write_text("{not json")
    with pytest.raises(ReproError, match="not valid JSON"):
        validate_report(path)
    with pytest.raises(ReproError, match="cannot read"):
        validate_report(tmp_path / "absent.json")


def test_sync_section_parity_holds():
    from repro.validate.report import _sync_section
    section = _sync_section()
    assert section["ok"] is True
    assert section["tolerance_edges"] == 0
    assert set(section["primitives"]) == {"tas", "cas", "llsc", "htm"}
    for entry in section["primitives"].values():
        assert entry["ok"]
        assert [row["operation"] for row in entry["operations"]] == \
            ["enqueue", "first", "dequeue"]


def test_sync_mismatch_fails_the_report():
    from repro.validate.report import _sync_section
    report = passing_report()
    report.sync = _sync_section()
    assert report.ok
    row = report.sync["primitives"]["cas"]["operations"][0]
    row["ok"] = False
    report.sync["primitives"]["cas"]["ok"] = False
    report.sync["ok"] = False
    assert "sync-cas-enqueue" in report.failures
    assert not report.ok


def test_validate_report_detects_doctored_sync_verdict(tmp_path):
    from repro.validate.report import _sync_section
    report = passing_report()
    report.sync = _sync_section()
    path = tmp_path / "report.json"
    payload = json.loads(write_report(report, path).read_text())
    assert payload["sync"]["ok"] is True
    payload["sync"]["ok"] = False
    path.write_text(json.dumps(payload))
    with pytest.raises(ReproError, match="summary.ok"):
        validate_report(path)
