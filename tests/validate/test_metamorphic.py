"""Tests for the metamorphic property checks."""

from repro.validate.metamorphic import (check_conversation_monotonicity,
                                        check_delay_scaling,
                                        check_mc_determinism,
                                        check_open_arrival_convergence,
                                        check_zero_fault_identity,
                                        run_metamorphic_checks)


def test_all_properties_hold():
    results = run_metamorphic_checks(seed=7)
    assert [r.name for r in results] == [
        "delay-scaling", "zero-fault-identity", "mc-determinism",
        "conversation-monotonicity", "open-arrival-convergence"]
    failing = [r for r in results if not r.ok]
    assert not failing, [(r.name, r.detail) for r in failing]


def test_delay_scaling_holds_to_machine_precision():
    result = check_delay_scaling(scale=5, rtol=1e-12)
    assert result.ok, result.detail


def test_zero_fault_identity_seed_independent():
    assert check_zero_fault_identity(seed=3,
                                     horizon_us=60_000.0).ok


def test_mc_determinism_any_seed():
    assert check_mc_determinism(seed=12345).ok


def test_monotonicity_detail_names_the_series():
    result = check_conversation_monotonicity()
    assert result.ok
    assert "n=1,2,3" in result.detail


def test_open_arrival_convergence_names_tolerances():
    result = check_open_arrival_convergence(seed=0)
    assert result.ok, result.detail
    # the declared tolerances are part of the check's public story
    assert "0.15" in result.detail and "0.25" in result.detail


def test_result_serializes():
    result = check_delay_scaling()
    payload = result.as_dict()
    assert payload["name"] == "delay-scaling"
    assert payload["ok"] is True
    assert isinstance(payload["detail"], str)
