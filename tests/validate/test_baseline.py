"""Tests for the persisted exact-value baseline and drift detection."""

import pytest

from repro.errors import ReproError
from repro.validate.baseline import (BASELINE_SCHEMA, check_drift,
                                     default_path, load_baseline,
                                     set_default_path, write_baseline)


def entries():
    return {
        "II-local-n2-x0": {"throughput_per_ms": 0.2012,
                           "busy": {"Host": 0.9, "MP": 0.5}},
        "III-local-n3-x0": {"throughput_per_ms": 0.3409,
                            "busy": {"Host": 0.8, "MP": 0.6}},
    }


def test_write_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, entries(), grids=["quick", "full"])
    payload = load_baseline(path)
    assert payload["schema"] == BASELINE_SCHEMA
    assert payload["grids"] == ["full", "quick"]
    assert set(payload["entries"]) == set(entries())


def test_no_drift_on_identical_values(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, entries(), grids=["quick"])
    section = check_drift(load_baseline(path), entries())
    assert section["ok"]
    assert section["checked"] == 2
    assert section["drifted"] == []
    assert section["missing"] == []


def test_drift_detected_beyond_float_noise(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, entries(), grids=["quick"])
    moved = entries()
    moved["II-local-n2-x0"]["throughput_per_ms"] *= 1.001
    section = check_drift(load_baseline(path), moved)
    assert not section["ok"]
    assert [d["config_id"] for d in section["drifted"]] == \
        ["II-local-n2-x0"]
    assert "throughput" in section["drifted"][0]["problems"][0]


def test_float_noise_is_not_drift(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, entries(), grids=["quick"])
    jittered = entries()
    jittered["II-local-n2-x0"]["throughput_per_ms"] += 1e-12
    assert check_drift(load_baseline(path), jittered)["ok"]


def test_unpinned_config_fails_the_gate(tmp_path):
    """A grid point the baseline has never seen means the grid grew
    without re-baselining — that must fail, not silently pass."""
    path = tmp_path / "baseline.json"
    write_baseline(path, entries(), grids=["quick"])
    grown = entries()
    grown["IV-nonlocal-n2-x0"] = {"throughput_per_ms": 0.31,
                                  "busy": {"Host": 0.5}}
    section = check_drift(load_baseline(path), grown)
    assert not section["ok"]
    assert section["missing"] == ["IV-nonlocal-n2-x0"]


def test_busy_drift_detected(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, entries(), grids=["quick"])
    moved = entries()
    moved["III-local-n3-x0"]["busy"]["MP"] += 0.01
    section = check_drift(load_baseline(path), moved)
    assert not section["ok"]
    assert "busy[MP]" in section["drifted"][0]["problems"][0]


def test_load_rejects_bad_schema_and_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "other/1", "entries": {}}')
    with pytest.raises(ReproError, match="schema"):
        load_baseline(bad)
    garbage = tmp_path / "garbage.json"
    garbage.write_text("[")
    with pytest.raises(ReproError, match="not valid JSON"):
        load_baseline(garbage)
    with pytest.raises(ReproError, match="cannot read"):
        load_baseline(tmp_path / "absent.json")


def test_default_path_override():
    assert default_path() == "validation-baseline.json"
    try:
        set_default_path("elsewhere.json")
        assert default_path() == "elsewhere.json"
    finally:
        set_default_path(None)
    assert default_path() == "validation-baseline.json"
