"""Tests for the validation configuration grid."""

import pytest

from repro.errors import ConfigError
from repro.models.params import Architecture, Mode
from repro.validate.grid import (GRIDS, MCSettings, SETTINGS,
                                 ValidationConfig, declared_tolerances,
                                 full_grid, grid, quick_grid)


def test_quick_grid_covers_every_architecture_and_both_modes():
    configs = quick_grid()
    assert len(configs) == 4
    assert {c.architecture for c in configs} == set(Architecture)
    assert {c.mode for c in configs} == {Mode.LOCAL, Mode.NONLOCAL}


def test_full_grid_shape_and_unique_ids():
    configs = full_grid()
    assert len(configs) == 24       # 4 archs x 2 modes x 3 points
    ids = [c.config_id for c in configs]
    assert len(set(ids)) == len(ids)
    assert {c.architecture for c in configs} == set(Architecture)


def test_config_id_format():
    config = ValidationConfig(
        architecture=Architecture.II, mode=Mode.NONLOCAL,
        conversations=3, compute_us=2850.0,
        des_throughput_rtol=0.15, busy_atol=0.08)
    assert config.config_id == "II-nonlocal-n3-x2850"


def test_seed_for_is_stable_and_distinct():
    configs = full_grid()
    seeds = [c.seed_for(7) for c in configs]
    assert seeds == [c.seed_for(7) for c in configs]
    assert len(set(seeds)) == len(seeds)
    assert all(0 <= s < 2 ** 31 for s in seeds)
    # a different base seed shifts every per-config seed
    assert all(a != b for a, b in zip(seeds,
                                      (c.seed_for(8) for c in configs)))


def test_uniprocessor_nonlocal_band_is_the_thesis_band():
    """Arch I non-local at several conversations carries the thesis's
    own ~25% validation band, everything else a much tighter one."""
    wide = declared_tolerances(Architecture.I, Mode.NONLOCAL, 3, 0.0)
    tight = declared_tolerances(Architecture.II, Mode.NONLOCAL, 3, 0.0)
    assert wide[0] > 2 * tight[0]
    assert declared_tolerances(Architecture.I, Mode.NONLOCAL, 1,
                               0.0) == tight
    assert declared_tolerances(Architecture.I, Mode.LOCAL, 3,
                               0.0)[0] <= tight[0]


def test_adaptive_batch_ticks():
    settings = MCSettings(batches=8, round_trips_per_batch=10.0,
                          min_batch_ticks=6_000)
    # fast cycle: the floor wins
    assert settings.batch_ticks(0.01) == 6_000
    # slow cycle (long server compute): batches stretch to keep
    # ~10 round trips each
    assert settings.batch_ticks(0.0002) == 50_000
    # degenerate throughput falls back to the floor
    assert settings.batch_ticks(0.0) == 6_000


def test_named_grids_and_settings_agree():
    assert set(GRIDS) == set(SETTINGS)
    assert [c.config_id for c in grid("quick")] == \
        [c.config_id for c in quick_grid()]
    with pytest.raises(ConfigError, match="unknown validation grid"):
        grid("bogus")
