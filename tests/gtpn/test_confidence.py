"""Tests for batch-means confidence intervals."""

import pytest

from repro.errors import AnalysisError
from repro.gtpn import (Net, activity_pair, analyze,
                        simulate_with_confidence)


def cycle_net(mean=10.0):
    net = Net()
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    activity_pair(net, "serve", mean, inputs=[ready], outputs=[done],
                  resource="lambda")
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    return net


def test_interval_contains_exact_value():
    net = cycle_net(mean=8.0)
    exact = analyze(net).throughput()
    ci = simulate_with_confidence(net, batches=10, batch_ticks=20_000,
                                  seed=5)
    assert ci.contains(exact)
    assert ci.half_width > 0


def test_more_ticks_tighter_interval():
    net = cycle_net()
    short = simulate_with_confidence(net, batches=5,
                                     batch_ticks=2_000, seed=1)
    long = simulate_with_confidence(net, batches=5,
                                    batch_ticks=50_000, seed=1)
    assert long.half_width < short.half_width


def test_batch_means_recorded():
    ci = simulate_with_confidence(cycle_net(), batches=6,
                                  batch_ticks=5_000, seed=2)
    assert len(ci.batch_means) == 6
    assert ci.mean == pytest.approx(sum(ci.batch_means) / 6)


def test_interval_bounds_ordered():
    ci = simulate_with_confidence(cycle_net(), batches=4,
                                  batch_ticks=5_000, seed=3)
    low, high = ci.interval
    assert low <= ci.mean <= high


def test_reproducible_with_seed():
    a = simulate_with_confidence(cycle_net(), batches=4,
                                 batch_ticks=3_000, seed=9)
    b = simulate_with_confidence(cycle_net(), batches=4,
                                 batch_ticks=3_000, seed=9)
    assert a.mean == b.mean
    assert a.batch_means == b.batch_means


def test_validation_errors():
    net = cycle_net()
    with pytest.raises(AnalysisError):
        simulate_with_confidence(net, batches=1)
    with pytest.raises(AnalysisError):
        simulate_with_confidence(net, resource="nonexistent",
                                 batches=4, batch_ticks=1_000)


@pytest.mark.parametrize("batch_ticks", [0, -5])
def test_nonpositive_batch_ticks_rejected(batch_ticks):
    """Used to surface as a bare ZeroDivisionError from the batch
    average."""
    with pytest.raises(AnalysisError, match="batch_ticks"):
        simulate_with_confidence(cycle_net(), batches=4,
                                 batch_ticks=batch_ticks)


def test_negative_warmup_rejected():
    with pytest.raises(AnalysisError, match="warmup"):
        simulate_with_confidence(cycle_net(), batches=4,
                                 batch_ticks=1_000, warmup=-1)


def test_interval_coverage_across_seeds():
    """The 95% CI should contain the exact value at roughly its
    nominal rate: over 20 seeds, allow at most 3 misses."""
    net = cycle_net(mean=8.0)
    exact = analyze(net).throughput()
    hits = sum(
        simulate_with_confidence(net, batches=8, batch_ticks=2_000,
                                 warmup=1_000, seed=s).contains(exact)
        for s in range(20))
    assert hits >= 17, f"only {hits}/20 intervals contained the exact value"


def test_seed_resolves_through_global_default():
    """Without an explicit seed the simulator consults the
    process-wide default (CLI --seed / REPRO_SEED)."""
    from repro.seeding import set_default_seed
    net = cycle_net()
    try:
        set_default_seed(77)
        a = simulate_with_confidence(net, batches=4, batch_ticks=2_000)
        b = simulate_with_confidence(net, batches=4, batch_ticks=2_000,
                                     seed=77)
    finally:
        set_default_seed(None)
    assert a.mean == b.mean
    assert a.batch_means == b.batch_means
