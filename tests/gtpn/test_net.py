"""Unit tests for GTPN net construction (repro.gtpn.net)."""

import pytest

from repro.errors import ModelError
from repro.gtpn import Context, Net


def test_place_creation_assigns_indices():
    net = Net()
    a = net.place("A", tokens=2)
    b = net.place("B")
    assert a.index == 0
    assert b.index == 1
    assert net.initial_marking == (2, 0)


def test_duplicate_place_name_rejected():
    net = Net()
    net.place("A")
    with pytest.raises(ModelError):
        net.place("A")


def test_negative_initial_tokens_rejected():
    net = Net()
    with pytest.raises(ModelError):
        net.place("A", tokens=-1)


def test_transition_arcs_from_iterable_with_multiplicity():
    net = Net()
    a = net.place("A", tokens=3)
    b = net.place("B")
    t = net.transition("T", delay=1, inputs=[a, a], outputs=[b])
    assert t.inputs == {a.index: 2}
    assert t.outputs == {b.index: 1}


def test_transition_arcs_from_mapping():
    net = Net()
    a = net.place("A", tokens=3)
    b = net.place("B")
    t = net.transition("T", delay=1, inputs={a: 3}, outputs={b: 2})
    assert t.inputs == {a.index: 3}
    assert t.outputs == {b.index: 2}


def test_duplicate_transition_name_rejected():
    net = Net()
    a = net.place("A", tokens=1)
    net.transition("T", delay=1, inputs=[a], outputs=[a])
    with pytest.raises(ModelError):
        net.transition("T", delay=1, inputs=[a], outputs=[a])


def test_negative_delay_rejected():
    net = Net()
    a = net.place("A", tokens=1)
    with pytest.raises(ModelError):
        net.transition("T", delay=-1, inputs=[a], outputs=[a])


def test_zero_multiplicity_arc_rejected():
    net = Net()
    a = net.place("A", tokens=1)
    with pytest.raises(ModelError):
        net.transition("T", delay=1, inputs={a: 0}, outputs={a: 1})


def test_unknown_place_lookup_raises():
    net = Net()
    with pytest.raises(ModelError):
        net.place_index("missing")


def test_unknown_transition_lookup_raises():
    net = Net()
    with pytest.raises(ModelError):
        net.transition_index("missing")


def test_enabled_requires_arc_multiplicity():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    t = net.transition("T", delay=1, inputs={a: 2}, outputs=[b])
    assert not t.enabled(net.initial_marking)
    assert t.enabled((2, 0))


def test_immediate_property():
    net = Net()
    a = net.place("A", tokens=1)
    t0 = net.transition("T0", delay=0, inputs=[a], outputs=[a])
    t1 = net.transition("T1", delay=1, inputs=[a], outputs=[a])
    assert t0.immediate
    assert not t1.immediate


def test_resources_listed_in_first_use_order():
    net = Net()
    a = net.place("A", tokens=1)
    net.transition("T0", delay=1, resource="beta", inputs=[a], outputs=[a])
    net.transition("T1", delay=1, resource="alpha", inputs=[a], outputs=[a])
    net.transition("T2", delay=1, resource="beta", inputs=[a], outputs=[a])
    assert net.resources == ["beta", "alpha"]


def test_validate_rejects_transitions_without_inputs():
    net = Net()
    a = net.place("A")
    net.transition("T", delay=1, inputs=[], outputs=[a])
    with pytest.raises(ModelError):
        net.validate()


class TestConflictClasses:
    def test_disjoint_transitions_in_separate_classes(self):
        net = Net()
        a = net.place("A", tokens=1)
        b = net.place("B", tokens=1)
        net.transition("TA", delay=1, inputs=[a], outputs=[a])
        net.transition("TB", delay=1, inputs=[b], outputs=[b])
        assert net.conflict_classes() == [[0], [1]]

    def test_shared_input_place_merges_classes(self):
        net = Net()
        a = net.place("A", tokens=1)
        net.transition("T0", delay=1, inputs=[a], outputs=[a])
        net.transition("T1", delay=1, inputs=[a], outputs=[a])
        assert net.conflict_classes() == [[0, 1]]

    def test_transitive_sharing_merges_classes(self):
        # T0 shares A with T1; T1 shares B with T2 -> all one class
        net = Net()
        a = net.place("A", tokens=1)
        b = net.place("B", tokens=1)
        c = net.place("C", tokens=1)
        net.transition("T0", delay=1, inputs=[a], outputs=[a])
        net.transition("T1", delay=1, inputs=[a, b], outputs=[a, b])
        net.transition("T2", delay=1, inputs=[b, c], outputs=[b, c])
        assert net.conflict_classes() == [[0, 1, 2]]

    def test_output_sharing_does_not_merge(self):
        net = Net()
        a = net.place("A", tokens=1)
        b = net.place("B", tokens=1)
        c = net.place("C")
        net.transition("T0", delay=1, inputs=[a], outputs=[c])
        net.transition("T1", delay=1, inputs=[b], outputs=[c])
        assert net.conflict_classes() == [[0], [1]]

    def test_cache_invalidated_by_new_transition(self):
        net = Net()
        a = net.place("A", tokens=1)
        net.transition("T0", delay=1, inputs=[a], outputs=[a])
        assert net.conflict_classes() == [[0]]
        net.transition("T1", delay=1, inputs=[a], outputs=[a])
        assert net.conflict_classes() == [[0, 1]]


class TestContext:
    def _net(self):
        net = Net()
        net.place("A", tokens=3)
        net.place("B", tokens=0)
        a = net.get_place("A")
        net.transition("T", delay=1, inputs=[a], outputs=[a])
        return net

    def test_tokens_by_name_and_place(self):
        net = self._net()
        ctx = Context(net, (3, 0), [0])
        assert ctx.tokens("A") == 3
        assert ctx.tokens(net.get_place("B")) == 0

    def test_firing_flags(self):
        net = self._net()
        ctx = Context(net, (3, 0), [2])
        assert ctx.firing("T")
        assert ctx.firing_count("T") == 2
        ctx2 = Context(net, (3, 0), [0])
        assert not ctx2.firing("T")

    def test_state_dependent_frequency_uses_context(self):
        net = Net()
        a = net.place("A", tokens=1)
        gate = net.place("Gate", tokens=0)
        t = net.transition(
            "T", delay=1,
            frequency=lambda ctx: 1.0 if ctx.tokens("Gate") == 0 else 0.0,
            inputs=[a], outputs=[a])
        open_ctx = Context(net, (1, 0), [0, 0])
        closed_ctx = Context(net, (1, 1), [0, 0])
        assert t.eval_frequency(open_ctx) == 1.0
        assert t.eval_frequency(closed_ctx) == 0.0
        assert gate.index == 1
