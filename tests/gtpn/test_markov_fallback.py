"""Regression tests for the narrowed stationary-solve fallback.

The direct solve's ``except`` clause once caught *everything*, hiding
programming errors behind a silent (and slow) power-iteration
fallback.  It now catches only numerical failures — and counts them —
while anything else propagates.
"""

import numpy as np
import pytest

from repro import obs
from repro.gtpn import (Net, activity_pair, build_reachability_graph,
                        stationary_distribution)
from repro.gtpn import markov


def cycle_graph():
    net = Net("cycle")
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    activity_pair(net, "serve", 10.0, inputs=[ready], outputs=[done],
                  resource="lambda")
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    return build_reachability_graph(net)


def test_numerical_failure_falls_back_and_counts(monkeypatch):
    def numerically_doomed(matrix):
        raise np.linalg.LinAlgError("singular")

    monkeypatch.setattr(markov, "_solve_linear", numerically_doomed)
    graph = cycle_graph()
    reference = stationary_distribution(graph, method="power")
    with obs.recording() as recorder:
        pi = stationary_distribution(graph, method="auto")
    assert pi == pytest.approx(reference, abs=1e-8)
    assert recorder.counters.get("markov.solve_fallback") == 1.0


def test_linear_method_re_raises_numerical_failure(monkeypatch):
    def numerically_doomed(matrix):
        raise np.linalg.LinAlgError("singular")

    monkeypatch.setattr(markov, "_solve_linear", numerically_doomed)
    with pytest.raises(np.linalg.LinAlgError):
        stationary_distribution(cycle_graph(), method="linear")


def test_non_numerical_error_propagates(monkeypatch):
    """A defect in the solver must surface, not fall back silently."""
    def buggy(matrix):
        raise TypeError("a programming error, not a numerical one")

    monkeypatch.setattr(markov, "_solve_linear", buggy)
    with obs.recording() as recorder:
        with pytest.raises(TypeError):
            stationary_distribution(cycle_graph(), method="auto")
    assert "markov.solve_fallback" not in recorder.counters
