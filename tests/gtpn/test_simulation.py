"""Tests for the Monte Carlo GTPN simulator."""

import pytest

from repro.errors import AnalysisError
from repro.gtpn import Net, activity_pair, simulate


def small_net():
    net = Net()
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    activity_pair(net, "serve", 5.0, inputs=[ready], outputs=[done],
                  resource="lambda")
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    return net


def test_simulation_reproducible_with_seed():
    a = simulate(small_net(), ticks=20_000, seed=123).throughput()
    b = simulate(small_net(), ticks=20_000, seed=123).throughput()
    assert a == b


def test_different_seeds_differ():
    a = simulate(small_net(), ticks=5_000, seed=1).throughput()
    b = simulate(small_net(), ticks=5_000, seed=2).throughput()
    assert a != b


def test_nonpositive_ticks_rejected():
    with pytest.raises(AnalysisError):
        simulate(small_net(), ticks=0)


def test_negative_warmup_rejected():
    """A negative warmup used to silently shorten the measured horizon
    (range(warmup + ticks)) while the averages still divided by the
    full tick count, biasing every measurement low."""
    with pytest.raises(AnalysisError, match="warmup"):
        simulate(small_net(), ticks=1_000, warmup=-500)


def test_throughput_close_to_renewal_value():
    result = simulate(small_net(), ticks=200_000, warmup=2_000, seed=9)
    assert result.throughput() == pytest.approx(1 / 6, rel=0.03)


def test_firing_rate_measured():
    result = simulate(small_net(), ticks=100_000, warmup=1_000, seed=5)
    assert result.firing_rate("serve") == pytest.approx(1 / 6, rel=0.05)
    assert result.firing_rate("recycle") == pytest.approx(1 / 6, rel=0.05)


def test_mean_tokens_measured():
    result = simulate(small_net(), ticks=100_000, warmup=1_000, seed=5)
    # the cycling token is in flight (serve/recycle) almost always;
    # Done is emptied the same tick it is filled, Ready likewise.
    assert result.mean_tokens("Ready") == pytest.approx(0.0, abs=1e-9)


def test_warmup_excluded_from_measurement():
    # measuring only after warmup must not crash and still be sane
    result = simulate(small_net(), ticks=10_000, warmup=10_000, seed=3)
    assert 0.1 < result.throughput() < 0.25
