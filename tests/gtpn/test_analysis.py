"""Tests for the exact analyzer (reachability + Markov solution)."""

import pytest

from repro.errors import AnalysisError
from repro.gtpn import (Net, activity_pair, analyze,
                        build_reachability_graph, simulate,
                        stationary_distribution, transition_matrix)


def cycle_net(mean=10.0, tokens=1):
    """Closed cycle: Ready --serve(mean)--> Done --recycle(1)--> Ready."""
    net = Net("cycle")
    ready = net.place("Ready", tokens=tokens)
    done = net.place("Done")
    activity_pair(net, "serve", mean, inputs=[ready], outputs=[done],
                  resource="lambda")
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    return net


def test_cycle_throughput_matches_renewal_theory():
    # mean cycle time = mean service (10) + recycle (1) = 11 ticks
    result = analyze(cycle_net(mean=10.0))
    assert result.throughput() == pytest.approx(1 / 11, rel=1e-9)


def test_two_independent_tokens_double_throughput():
    result = analyze(cycle_net(mean=10.0, tokens=2))
    assert result.throughput() == pytest.approx(2 / 11, rel=1e-9)


def test_firing_rate_equals_usage_for_delay_one():
    result = analyze(cycle_net(mean=10.0))
    assert result.firing_rate("serve") == pytest.approx(
        result.resource_usage("lambda"), rel=1e-9)


def test_constant_delay_firing_rate_matches_geometric_mean():
    # Fig 6.7: constant delay and its geometric approximation give the
    # same throughput measured at the delay-1 recycle transition.
    geo = analyze(cycle_net(mean=10.0))
    net = Net("cycle-const")
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    net.transition("serve", delay=10, inputs=[ready], outputs=[done])
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready],
                   resource="lambda")
    const = analyze(net)
    assert const.firing_rate("serve") == pytest.approx(1 / 11, rel=1e-9)
    assert const.throughput() == pytest.approx(
        geo.firing_rate("recycle"), rel=1e-9)


def test_mean_tokens_accounts_for_inflight_removal():
    # With one token cycling, deposited tokens are re-consumed within
    # the same tick, so both places read zero in post-decision states:
    # the token is always in flight inside one of the transitions.
    result = analyze(cycle_net(mean=10.0))
    assert result.mean_tokens("Ready") == pytest.approx(0.0, abs=1e-9)
    assert result.mean_tokens("Done") == pytest.approx(0.0, abs=1e-9)
    serve_busy = result.resource_usage("lambda")     # rate of exits
    recycle_busy = result.firing_rate("recycle")
    assert serve_busy == pytest.approx(recycle_busy, rel=1e-9)


def test_state_count_small_for_cycle():
    result = analyze(cycle_net())
    assert result.state_count == 3


def test_utilization_of_constant_delay_transition():
    # delay-10 transition busy 10 of every 11 ticks
    net = Net()
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    net.transition("serve", delay=10, inputs=[ready], outputs=[done],
                   resource="busy")
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    result = analyze(net)
    assert result.resource_usage("busy") == pytest.approx(10 / 11, rel=1e-9)


def test_immediate_transition_rate_counted_in_resource():
    # An immediate transition's resource usage is its firing rate.
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    net.transition("imm", delay=0, inputs=[a], outputs=[b],
                   resource="events")
    net.transition("back", delay=1, inputs=[b], outputs=[a])
    result = analyze(net)
    # each 2-tick cycle fires 'imm' once... the immediate fires in the
    # same tick the token returns, so cycle time is 1 tick of 'back'
    # plus 0 for 'imm': rate = 1 per tick? No: back takes 1 tick, imm
    # fires instantly -> one firing of each per tick.
    assert result.resource_usage("events") == pytest.approx(1.0, rel=1e-9)


def test_processor_sharing_halves_each_rate():
    # Two activities sharing one Host token: each progresses half the
    # time, so each cycle rate is half the dedicated rate.
    def shared_net():
        net = Net()
        host = net.place("Host", tokens=1)
        a = net.place("A", tokens=1)
        b = net.place("B", tokens=1)
        activity_pair(net, "workA", 4.0, inputs=[a], outputs=[a],
                      holds=[host], resource="rateA")
        activity_pair(net, "workB", 4.0, inputs=[b], outputs=[b],
                      holds=[host], resource="rateB")
        return analyze(net)

    result = shared_net()
    # dedicated rate would be 1/4; shared -> 1/8
    assert result.resource_usage("rateA") == pytest.approx(1 / 8, rel=1e-6)
    assert result.resource_usage("rateB") == pytest.approx(1 / 8, rel=1e-6)


def test_reachability_rows_are_stochastic():
    graph = build_reachability_graph(cycle_net())
    for row in graph.probabilities:
        assert sum(row.values()) == pytest.approx(1.0)


def test_transition_matrix_shape():
    graph = build_reachability_graph(cycle_net())
    matrix = transition_matrix(graph)
    assert matrix.shape == (graph.state_count, graph.state_count)


def test_max_states_guard():
    with pytest.raises(AnalysisError):
        build_reachability_graph(cycle_net(tokens=3), max_states=2)


def test_power_and_linear_methods_agree():
    graph = build_reachability_graph(cycle_net(mean=5.0, tokens=2))
    pi_linear = stationary_distribution(graph, method="linear")
    pi_power = stationary_distribution(graph, method="power")
    assert pi_linear == pytest.approx(pi_power, abs=1e-8)


def test_unknown_method_rejected():
    graph = build_reachability_graph(cycle_net())
    with pytest.raises(AnalysisError):
        stationary_distribution(graph, method="bogus")


def test_analyzer_agrees_with_simulation():
    net = cycle_net(mean=7.0, tokens=2)
    exact = analyze(net).throughput()
    sim = simulate(net, ticks=300_000, warmup=5_000, seed=7).throughput()
    assert sim == pytest.approx(exact, rel=0.03)
