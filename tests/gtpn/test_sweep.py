"""Tests for the structure-sharing sweep engine (repro.gtpn.sweep).

The contract under test: re-timing a cached reachability skeleton is
bit-identical to a from-scratch build, every timing change that could
alter branch resolution falls back to a full rebuild, and the split
(structure, timing) cache key never lets two different timings collide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gtpn import Net, activity_pair, analyze
from repro.gtpn.sweep import (SkeletonMismatch, SweepSolver, retime,
                              sweep_analyze, traced_build)
from repro.perf import set_cache_enabled
from repro.perf.cache import fingerprint_net


@pytest.fixture(autouse=True)
def _cache_off():
    """Isolate from the global cache: per-point analyze must take the
    plain build path so the comparison is against independent work."""
    set_cache_enabled(False)
    yield
    set_cache_enabled(True)


def _grid_net(f1: float, f2: float, mean: float) -> Net:
    """One structure, three timing knobs: a conflict class (f1 vs f2),
    a state-dependent frequency, and a geometric activity pair."""
    net = Net("sweep-grid")
    ready = net.place("Ready", tokens=1)
    a = net.place("A")
    b = net.place("B")
    done = net.place("Done")
    net.transition("Ta", delay=1, frequency=f1,
                   inputs=[ready], outputs=[a])
    net.transition("Tb", delay=2,
                   frequency=lambda ctx: f2 if ctx.tokens("Done") == 0
                   else f1,
                   inputs=[ready], outputs=[b])
    activity_pair(net, "work", mean, inputs=[a], outputs=[done])
    net.transition("join", delay=1, inputs=[b], outputs=[done])
    net.transition("loop", delay=1, inputs=[done], outputs=[ready],
                   resource="lambda")
    return net


def _assert_identical(a, b):
    assert a.throughput() == b.throughput()
    assert (a.pi == b.pi).all()
    assert a.state_count == b.state_count
    assert a.graph.probabilities == b.graph.probabilities
    assert all(np.array_equal(x, y) for x, y in
               zip(a.graph.expected_starts, b.graph.expected_starts))


# ----------------------------------------------------------------------
# split cache key
# ----------------------------------------------------------------------

def test_same_structure_different_timing_share_structure_key():
    fp1 = fingerprint_net(_grid_net(0.5, 0.5, 4.0))
    fp2 = fingerprint_net(_grid_net(0.25, 0.75, 9.0))
    assert fp1.structure == fp2.structure
    assert fp1.timing != fp2.timing
    assert fp1 != fp2                       # full keys never collide


def test_structure_key_tracks_structure():
    base = fingerprint_net(_grid_net(0.5, 0.5, 4.0))
    extra = _grid_net(0.5, 0.5, 4.0)
    extra.transition("spur", delay=1,
                     inputs=[extra.places[3]], outputs=[extra.places[0]])
    assert fingerprint_net(extra).structure != base.structure


# ----------------------------------------------------------------------
# retime == rebuild, property-tested over random grids
# ----------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.floats(0.1, 1.0), st.floats(0.1, 1.0),
                          st.floats(2.0, 20.0)),
                min_size=2, max_size=5))
def test_property_sweep_matches_pointwise_analyze(grid):
    solver = SweepSolver(cache=None)
    for point in grid:
        net = _grid_net(*point)
        swept = solver.analyze(net)
        fresh = analyze(_grid_net(*point))
        _assert_identical(swept, fresh)
    assert solver.stats.skeleton_builds == 1
    assert solver.stats.points_retimed == len(grid) - 1
    assert solver.stats.mismatches == 0


def test_sweep_analyze_builder_grid_matches_pointwise():
    grid = [(0.5, 0.5, 4.0), (0.3, 0.7, 6.0), (0.9, 0.1, 12.0)]
    results = sweep_analyze(_grid_net, grid, cache=None)
    for point, swept in zip(grid, results):
        _assert_identical(swept, analyze(_grid_net(*point)))


def test_sweep_analyze_parallel_matches_pointwise():
    """The pooled path (workers return net-free payloads, the parent
    re-binds) must be bit-identical to per-point analysis."""
    grid = [(0.2 + 0.05 * i, 0.9 - 0.05 * i, 3.0 + i)
            for i in range(8)]
    results = sweep_analyze(_grid_net, grid, cache=None, jobs=2,
                            oversubscribe=True)
    for point, swept in zip(grid, results):
        _assert_identical(swept, analyze(_grid_net(*point)))


def test_object_retime_reuses_csr_plan_across_points():
    """The CSR replay plan (successor targets, program gather indices)
    is a pure function of the skeleton, so an object-path sweep must
    build it once on the first replay and reuse it for every later
    point of the same structure."""
    solver = SweepSolver(cache=None)
    for f2 in (0.3, 0.4, 0.5, 0.6):
        solver.analyze(_grid_net(0.5, f2, 3.0))
    assert solver.stats.skeleton_builds == 1
    assert solver.stats.points_retimed == 3
    assert solver.stats.csr_plans_built == 1
    assert solver.stats.csr_plan_reuses == 2


# ----------------------------------------------------------------------
# rebuild fallback: timing changes that invalidate the skeleton
# ----------------------------------------------------------------------

def _delay_net(d: int, f: float = 0.5) -> Net:
    net = Net("delays")
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    net.transition("Ta", delay=2, frequency=f,
                   inputs=[ready], outputs=[done])
    net.transition("Tb", delay=lambda ctx: d,
                   frequency=1.0 - f if f < 1.0 else 0.5,
                   inputs=[ready], outputs=[done])
    net.transition("loop", delay=1, inputs=[done], outputs=[ready],
                   resource="lambda")
    return net


def test_retime_rejects_changed_dynamic_delay():
    net = _delay_net(2)
    _graph, skeleton = traced_build(net)
    changed = _delay_net(3)
    assert fingerprint_net(changed).structure == \
        fingerprint_net(net).structure
    with pytest.raises(SkeletonMismatch):
        retime(skeleton, changed)


def test_retime_rejects_frequency_mask_flip():
    net = _grid_net(0.5, 0.5, 4.0)
    _graph, skeleton = traced_build(net)
    # Ta's frequency drops to zero: the conflict class resolves to a
    # different member set, so the recorded branches no longer apply
    with pytest.raises(SkeletonMismatch):
        retime(skeleton, _grid_net(0.0, 0.5, 4.0))


def test_solver_falls_back_to_rebuild_on_mismatch():
    solver = SweepSolver(cache=None)
    first = solver.analyze(_delay_net(2))
    second = solver.analyze(_delay_net(3))     # dynamic delay changed
    assert solver.stats.mismatches == 1
    assert solver.stats.skeleton_builds == 2
    _assert_identical(first, analyze(_delay_net(2)))
    _assert_identical(second, analyze(_delay_net(3)))
    # the rebuilt skeleton serves later points with the new timing
    third = solver.analyze(_delay_net(3))
    assert solver.stats.points_retimed == 1
    _assert_identical(third, second)
