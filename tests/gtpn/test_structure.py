"""Tests for GTPN structural analysis (incidence matrix, invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gtpn import Net, activity_pair
from repro.gtpn.structure import (check_invariant, incidence_matrix,
                                  invariant_value, is_connected,
                                  place_invariants,
                                  structural_deadlock_free_bound,
                                  to_networkx)
from repro.models import Architecture, Mode, build_local_net
from repro.models.nonlocal_client import build_nonlocal_client_net


def simple_cycle():
    net = Net("cycle")
    a = net.place("A", tokens=2)
    b = net.place("B")
    net.transition("go", delay=1, inputs=[a], outputs=[b])
    net.transition("back", delay=1, inputs=[b], outputs=[a])
    return net


class TestIncidenceMatrix:
    def test_shape_and_entries(self):
        net = simple_cycle()
        matrix = incidence_matrix(net)
        assert matrix.shape == (2, 2)
        # go: A-1, B+1 ; back: A+1, B-1
        assert matrix[0, 0] == -1 and matrix[1, 0] == 1
        assert matrix[0, 1] == 1 and matrix[1, 1] == -1

    def test_loop_transition_contributes_zero_column(self):
        net = Net()
        a = net.place("A", tokens=1)
        b = net.place("B")
        activity_pair(net, "act", 5.0, inputs=[a], outputs=[b])
        matrix = incidence_matrix(net)
        loop_col = matrix[:, net.transition_index("act.loop")]
        assert not loop_col.any()

    def test_arc_multiplicity_respected(self):
        net = Net()
        a = net.place("A", tokens=4)
        b = net.place("B")
        net.transition("t", delay=1, inputs={a: 3}, outputs={b: 2})
        matrix = incidence_matrix(net)
        assert matrix[0, 0] == -3
        assert matrix[1, 0] == 2


class TestInvariants:
    def test_simple_cycle_conserves_tokens(self):
        net = simple_cycle()
        invariants = place_invariants(net)
        assert {"A": 1, "B": 1} in invariants
        assert invariant_value(net, {"A": 1, "B": 1}) == 2

    def test_check_invariant_rejects_nonconserving(self):
        net = simple_cycle()
        assert not check_invariant(net, {"A": 1})
        assert check_invariant(net, {"A": 2, "B": 2})

    def test_architecture_model_invariants(self):
        """The arch II local net conserves Host, MP, and the number
        of conversations in the client pipeline."""
        net = build_local_net(Architecture.II, 3, 0.0)
        invariants = place_invariants(net)
        assert {"Host": 1} in invariants
        assert {"MP": 1} in invariants
        conversation = {"Clients": 1, "SendReq": 1, "MsgQueued": 1,
                        "ServerReady": 1, "ReplyReq": 1}
        assert check_invariant(net, conversation)
        assert invariant_value(net, conversation) == 3

    def test_every_basis_vector_is_an_invariant(self):
        for net in (simple_cycle(),
                    build_local_net(Architecture.I, 2),
                    build_local_net(Architecture.IV, 2),
                    build_nonlocal_client_net(Architecture.II, 2,
                                              3000.0)):
            for weights in place_invariants(net):
                assert check_invariant(net, weights), (net.name,
                                                       weights)

    def test_null_space_dimension_matches_numpy_rank(self):
        net = build_local_net(Architecture.III, 2)
        matrix = incidence_matrix(net)
        rank = np.linalg.matrix_rank(matrix.astype(float))
        expected = matrix.shape[0] - rank
        assert len(place_invariants(net)) == expected


class TestGraphView:
    def test_bipartite_structure(self):
        graph = to_networkx(simple_cycle())
        kinds = {data["kind"] for _n, data in graph.nodes(data=True)}
        assert kinds == {"place", "transition"}
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4

    def test_tokens_and_delay_attributes(self):
        graph = to_networkx(simple_cycle())
        assert graph.nodes["p:A"]["tokens"] == 2
        assert graph.nodes["t:go"]["delay"] == 1

    def test_architecture_models_connected(self):
        for arch in Architecture:
            assert is_connected(build_local_net(arch, 2)), arch

    def test_cycle_condition_on_models(self):
        for arch in Architecture:
            net = build_local_net(arch, 2)
            assert structural_deadlock_free_bound(net), arch

    def test_cycle_condition_detects_drain(self):
        net = Net()
        a = net.place("A", tokens=1)
        b = net.place("B")
        net.transition("drain", delay=1, inputs=[a], outputs=[b])
        # nothing returns tokens to A: fails the cycle condition
        assert not structural_deadlock_free_bound(net)


@settings(max_examples=8, deadline=None)
@given(st.integers(1, 3), st.integers(1, 2))
def test_property_invariants_hold_at_reachable_states(conversations,
                                                      hosts):
    """The conversation invariant holds in every reachable marking of
    the arch II local net, counting in-flight input tokens."""
    from repro.gtpn import build_reachability_graph
    net = build_local_net(Architecture.II, conversations, 0.0,
                          hosts=hosts)
    weights = {"Clients": 1, "SendReq": 1, "MsgQueued": 1,
               "ServerReady": 1, "ReplyReq": 1}
    graph = build_reachability_graph(net)
    for state in graph.states:
        total = sum(state.marking[net.place_index(name)] * weight
                    for name, weight in weights.items())
        # tokens held by in-flight firings count at their weights
        for t_idx, _remaining in state.inflight:
            t = net.transitions[t_idx]
            for p, n in t.inputs.items():
                total += n * weights.get(net.places[p].name, 0)
        assert total == conversations