"""Tests for the array-native packed GTPN engine (repro.gtpn.packed).

The contract under test: with ``reduction="none"`` the packed engine is
*bit-identical* to the historical object walk — same state order, same
sparse row dicts, same expected-start vectors, same stationary vector —
on nets covering multi-tick delays, immediate transitions, multi-token
places and conflict classes.  Plus the supporting machinery: the
pack/unpack round trip, the vectorized row interner, and the structured
state-space limit error.
"""

import numpy as np
import pytest

from repro.errors import StateSpaceLimitError
from repro.gtpn import Net, activity_pair
from repro.gtpn.markov import stationary_distribution
from repro.gtpn.packed import (_Interner, _unique_rows_first_seen,
                               compile_packed, packed_build,
                               packed_retime)
from repro.gtpn.reachability import _build_object_graph
from repro.models.local import build_local_net
from repro.models.params import Architecture


def _cycle_net() -> Net:
    """Multi-token place, delay >= 2, and a geometric activity pair."""
    net = Net("cycle")
    ready = net.place("Ready", tokens=2)
    done = net.place("Done")
    activity_pair(net, "serve", 10.0, inputs=[ready], outputs=[done],
                  resource="lambda")
    net.transition("recycle", delay=2, inputs=[done], outputs=[ready])
    return net


def _immediate_net() -> Net:
    """A zero-delay transition between two timed stages."""
    net = Net("imm")
    a = net.place("A", tokens=2)
    b = net.place("B")
    c = net.place("C")
    net.transition("go", delay=3, inputs=[a], outputs=[b])
    net.transition("hop", delay=0, inputs=[b], outputs=[c])
    net.transition("back", delay=1, inputs=[c], outputs=[a],
                   resource="lambda")
    return net


def _conflict_net() -> Net:
    """Two transitions competing for one token (a conflict class)."""
    net = Net("conflict")
    ready = net.place("Ready", tokens=1)
    left = net.place("Left")
    right = net.place("Right")
    done = net.place("Done")
    net.transition("tl", delay=1, frequency=0.25,
                   inputs=[ready], outputs=[left])
    net.transition("tr", delay=2, frequency=0.75,
                   inputs=[ready], outputs=[right])
    net.transition("jl", delay=3, inputs=[left], outputs=[done])
    net.transition("jr", delay=1, inputs=[right], outputs=[done])
    net.transition("loop", delay=1, inputs=[done], outputs=[ready],
                   resource="lambda")
    return net


NETS = [_cycle_net, _immediate_net, _conflict_net,
        lambda: build_local_net(Architecture.I, 2),
        lambda: build_local_net(Architecture.II, 2)]


def _assert_bit_identical(og, pg):
    assert og.states == pg.states
    assert og.probabilities == pg.probabilities
    assert og.initial == pg.initial
    assert all((a == b).all() for a, b in
               zip(og.expected_starts, pg.expected_starts))
    assert all(tuple(a) == tuple(b) for a, b in
               zip(og.inflight_counts, pg.inflight_counts))


@pytest.mark.parametrize("make", NETS, ids=lambda f: "net")
def test_packed_build_is_bit_identical_to_object_walk(make):
    net = make()
    og = _build_object_graph(net, 200_000)
    pnet = compile_packed(net)
    assert pnet is not None
    pg, _ = packed_build(net, pnet, max_states=200_000)
    _assert_bit_identical(og, pg)
    assert (stationary_distribution(og) == stationary_distribution(pg)).all()


@pytest.mark.parametrize("make", NETS, ids=lambda f: "net")
def test_packed_retime_is_bit_identical_to_packed_build(make):
    net = make()
    pg, skeleton = packed_build(net, compile_packed(net),
                                max_states=200_000)
    rg = packed_retime(skeleton, net, max_states=200_000)
    assert (rg.matrix != pg.matrix).nnz == 0
    assert (rg.init_vec == pg.init_vec).all()
    assert (rg.starts_matrix == pg.starts_matrix).all()
    assert (rg.inflight_matrix == pg.inflight_matrix).all()


def test_pack_unpack_round_trip():
    net = _cycle_net()
    pnet = compile_packed(net)
    graph, _ = packed_build(net, pnet, max_states=200_000)
    layout = graph.packed_layout
    for state, row in zip(graph.states, graph.packed_table):
        assert layout.unpack(row) == state
        assert (layout.pack(state) == row).all()
    assert layout.unpack_all(graph.packed_table) == graph.states


def test_interner_assigns_first_seen_ids_and_is_stable():
    rows = np.array([[1, 2], [3, 4], [1, 2], [5, 6], [3, 4]],
                    dtype=np.int32)
    interner = _Interner(2)
    ids = interner.intern(rows)
    assert ids.tolist() == [0, 1, 0, 2, 1]
    assert interner.n == 3
    assert (interner.table() == [[1, 2], [3, 4], [5, 6]]).all()
    # a second pass over known plus fresh rows keeps existing ids
    more = np.array([[5, 6], [7, 8], [1, 2]], dtype=np.int32)
    assert interner.intern(more).tolist() == [2, 3, 0]
    assert interner.n == 4


def test_unique_rows_first_seen_order():
    rows = np.array([[9, 9], [0, 1], [9, 9], [0, 1], [2, 2]],
                    dtype=np.int32)
    firsts, inverse = _unique_rows_first_seen(rows)
    assert firsts.tolist() == [0, 1, 4]
    assert inverse.tolist() == [0, 1, 0, 1, 2]


def test_state_space_limit_error_is_structured():
    net = build_local_net(Architecture.II, 3)
    with pytest.raises(StateSpaceLimitError) as exc_info:
        packed_build(net, compile_packed(net), max_states=100)
    error = exc_info.value
    assert error.net_name == net.name
    assert error.state_count > 100
    assert error.frontier_size > 0
    assert error.max_states == 100
    assert "reduction='lump'" in str(error)
    # the object walk raises the same structured error
    with pytest.raises(StateSpaceLimitError):
        _build_object_graph(net, 100)
