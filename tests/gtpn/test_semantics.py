"""Tests of the GTPN tick semantics (repro.gtpn.state)."""

import pytest

from repro.errors import AnalysisError
from repro.gtpn import Net, TickEngine
from repro.gtpn.state import ExhaustiveResolver, State


def branches_of(net, state=None):
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    if state is None:
        return engine.initial_branches(resolver)
    return engine.tick(state, resolver)


def test_single_timed_transition_starts_firing():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    net.transition("T", delay=1, inputs=[a], outputs=[b])
    (branch,) = branches_of(net)
    assert branch.probability == 1.0
    assert branch.state.marking == (0, 0)       # token removed at start
    assert branch.state.inflight == ((0, 1),)   # T firing, 1 tick left


def test_firing_deposits_outputs_next_tick():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    net.transition("T", delay=1, inputs=[a], outputs=[b])
    (first,) = branches_of(net)
    (second,) = branches_of(net, first.state)
    assert second.state.marking == (0, 1)
    assert second.state.inflight == ()


def test_multi_tick_delay_counts_down():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    net.transition("T", delay=3, inputs=[a], outputs=[b])
    (s1,) = branches_of(net)
    assert s1.state.inflight == ((0, 3),)
    (s2,) = branches_of(net, s1.state)
    assert s2.state.inflight == ((0, 2),)
    (s3,) = branches_of(net, s2.state)
    assert s3.state.inflight == ((0, 1),)
    (s4,) = branches_of(net, s3.state)
    assert s4.state.marking == (0, 1)
    assert s4.state.inflight == ()


def test_immediate_transition_fires_in_zero_time():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    net.transition("T", delay=0, inputs=[a], outputs=[b])
    (branch,) = branches_of(net)
    assert branch.state.marking == (0, 1)
    assert branch.starts == (1,)


def test_immediate_chain_reaches_quiescence_in_one_tick():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    c = net.place("C")
    net.transition("T0", delay=0, inputs=[a], outputs=[b])
    net.transition("T1", delay=0, inputs=[b], outputs=[c])
    (branch,) = branches_of(net)
    assert branch.state.marking == (0, 0, 1)


def test_unbounded_immediate_loop_detected():
    net = Net()
    a = net.place("A", tokens=1)
    net.transition("T", delay=0, inputs=[a], outputs=[a])
    with pytest.raises(AnalysisError):
        branches_of(net)


def test_conflict_probabilities_split_by_frequency():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    c = net.place("C")
    net.transition("T0", delay=1, frequency=0.25, inputs=[a], outputs=[b])
    net.transition("T1", delay=1, frequency=0.75, inputs=[a], outputs=[c])
    branches = branches_of(net)
    probs = {branch.state.inflight[0][0]: branch.probability
             for branch in branches}
    assert probs[0] == pytest.approx(0.25)
    assert probs[1] == pytest.approx(0.75)


def test_frequencies_normalized_over_enabled_subset():
    # T1 requires tokens from two places; only T0 is enabled, so it
    # fires with probability one despite its small raw frequency.
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B", tokens=0)
    c = net.place("C")
    net.transition("T0", delay=1, frequency=0.1, inputs=[a], outputs=[c])
    net.transition("T1", delay=1, frequency=0.9, inputs=[a, b], outputs=[c])
    (branch,) = branches_of(net)
    assert branch.probability == pytest.approx(1.0)
    assert branch.state.inflight == ((0, 1),)


def test_zero_frequency_transition_never_fires():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    net.transition("T", delay=1, frequency=0.0, inputs=[a], outputs=[b])
    (branch,) = branches_of(net)
    assert branch.state.marking == (1, 0)
    assert branch.state.inflight == ()


def test_independent_classes_fire_concurrently():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B", tokens=1)
    net.transition("TA", delay=1, inputs=[a], outputs=[a])
    net.transition("TB", delay=1, inputs=[b], outputs=[b])
    (branch,) = branches_of(net)
    assert branch.state.inflight == ((0, 1), (1, 1))


def test_infinite_server_fires_once_per_token():
    # Three tokens, no serializing resource: all three start firing.
    net = Net()
    a = net.place("A", tokens=3)
    b = net.place("B")
    net.transition("T", delay=1, inputs=[a], outputs=[b])
    (branch,) = branches_of(net)
    assert branch.state.inflight == ((0, 1), (0, 1), (0, 1))
    assert branch.starts == (3,)


def test_resource_place_serializes_firings():
    # Three clients but a single Host token: exactly one start per tick.
    net = Net()
    clients = net.place("Clients", tokens=3)
    host = net.place("Host", tokens=1)
    done = net.place("Done")
    net.transition("T", delay=1, inputs=[clients, host],
                   outputs=[done, host])
    (branch,) = branches_of(net)
    assert branch.starts == (1,)
    assert branch.state.marking[0] == 2   # two clients still waiting


def test_binomial_branching_of_independent_choices():
    # Two tokens each independently exit w.p. 1/2: outcomes 0, 1, 2
    # exits with probabilities 1/4, 1/2, 1/4.
    net = Net()
    wait = net.place("Wait", tokens=2)
    out = net.place("Out")
    net.transition("Exit", delay=1, frequency=0.5,
                   inputs=[wait], outputs=[out])
    net.transition("Stay", delay=1, frequency=0.5,
                   inputs=[wait], outputs=[wait])
    branches = branches_of(net)
    by_exits = {}
    for branch in branches:
        exits = branch.starts[0]
        by_exits[exits] = by_exits.get(exits, 0.0) + branch.probability
    assert by_exits[0] == pytest.approx(0.25)
    assert by_exits[1] == pytest.approx(0.5)
    assert by_exits[2] == pytest.approx(0.25)


def test_state_dependent_gate_inhibits_class():
    net = Net()
    a = net.place("A", tokens=1)
    gate = net.place("Gate", tokens=1)
    b = net.place("B")
    net.transition(
        "T", delay=1,
        frequency=lambda ctx: 1.0 if ctx.tokens("Gate") == 0 else 0.0,
        inputs=[a], outputs=[b])
    (branch,) = branches_of(net)
    assert branch.state.marking == (1, 1, 0)   # nothing moved
    assert gate.index == 1


def test_probabilities_sum_to_one_across_branches():
    net = Net()
    a = net.place("A", tokens=2)
    b = net.place("B")
    net.transition("T0", delay=1, frequency=0.3, inputs=[a], outputs=[b])
    net.transition("T1", delay=1, frequency=0.7, inputs=[a], outputs=[a])
    branches = branches_of(net)
    assert sum(branch.probability for branch in branches) == \
        pytest.approx(1.0)


def test_state_is_hashable_and_canonical():
    s1 = State(marking=(1, 0), inflight=((0, 1), (1, 2)))
    s2 = State(marking=(1, 0), inflight=((0, 1), (1, 2)))
    assert s1 == s2
    assert hash(s1) == hash(s2)
    assert s1.inflight_counts(3) == [1, 1, 0]
