"""Invariants of the tick engine guarding the memoized fast path.

The analyzer memoizes ``TickEngine.tick`` successor branches per state
(tick is deterministic under the exhaustive resolver), so these tests
pin down the properties the memo relies on: every state's branch
probabilities form a distribution, and repeated ticks of the same
state return identical branches.
"""

import pytest

from repro.gtpn import build_reachability_graph
from repro.gtpn.state import ExhaustiveResolver, TickEngine
from repro.models import (Architecture, build_local_net,
                          build_nonlocal_client_net,
                          build_nonlocal_server_net)


def _architecture_nets():
    for arch in Architecture:
        yield build_local_net(arch, 2, 500.0)
    yield build_nonlocal_client_net(Architecture.II, 2, 900.0)
    yield build_nonlocal_server_net(Architecture.II, 2, 1200.0, 0.0)


@pytest.mark.parametrize("net", _architecture_nets(),
                         ids=lambda net: net.name)
def test_branch_probabilities_sum_to_one_everywhere(net):
    graph = build_reachability_graph(net)
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    for state in graph.states:
        branches = engine.tick(state, resolver)
        total = sum(branch.probability for branch in branches)
        assert total == pytest.approx(1.0, abs=1e-9)
        for branch in branches:
            assert branch.probability > 0


@pytest.mark.parametrize("net", [build_local_net(Architecture.II, 2,
                                                 500.0)],
                         ids=lambda net: net.name)
def test_memoized_tick_reproduces_first_expansion(net):
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    [start] = [b.state for b in engine.initial_branches(resolver)][:1]
    first = engine.tick(start, resolver)
    again = engine.tick(start, resolver)
    assert len(first) == len(again)
    for a, b in zip(first, again):
        assert a.probability == b.probability
        assert a.state == b.state
        assert a.starts == b.starts
    # memoized lists are fresh containers: mutating one copy must not
    # leak into the next caller's view
    first.clear()
    assert len(engine.tick(start, resolver)) == len(again)
