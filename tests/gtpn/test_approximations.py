"""Tests for geometric-delay helpers and queueing identities."""

import pytest

from repro.errors import ModelError
from repro.gtpn import (Net, activity_pair, analyze, geometric_frequency,
                        littles_law_population, littles_law_residence)


def test_geometric_frequency_inverse_of_mean():
    assert geometric_frequency(100.0) == pytest.approx(0.01)


def test_geometric_frequency_rejects_sub_tick_mean():
    with pytest.raises(ModelError):
        geometric_frequency(0.5)


def test_activity_pair_creates_exit_and_loop():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    exit_t, loop_t = activity_pair(net, "act", 4.0, inputs=[a], outputs=[b])
    assert exit_t.name == "act"
    assert loop_t.name == "act.loop"
    assert exit_t.frequency == pytest.approx(0.25)
    assert loop_t.frequency == pytest.approx(0.75)
    # loop returns tokens to the inputs
    assert loop_t.outputs == loop_t.inputs


def test_activity_pair_mean_one_has_no_loop():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    exit_t, loop_t = activity_pair(net, "act", 1.0, inputs=[a], outputs=[b])
    assert exit_t is loop_t
    assert len(net.transitions) == 1


def test_activity_pair_holds_resource_places():
    net = Net()
    a = net.place("A", tokens=1)
    b = net.place("B")
    host = net.place("Host", tokens=1)
    exit_t, loop_t = activity_pair(net, "act", 4.0, inputs=[a], outputs=[b],
                                   holds=[host])
    assert exit_t.inputs[host.index] == 1
    assert exit_t.outputs[host.index] == 1
    assert loop_t.inputs[host.index] == 1


def test_gated_activity_pair_inhibited_by_context():
    net = Net()
    a = net.place("A", tokens=1)
    blocker = net.place("Blocker", tokens=1)
    b = net.place("B")
    activity_pair(net, "act", 2.0, inputs=[a], outputs=[b],
                  gate=lambda ctx: ctx.tokens("Blocker") == 0,
                  resource="lambda")
    # blocker present forever: throughput zero, net deadlocks benignly
    result = analyze(net)
    assert result.throughput() == pytest.approx(0.0, abs=1e-12)


def test_geometric_approximation_preserves_mean_throughput():
    """Figure 6.7: constant delay vs geometric approximation."""
    def build(kind):
        net = Net(kind)
        ready = net.place("Ready", tokens=1)
        done = net.place("Done")
        if kind == "constant":
            net.transition("serve", delay=20, inputs=[ready],
                           outputs=[done])
        else:
            activity_pair(net, "serve", 20.0, inputs=[ready],
                          outputs=[done])
        net.transition("T0", delay=1, inputs=[done], outputs=[ready],
                       resource="lambda")
        return analyze(net).throughput()

    assert build("constant") == pytest.approx(build("geometric"), rel=1e-9)


def test_littles_law_identities():
    assert littles_law_population(0.5, 10.0) == pytest.approx(5.0)
    assert littles_law_residence(5.0, 0.5) == pytest.approx(10.0)
    with pytest.raises(ModelError):
        littles_law_residence(5.0, 0.0)
