"""Property tests on randomly generated GTPNs.

Generates small random conservative nets (every transition consumes
and produces the same number of tokens) and checks engine-level
invariants: probability conservation, token conservation, and
analyzer/simulator agreement.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.gtpn import (Net, TickEngine, analyze, simulate)
from repro.gtpn.state import ExhaustiveResolver


@st.composite
def conservative_nets(draw):
    """A random strongly-conservative net (1 token in, 1 token out)."""
    n_places = draw(st.integers(2, 3))
    n_transitions = draw(st.integers(1, 3))
    tokens = draw(st.lists(st.integers(0, 1), min_size=n_places,
                           max_size=n_places))
    if sum(tokens) == 0:
        tokens[0] = 1
    net = Net("random")
    places = [net.place(f"P{i}", tokens=tokens[i])
              for i in range(n_places)]
    for t in range(n_transitions):
        source = draw(st.integers(0, n_places - 1))
        target = draw(st.integers(0, n_places - 1))
        frequency = draw(st.floats(0.1, 1.0))
        net.transition(f"T{t}", delay=draw(st.integers(1, 3)),
                       frequency=frequency,
                       inputs=[places[source]],
                       outputs=[places[target]])
    return net


@settings(max_examples=25, deadline=None)
@given(conservative_nets())
def test_property_branch_probabilities_sum_to_one(net):
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    branches = engine.initial_branches(resolver)
    assert sum(b.probability for b in branches) == pytest.approx(1.0)
    for branch in branches[:3]:
        successors = engine.tick(branch.state, resolver)
        assert sum(b.probability for b in successors) == \
            pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(conservative_nets())
def test_property_token_conservation(net):
    """1-in/1-out transitions conserve total tokens (marking +
    in-flight)."""
    total0 = sum(net.initial_marking)
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    frontier = [b.state for b in engine.initial_branches(resolver)]
    seen = set()
    for _ in range(30):
        if not frontier:
            break
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        total = sum(state.marking) + len(state.inflight)
        assert total == total0
        frontier.extend(b.state for b in engine.tick(state, resolver))


@settings(max_examples=5, deadline=None)
@given(conservative_nets(), st.integers(0, 2**16))
def test_property_analyzer_simulator_agree(net, seed):
    """For every resource-free random net, mean tokens per place agree
    between exact analysis and a long simulation."""
    try:
        exact = analyze(net, max_states=5_000)
    except Exception:
        return          # state-space blowup: out of scope here
    sampled = simulate(net, ticks=25_000, warmup=2_000, seed=seed)
    for place in net.places:
        a = exact.mean_tokens(place.name)
        s = sampled.mean_tokens(place.name)
        assert s == pytest.approx(a, abs=max(0.1, 0.15 * max(a, 1.0)))


@settings(max_examples=15, deadline=None)
@given(conservative_nets())
def test_property_stationary_distribution_normalized(net):
    try:
        result = analyze(net, max_states=5_000)
    except AnalysisError:
        return          # reducible chain: no unique stationary solution
    assert result.pi.sum() == pytest.approx(1.0)
    assert (result.pi >= -1e-12).all()


def test_reducible_chain_is_refused():
    """Two disjoint closed classes: the analyzer must refuse rather
    than return one of the infinitely many stationary solutions (a
    simulated sample path settles into a single class, so any mixture
    would silently disagree — this was a latent property-test flake)."""
    net = Net("reducible")
    start = net.place("Start", tokens=1)
    left = net.place("Left")
    right = net.place("Right")
    net.transition("TL", delay=1, frequency=0.5,
                   inputs=[start], outputs=[left])
    net.transition("TR", delay=1, frequency=0.5,
                   inputs=[start], outputs=[right])
    net.transition("LoopL", delay=1, frequency=1.0,
                   inputs=[left], outputs=[left])
    net.transition("LoopR", delay=2, frequency=1.0,
                   inputs=[right], outputs=[right])
    with pytest.raises(AnalysisError, match="reducible"):
        analyze(net, max_states=5_000)
