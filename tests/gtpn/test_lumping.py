"""Tests for exact symmetry lumping (reduction="lump").

The contract under test: on a net with declared replica symmetry the
lumped chain is a strongly-lumpable quotient, so every steady-state
measure — throughput, per-pool busy fractions, per-transition firing
rates (orbit-averaged) — agrees with the unlumped exact solve to
far better than 1e-9, while the state space shrinks.  Plus the
declaration-time validation: ``declare_symmetry`` must reject
malformed groups rather than let an inexact fold through.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.gtpn import Net, analyze
from repro.models.params import Architecture
from repro.models.symmetric import build_replicated_local_net
from repro.perf import set_cache_enabled

TOL = 1e-9


@pytest.fixture(autouse=True)
def _cache_off():
    set_cache_enabled(False)
    yield
    set_cache_enabled(True)


def _operating_points():
    return st.one_of(
        st.tuples(st.just(Architecture.I), st.integers(2, 3),
                  st.sampled_from([0.0, 5.0, 17.0])),
        st.tuples(st.just(Architecture.II), st.just(2),
                  st.sampled_from([0.0, 5.0])))


@settings(max_examples=8, deadline=None)
@given(_operating_points())
def test_lumped_measures_match_unlumped(point):
    architecture, conversations, compute = point
    exact = analyze(build_replicated_local_net(
        architecture, conversations, compute), reduction="none")
    lumped = analyze(build_replicated_local_net(
        architecture, conversations, compute), reduction="lump")
    assert lumped.state_count < exact.state_count
    assert lumped.graph.reduction.lumped
    assert abs(lumped.throughput() - exact.throughput()) < TOL
    net = exact.net
    for place in net.places:
        if place.initial_tokens > 0:
            assert abs(lumped.busy_fraction(place.name)
                       - exact.busy_fraction(place.name)) < TOL
    for transition in net.transitions:
        assert abs(lumped.firing_rate(transition.name)
                   - exact.firing_rate(transition.name)) < TOL


def test_lumped_quotient_shrinks_by_replica_permutations():
    net = build_replicated_local_net(Architecture.I, 3)
    exact = analyze(build_replicated_local_net(Architecture.I, 3),
                    reduction="none")
    lumped = analyze(net, reduction="lump")
    # 3 interchangeable replicas: the quotient can fold up to 3! states
    # onto one representative and never fewer than 1
    assert exact.state_count / 6 <= lumped.state_count
    assert lumped.state_count < exact.state_count
    info = lumped.graph.reduction
    assert len(info.place_orbits[0]) == 3
    assert len(info.transition_orbits[0]) == 3
    assert info.folded_states > 0


def test_replicated_net_matches_pooled_throughput():
    """The replicated form describes the same system as the pooled
    chapter-6 local model; with a single host their throughputs agree
    closely (the pooling is itself an exact counter abstraction of
    the same underlying chain)."""
    from repro.models.local import build_local_net
    pooled = analyze(build_local_net(Architecture.I, 2))
    replicated = analyze(build_replicated_local_net(Architecture.I, 2),
                         reduction="lump")
    assert replicated.throughput() == pytest.approx(
        pooled.throughput(), rel=1e-12)


def _pair_net():
    net = Net("pair")
    host = net.place("Host", tokens=1)
    a0 = net.place("A0", tokens=1)
    a1 = net.place("A1", tokens=1)
    b0 = net.place("B0")
    b1 = net.place("B1")
    net.transition("t0", delay=2, inputs=[a0], outputs=[b0],
                   extra_resources=["host"])
    net.transition("t1", delay=2, inputs=[a1], outputs=[b1],
                   extra_resources=["host"])
    net.transition("r0", delay=1, inputs=[b0], outputs=[a0],
                   resource="lambda")
    net.transition("r1", delay=1, inputs=[b1], outputs=[a1],
                   resource="lambda")
    return net, host


def test_declare_symmetry_rejects_single_member():
    net, _ = _pair_net()
    with pytest.raises(ModelError, match="at least 2"):
        net.declare_symmetry([(["A0", "B0"], ["t0", "r0"])])


def test_declare_symmetry_rejects_misaligned_lists():
    net, _ = _pair_net()
    with pytest.raises(ModelError, match="aligned"):
        net.declare_symmetry([(["A0", "B0"], ["t0", "r0"]),
                              (["A1"], ["t1", "r1"])])


def test_declare_symmetry_rejects_overlapping_members():
    net, _ = _pair_net()
    with pytest.raises(ModelError, match="overlap"):
        net.declare_symmetry([(["A0", "B0"], ["t0", "r0"]),
                              (["A0", "B1"], ["t1", "r1"])])


def test_declare_symmetry_rejects_non_automorphism():
    net = Net("asym")
    a0 = net.place("A0", tokens=1)
    a1 = net.place("A1", tokens=2)   # different initial marking
    b0 = net.place("B0")
    b1 = net.place("B1")
    net.transition("t0", delay=2, inputs=[a0], outputs=[b0])
    net.transition("t1", delay=2, inputs=[a1], outputs=[b1])
    with pytest.raises(ModelError, match="not a symmetry"):
        net.declare_symmetry([(["A0", "B0"], ["t0"]),
                              (["A1", "B1"], ["t1"])])


def test_declare_symmetry_rejects_mismatched_delay():
    net = Net("delays")
    a0 = net.place("A0", tokens=1)
    a1 = net.place("A1", tokens=1)
    b0 = net.place("B0")
    b1 = net.place("B1")
    net.transition("t0", delay=2, inputs=[a0], outputs=[b0])
    net.transition("t1", delay=3, inputs=[a1], outputs=[b1])
    with pytest.raises(ModelError, match="delay"):
        net.declare_symmetry([(["A0", "B0"], ["t0"]),
                              (["A1", "B1"], ["t1"])])
