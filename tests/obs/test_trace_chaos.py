"""A traced chaos run reconciles: the simulator's per-processor busy
time derived from the kernel.work span stream matches the authoritative
busy_by_label ledger events, per (processor, label)."""

from __future__ import annotations

import json
import math

import pytest

from repro import api, obs
from repro.obs.export import read_jsonl, validate_jsonl


@pytest.fixture(scope="module")
def traced_chaos(tmp_path_factory):
    target = tmp_path_factory.mktemp("chaos") / "chaos.json"
    result = api.run_experiment("chaos-outage", trace=target)
    return result


def test_trace_files_exist_and_validate(traced_chaos):
    chrome, jsonl = traced_chaos.trace_paths
    assert validate_jsonl(jsonl)["schema"].startswith("repro.obs/")
    loaded = json.loads(open(chrome).read())
    assert loaded["traceEvents"]


def test_busy_reconciliation(traced_chaos):
    _, jsonl = traced_chaos.trace_paths
    _, records = read_jsonl(jsonl)
    work: dict[tuple[str, str], float] = {}
    ledger: dict[tuple[str, str], float] = {}
    for record in records:
        if record["type"] != "event":
            continue
        attrs = record["attrs"]
        if record["name"] == obs.SIM_WORK_EVENT:
            key = (attrs["processor"], attrs["label"])
            work[key] = work.get(key, 0.0) + attrs["duration_us"]
        elif record["name"] == "kernel.busy_by_label":
            ledger[(attrs["processor"], attrs["label"])] = \
                attrs["busy_us"]
    assert work, "traced chaos run produced no kernel.work events"
    assert set(work) == set(ledger)
    for key, busy in ledger.items():
        assert math.isclose(work[key], busy, rel_tol=1e-6), \
            f"{key}: work stream {work[key]} != ledger {busy}"


def test_transport_counters_present(traced_chaos):
    summary = traced_chaos.obs_summary
    counters = summary["counters"]
    assert counters.get("ipc.send", 0) > 0
    # the outage plan forces losses, so the protocol retransmits
    assert counters.get("transport.retransmission", 0) > 0
