"""Self-enforcing lint: time.perf_counter() may only appear inside
repro.obs — every other timing site must use repro.obs.clock.perf_now
so traces and benchmarks share one clock."""

from __future__ import annotations

from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SCAN_DIRS = ("src", "benchmarks", "tests")
ALLOWED_PREFIX = Path("src/repro/obs")


def test_perf_counter_only_inside_obs():
    offenders = []
    for top in SCAN_DIRS:
        for path in (REPO / top).rglob("*.py"):
            rel = path.relative_to(REPO)
            if ALLOWED_PREFIX in rel.parents or rel == ALLOWED_PREFIX:
                continue
            if rel == Path(__file__).resolve().relative_to(REPO):
                continue
            text = path.read_text()
            for lineno, line in enumerate(text.splitlines(), 1):
                if "perf_counter" in line:
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "time.perf_counter() used outside repro.obs — use "
        "repro.obs.clock.perf_now instead:\n" + "\n".join(offenders))
