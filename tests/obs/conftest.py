"""Isolation for the observability tests: no recorder or CLI override
installed by one test may leak into the next (or into the rest of the
suite)."""

from __future__ import annotations

import pytest

from repro import config, obs


@pytest.fixture(autouse=True)
def _clean_obs_and_config():
    config.reset()
    obs.uninstall()
    yield
    config.reset()
    obs.uninstall()
