"""The bit-identity contract: tracing never changes computed values.

Figures and tables must be bit-identical whether a recorder is
installed or not — the observability layer only reads clocks and
appends records.
"""

from __future__ import annotations

from repro import obs
from repro.experiments.figures import figure_6_7
from repro.experiments.tables import table_5_1
from repro.faults.chaos import outage_recovery_table
from repro.gtpn import analyze
from repro.models import Architecture, build_local_net
from repro.perf.cache import AnalysisCache


def test_exact_solve_bit_identical_under_tracing():
    plain = analyze(build_local_net(Architecture.II, 2, 500.0),
                    cache=AnalysisCache())
    with obs.recording():
        traced = analyze(build_local_net(Architecture.II, 2, 500.0),
                         cache=AnalysisCache())
    assert traced.throughput() == plain.throughput()
    assert (traced.pi == plain.pi).all()
    assert traced.state_count == plain.state_count


def test_figure_values_bit_identical_under_tracing():
    plain = figure_6_7()
    with obs.recording() as recorder:
        traced = figure_6_7()
    assert [s.y for s in traced.series] == [s.y for s in plain.series]
    assert [s.x for s in traced.series] == [s.x for s in plain.series]
    assert recorder.record_count > 0      # the run *was* observed


def test_table_rows_bit_identical_under_tracing():
    plain = table_5_1()
    with obs.recording():
        traced = table_5_1()
    assert traced.rows == plain.rows


def test_kernel_simulation_bit_identical_under_tracing():
    plain = outage_recovery_table(seed=11)
    with obs.recording() as recorder:
        traced = outage_recovery_table(seed=11)
    assert traced.rows == plain.rows
    assert traced.notes == plain.notes
    # and the traced run recorded the simulator's work stream
    assert any(e.name == obs.SIM_WORK_EVENT for e in recorder.events)
