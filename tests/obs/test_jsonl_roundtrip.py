"""JSONL schema round-trip, validation, and the Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ReproError
from repro.obs.export import (SIM_PID, chrome_trace, read_jsonl,
                              validate_jsonl, write_chrome_trace,
                              write_jsonl)
from repro.obs.recorder import SCHEMA_VERSION, Recorder


def _recorded() -> Recorder:
    with obs.recording() as recorder:
        with obs.span("outer", kind="test"):
            with obs.span("inner"):
                obs.add("hits", 2.0)
        obs.gauge("depth", 4.0)
        obs.event("milestone", detail="x")
        recorder.sim_work("node0.host", "syscall send", 5.0, 10.0,
                          False)
    return recorder


class TestJsonl:
    def test_roundtrip_preserves_every_record(self, tmp_path):
        recorder = _recorded()
        path = write_jsonl(recorder, tmp_path / "trace.jsonl",
                           {"jobs": 1, "seed": None})
        header, records = read_jsonl(path)
        assert header["schema"] == SCHEMA_VERSION
        assert header["config"] == {"jobs": 1, "seed": None}
        by_type: dict[str, list] = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert len(by_type["span"]) == 2
        assert len(by_type["event"]) == 2      # milestone + kernel.work
        assert {r["name"]: r["value"] for r in by_type["counter"]} \
            == {"hits": 2.0}
        assert {r["name"]: r["value"] for r in by_type["gauge"]} \
            == {"depth": 4.0}
        # a merge of the read records reproduces the recorder
        clone = Recorder()
        clone.merge(records)
        assert clone.counters == recorder.counters
        assert [s.name for s in clone.spans] \
            == [s.name for s in recorder.spans]

    def test_validate_accepts_written_trace(self, tmp_path):
        path = write_jsonl(_recorded(), tmp_path / "ok.jsonl")
        assert validate_jsonl(path)["schema"] == SCHEMA_VERSION

    def test_validate_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "schema": "repro.obs/0"}) + "\n")
        with pytest.raises(ReproError, match="schema"):
            validate_jsonl(path)

    def test_validate_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "header",
                        "schema": SCHEMA_VERSION}) + "\n"
            + json.dumps({"type": "span", "name": "broken"}) + "\n")
        with pytest.raises(ReproError, match="missing"):
            validate_jsonl(path)

    def test_validate_rejects_header_less_file(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text(json.dumps(
            {"type": "counter", "name": "x", "value": 1}) + "\n")
        with pytest.raises(ReproError, match="header"):
            validate_jsonl(path)


class TestChromeTrace:
    def test_trace_loads_and_partitions_time_domains(self, tmp_path):
        recorder = _recorded()
        path = write_chrome_trace(recorder, tmp_path / "trace.json",
                                  {"jobs": 1})
        loaded = json.loads(path.read_text())
        events = loaded["traceEvents"]
        wall = [e for e in events if e.get("cat") == "wall"]
        sim = [e for e in events if e.get("cat") == "sim"]
        assert {e["name"] for e in wall} == {"outer", "inner"}
        assert all(e["pid"] == recorder.pid for e in wall)
        # sim-time work lands on the synthetic sim pid, in sim us
        (work,) = sim
        assert work["pid"] == SIM_PID
        assert work["ts"] == 5.0 and work["dur"] == 10.0
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        assert loaded["otherData"]["schema"] == SCHEMA_VERSION
        assert loaded["otherData"]["counters"] == {"hits": 2.0}
        assert loaded["otherData"]["config"] == {"jobs": 1}

    def test_span_durations_are_non_negative(self):
        trace = chrome_trace(_recorded())
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0
