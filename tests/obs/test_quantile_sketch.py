"""QuantileSketch: the declared error bound is a real guarantee."""

import math
import random

import pytest

from repro.errors import ReproError
from repro.obs.metrics import QuantileSketch


def exact_quantile(values, q):
    """Nearest-rank quantile, the definition the sketch approximates."""
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    if q == 1.0:
        return ordered[-1]
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


@pytest.mark.parametrize("distribution", ["uniform", "lognormal",
                                          "pareto", "exponential"])
@pytest.mark.parametrize("eps", [0.01, 0.05])
def test_error_bound_holds_against_exact_quantiles(distribution, eps):
    rng = random.Random(20_260_807)
    draw = {
        "uniform": lambda: rng.uniform(0.001, 5_000.0),
        "lognormal": lambda: rng.lognormvariate(3.0, 2.0),
        "pareto": lambda: rng.paretovariate(1.3),
        "exponential": lambda: rng.expovariate(0.01),
    }[distribution]
    values = [draw() for _ in range(20_000)]
    sketch = QuantileSketch(eps)
    for value in values:
        sketch.add(value)
    for q in (0.01, 0.10, 0.50, 0.90, 0.99, 0.999):
        exact = exact_quantile(values, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) <= eps * exact * (1 + 1e-12), \
            (distribution, q, exact, estimate)


def test_extremes_are_exact():
    sketch = QuantileSketch()
    for value in (3.0, 9.5, 0.25, 7.0):
        sketch.add(value)
    assert sketch.quantile(0.0) == 0.25
    assert sketch.quantile(1.0) == 9.5
    assert sketch.minimum == 0.25
    assert sketch.maximum == 9.5


def test_mean_is_exact():
    sketch = QuantileSketch()
    values = [1.5, 2.5, 100.0, 0.0]
    for value in values:
        sketch.add(value)
    assert sketch.mean() == sum(values) / len(values)


def test_zero_bin_collects_nonpositive_values():
    sketch = QuantileSketch()
    for value in (0.0, -1.0, 0.0, 5.0):
        sketch.add(value)
    assert sketch.quantile(0.5) == 0.0       # 3 of 4 are <= 0
    assert sketch.quantile(0.99) == pytest.approx(5.0, rel=0.01)
    assert sketch.count == 4


def test_memory_is_bounded_by_bins_not_samples():
    sketch = QuantileSketch(0.01)
    rng = random.Random(1)
    for _ in range(200_000):
        sketch.add(rng.expovariate(0.001))
    assert sketch.count == 200_000
    # twelve decades fit in a few thousand bins at 1% error; an
    # exponential's realistic range needs far fewer
    assert sketch.bin_count < 1_000


def test_merge_is_exact_and_order_independent():
    rng = random.Random(7)
    values = [rng.lognormvariate(2.0, 1.5) for _ in range(5_000)]
    whole = QuantileSketch()
    for value in values:
        whole.add(value)
    left, right = QuantileSketch(), QuantileSketch()
    for value in values[:2_000]:
        left.add(value)
    for value in values[2_000:]:
        right.add(value)
    left.merge(right)
    assert left.signature() == whole.signature()
    assert left.mean() == pytest.approx(whole.mean())
    assert left.minimum == whole.minimum
    assert left.maximum == whole.maximum

    shuffled = QuantileSketch()
    reordered = list(values)
    rng.shuffle(reordered)
    for value in reordered:
        shuffled.add(value)
    assert shuffled.signature() == whole.signature()


def test_merge_rejects_mismatched_error_bounds():
    with pytest.raises(ReproError, match="error bounds"):
        QuantileSketch(0.01).merge(QuantileSketch(0.02))


def test_empty_sketch_queries_are_loud():
    sketch = QuantileSketch()
    for query in (lambda: sketch.quantile(0.5), sketch.mean,
                  lambda: sketch.minimum, lambda: sketch.maximum):
        with pytest.raises(ReproError, match="empty sketch"):
            query()


def test_parameter_validation():
    with pytest.raises(ReproError, match="relative_error"):
        QuantileSketch(0.0)
    with pytest.raises(ReproError, match="relative_error"):
        QuantileSketch(1.0)
    sketch = QuantileSketch()
    sketch.add(1.0)
    with pytest.raises(ReproError, match="quantile"):
        sketch.quantile(1.5)
    with pytest.raises(ReproError, match="percentile"):
        sketch.percentile(150.0)


def test_percentile_is_quantile_scaled():
    sketch = QuantileSketch()
    for value in range(1, 101):
        sketch.add(float(value))
    assert sketch.percentile(99.0) == sketch.quantile(0.99)
