"""The front-door API: parity with legacy paths, config scoping,
deprecation of the old entry point."""

from __future__ import annotations

import pytest

from repro import api, config
from repro.experiments import registry

#: Cheap registered experiments covering table and figure kinds.
PARITY_IDS = ("figure-6.7", "table-5.1", "table-3.1")


class TestRunExperiment:
    @pytest.mark.parametrize("experiment_id", PARITY_IDS)
    def test_parity_with_direct_runner(self, experiment_id):
        direct = registry.get_experiment(experiment_id).run()
        result = api.run_experiment(experiment_id)
        assert result.experiment_id == experiment_id
        assert result.artifact.experiment_id == direct.experiment_id
        if hasattr(direct, "rows"):
            assert result.artifact.rows == direct.rows
            assert result.values == [list(r) for r in direct.rows]
        else:
            assert [s.y for s in result.artifact.series] \
                == [s.y for s in direct.series]
            assert set(result.values) == {s.label for s in direct.series}

    def test_result_carries_config_and_timing(self):
        result = api.run_experiment("table-5.1", jobs=3, seed=99,
                                    cache=False)
        assert result.config["jobs"] == 3
        assert result.config["jobs_source"] == "cli"
        assert result.config["seed"] == 99
        assert result.config["cache_enabled"] is False
        assert result.elapsed_s >= 0.0
        assert result.obs_summary is None          # untraced run
        assert result.trace_paths == ()
        assert result.render() == result.artifact.render()

    def test_overrides_do_not_leak(self):
        api.run_experiment("table-5.1", jobs=5, seed=123, cache=False)
        assert config.jobs() == 1
        assert config.seed() is None
        assert config.cache_enabled() is True

    def test_attach_extra_rides_on_result(self):
        from repro.experiments.registry import Experiment, REGISTRY
        from repro.experiments.reporting import Table

        def runner():
            api.attach_extra("payload", {"x": 1})
            return Table(experiment_id="extra-test", title="t",
                         headers=["a"], rows=[[1]])

        REGISTRY["extra-test"] = Experiment(
            "extra-test", "t", "table", runner)
        try:
            result = api.run_experiment("extra-test")
        finally:
            REGISTRY.pop("extra-test")
        assert result.extras == {"payload": {"x": 1}}

    def test_attach_extra_outside_run_is_noop(self):
        api.attach_extra("orphan", 1)       # silently ignored
        result = api.run_experiment("table-5.1")
        assert "orphan" not in result.extras

    def test_trace_writes_both_exports(self, tmp_path):
        target = tmp_path / "run.json"
        result = api.run_experiment("figure-6.7", trace=target)
        chrome, jsonl = result.trace_paths
        assert chrome.endswith("run.json")
        assert jsonl.endswith("run.jsonl")
        from repro.obs.export import validate_jsonl
        header = validate_jsonl(jsonl)
        assert header["config"]["jobs"] == 1
        summary = result.obs_summary
        assert any(s["name"] == "experiment:figure-6.7"
                   for s in summary["top_spans"])

    def test_jsonl_trace_argument_flips_targets(self, tmp_path):
        result = api.run_experiment("table-5.1",
                                    trace=tmp_path / "run.jsonl")
        chrome, jsonl = result.trace_paths
        assert chrome.endswith("run.json")
        assert jsonl.endswith("run.jsonl")

    def test_unknown_id_still_raises_with_hint(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="unknown experiment"):
            api.run_experiment("figure-9.99")


class TestSubmitExperiment:
    """API parity: ``submit_experiment(...).result()`` must produce
    byte-identical ``ExperimentResult`` fields to ``run_experiment``
    (everything except wall-clock timing)."""

    @staticmethod
    def _assert_field_parity(async_result, inline_result):
        assert async_result.experiment_id == inline_result.experiment_id
        assert async_result.kind == inline_result.kind
        assert async_result.title == inline_result.title
        assert async_result.values == inline_result.values
        assert async_result.config == inline_result.config
        assert async_result.extras == inline_result.extras
        assert async_result.trace_paths == inline_result.trace_paths
        assert async_result.obs_summary == inline_result.obs_summary

    def test_parity_on_figure(self):
        from repro.service import ExperimentService
        service = ExperimentService()
        try:
            handle = api.submit_experiment("figure-6.7", seed=7,
                                           service=service)
            async_result = handle.result(timeout=120)
        finally:
            service.shutdown()
        inline_result = api.run_experiment("figure-6.7", seed=7)
        self._assert_field_parity(async_result, inline_result)

    def test_parity_on_seeded_chaos_run(self):
        from repro.service import ExperimentService
        service = ExperimentService()
        try:
            handle = api.submit_experiment("chaos-outage", seed=11,
                                           service=service)
            async_result = handle.result(timeout=300)
        finally:
            service.shutdown()
        inline_result = api.run_experiment("chaos-outage", seed=11)
        self._assert_field_parity(async_result, inline_result)

    def test_run_experiment_is_inline_submit(self):
        from repro.service import default_service
        before = default_service().stats()["inline"]
        api.run_experiment("table-5.1")
        stats = default_service().stats()
        assert stats["inline"] == before + 1
        # the inline lane bypasses queue and store
        assert stats["queue_depth"] == 0

    def test_submit_rejects_unknown_experiment_at_execution(self):
        from repro.errors import ReproError
        from repro.service import ExperimentService
        service = ExperimentService()
        try:
            handle = api.submit_experiment("figure-9.99",
                                           service=service)
            with pytest.raises(ReproError, match="unknown experiment"):
                handle.result(timeout=120)
        finally:
            service.shutdown()


class TestLegacyShim:
    @pytest.mark.parametrize("experiment_id", PARITY_IDS)
    def test_legacy_run_experiment_deprecated_but_identical(
            self, experiment_id):
        fresh = api.run_experiment(experiment_id).artifact
        with pytest.deprecated_call():
            legacy = registry.run_experiment(experiment_id)
        if hasattr(fresh, "rows"):
            assert legacy.rows == fresh.rows
        else:
            assert [s.y for s in legacy.series] \
                == [s.y for s in fresh.series]
