"""Config precedence: CLI > env > default, in one place."""

from __future__ import annotations

import pytest

from repro import config
from repro.errors import ConfigError


class TestJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert config.jobs() == 1
        assert config.resolved_config().jobs_source == "default"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert config.jobs() == 4
        assert config.resolved_config().jobs_source == "env"

    def test_cli_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        config.set_jobs(2)
        assert config.jobs() == 2
        assert config.resolved_config().jobs_source == "cli"

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(ConfigError):
            config.jobs()

    def test_invalid_cli_value_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            config.set_jobs(0)


class TestSeed:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert config.seed() is None

    def test_env_seed_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        assert config.seed() == 7
        assert config.resolved_config().seed_source == "env"

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        config.set_seed(13)
        assert config.seed() == 13
        assert config.resolved_config().seed_source == "cli"

    def test_malformed_env_seed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "not-an-int")
        with pytest.raises(ValueError, match="REPRO_SEED"):
            config.seed()


class TestCache:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert config.cache_enabled() is True

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert config.cache_enabled() is False

    def test_cli_kill_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        config.set_cache_enabled(False)
        assert config.cache_enabled() is False

    def test_either_switch_disables(self, monkeypatch):
        # CLI True cannot re-enable past the env kill switch: a cache
        # disabled anywhere stays disabled.
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        config.set_cache_enabled(True)
        assert config.cache_enabled() is False

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert config.cache_dir() == str(tmp_path / "c")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert config.cache_dir() is None


class TestSnapshot:
    def test_resolved_config_snapshot(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_SEED", raising=False)
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        config.set_jobs(3)
        snap = config.resolved_config()
        assert snap.jobs == 3
        assert snap.jobs_source == "cli"
        assert snap.seed is None and snap.seed_source == "default"
        assert snap.cache_enabled is True
        d = snap.as_dict()
        assert d["jobs"] == 3 and d["jobs_source"] == "cli"

    def test_overrides_scope_and_restore(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        config.set_jobs(2)
        with config.overrides(jobs=5, seed=42, cache_enabled=False):
            assert config.jobs() == 5
            assert config.seed() == 42
            assert config.cache_enabled() is False
        assert config.jobs() == 2
        assert config.seed() is None
        assert config.cache_enabled() is True

    def test_overrides_restore_on_exception(self):
        config.set_seed(1)
        with pytest.raises(RuntimeError):
            with config.overrides(seed=99):
                raise RuntimeError("boom")
        assert config.seed() == 1

    def test_reset_clears_cli_state(self):
        config.set_jobs(8)
        config.set_seed(5)
        config.set_cache_enabled(False)
        config.reset()
        assert config.resolved_config().jobs_source != "cli"
        assert config.resolved_config().seed_source != "cli"


class TestTrafficKnobs:
    """--duration/--arrival-rate/--deadline/--queue-limit: same
    CLI > env > default contract as every other knob, loud on junk."""

    KNOBS = [
        ("duration", config.set_duration, config.duration,
         "REPRO_DURATION", "250000", 250_000.0),
        ("arrival_rate", config.set_arrival_rate, config.arrival_rate,
         "REPRO_ARRIVAL_RATE", "0.5", 0.5),
        ("deadline", config.set_deadline, config.deadline,
         "REPRO_DEADLINE", "4000", 4_000.0),
        ("queue_limit", config.set_queue_limit, config.queue_limit,
         "REPRO_QUEUE_LIMIT", "16", 16),
    ]

    def test_default_is_none(self, monkeypatch):
        for _, _, getter, env, _, _ in self.KNOBS:
            monkeypatch.delenv(env, raising=False)
            assert getter() is None

    def test_env_and_cli_precedence(self, monkeypatch):
        for name, setter, getter, env, raw, parsed in self.KNOBS:
            monkeypatch.setenv(env, raw)
            assert getter() == parsed
            snapshot = config.resolved_config()
            assert getattr(snapshot, f"{name}_source") == "env"
            setter(raw)
            assert getter() == parsed
            snapshot = config.resolved_config()
            assert getattr(snapshot, f"{name}_source") == "cli"

    @pytest.mark.parametrize("bad", ["banana", "-1", "0", "nan", "inf",
                                     ""])
    def test_cli_junk_rejected_eagerly(self, bad):
        for _, setter, _, _, _, _ in self.KNOBS:
            with pytest.raises(ConfigError):
                setter(bad)

    def test_malformed_env_raises_with_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURATION", "soon")
        with pytest.raises(ConfigError, match="REPRO_DURATION"):
            config.duration()
        monkeypatch.setenv("REPRO_QUEUE_LIMIT", "2.5")
        with pytest.raises(ConfigError, match="REPRO_QUEUE_LIMIT"):
            config.queue_limit()

    def test_queue_limit_is_integral(self):
        with pytest.raises(ConfigError):
            config.set_queue_limit("3.7")
        config.set_queue_limit("12")
        assert config.queue_limit() == 12

    def test_error_names_the_flag(self):
        with pytest.raises(ConfigError, match="arrival-rate"):
            config.set_arrival_rate("fast")
        with pytest.raises(ConfigError, match="queue-limit"):
            config.set_queue_limit("-3")

    def test_snapshot_carries_values_and_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "9000")
        config.set_duration("100000")
        snapshot = config.resolved_config()
        assert snapshot.duration_us == 100_000.0
        assert snapshot.duration_source == "cli"
        assert snapshot.deadline_us == 9_000.0
        assert snapshot.deadline_source == "env"
        assert snapshot.arrival_rate_per_ms is None
        assert snapshot.arrival_rate_source == "default"
        payload = snapshot.as_dict()
        assert payload["duration_source"] == "cli"
        assert payload["deadline_us"] == 9_000.0

    def test_overrides_scope_traffic_knobs(self):
        with config.overrides(duration=50_000, arrival_rate=0.25,
                              deadline=2_000, queue_limit=8):
            assert config.duration() == 50_000.0
            assert config.arrival_rate() == 0.25
            assert config.deadline() == 2_000.0
            assert config.queue_limit() == 8
        for _, _, getter, _, _, _ in self.KNOBS:
            assert getter() is None

    def test_reset_clears_traffic_knobs(self):
        config.set_duration("1000")
        config.set_queue_limit("4")
        config.reset()
        assert config.duration() is None
        assert config.queue_limit() is None
