"""Config precedence: CLI > env > default, in one place."""

from __future__ import annotations

import pytest

from repro import config
from repro.errors import ConfigError


class TestJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert config.jobs() == 1
        assert config.resolved_config().jobs_source == "default"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert config.jobs() == 4
        assert config.resolved_config().jobs_source == "env"

    def test_cli_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        config.set_jobs(2)
        assert config.jobs() == 2
        assert config.resolved_config().jobs_source == "cli"

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(ConfigError):
            config.jobs()

    def test_invalid_cli_value_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            config.set_jobs(0)


class TestSeed:
    def test_default_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert config.seed() is None

    def test_env_seed_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        assert config.seed() == 7
        assert config.resolved_config().seed_source == "env"

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "7")
        config.set_seed(13)
        assert config.seed() == 13
        assert config.resolved_config().seed_source == "cli"

    def test_malformed_env_seed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "not-an-int")
        with pytest.raises(ValueError, match="REPRO_SEED"):
            config.seed()


class TestCache:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert config.cache_enabled() is True

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert config.cache_enabled() is False

    def test_cli_kill_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        config.set_cache_enabled(False)
        assert config.cache_enabled() is False

    def test_either_switch_disables(self, monkeypatch):
        # CLI True cannot re-enable past the env kill switch: a cache
        # disabled anywhere stays disabled.
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        config.set_cache_enabled(True)
        assert config.cache_enabled() is False

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert config.cache_dir() == str(tmp_path / "c")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert config.cache_dir() is None


class TestSnapshot:
    def test_resolved_config_snapshot(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_SEED", raising=False)
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        config.set_jobs(3)
        snap = config.resolved_config()
        assert snap.jobs == 3
        assert snap.jobs_source == "cli"
        assert snap.seed is None and snap.seed_source == "default"
        assert snap.cache_enabled is True
        d = snap.as_dict()
        assert d["jobs"] == 3 and d["jobs_source"] == "cli"

    def test_overrides_scope_and_restore(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        config.set_jobs(2)
        with config.overrides(jobs=5, seed=42, cache_enabled=False):
            assert config.jobs() == 5
            assert config.seed() == 42
            assert config.cache_enabled() is False
        assert config.jobs() == 2
        assert config.seed() is None
        assert config.cache_enabled() is True

    def test_overrides_restore_on_exception(self):
        config.set_seed(1)
        with pytest.raises(RuntimeError):
            with config.overrides(seed=99):
                raise RuntimeError("boom")
        assert config.seed() == 1

    def test_reset_clears_cli_state(self):
        config.set_jobs(8)
        config.set_seed(5)
        config.set_cache_enabled(False)
        config.reset()
        assert config.resolved_config().jobs_source != "cli"
        assert config.resolved_config().seed_source != "cli"
