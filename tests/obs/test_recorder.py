"""Recorder core: spans, nesting, counters, merge, disabled no-ops."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ReproError
from repro.obs.recorder import NULL_SPAN, Recorder


class TestDisabled:
    def test_disabled_span_is_the_shared_singleton(self):
        assert obs.current() is None
        assert obs.span("anything", key=1) is NULL_SPAN
        assert obs.span("other") is NULL_SPAN

    def test_disabled_hooks_are_noops(self):
        obs.add("counter")
        obs.gauge("gauge", 3.0)
        obs.event("event", detail=1)
        with obs.span("nothing") as span:
            span.set(extra=True)
        # nothing anywhere records anything
        assert obs.current() is None


class TestSpans:
    def test_nesting_parent_and_depth(self):
        with obs.recording() as recorder:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("sibling"):
                    pass
        inner, sibling, outer = recorder.spans
        assert outer.name == "outer" and outer.depth == 0
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id and inner.depth == 1
        assert sibling.parent_id == outer.span_id
        # children close before parents; start ordering is preserved
        assert inner.start_s <= sibling.start_s <= outer.end_s
        assert all(s.end_s >= s.start_s for s in recorder.spans)

    def test_span_attrs_and_set(self):
        with obs.recording() as recorder:
            with obs.span("work", phase="build") as span:
                span.set(states=42)
        (span,) = recorder.spans
        assert span.attrs == {"phase": "build", "states": 42}

    def test_out_of_order_close_raises(self):
        recorder = Recorder()
        a = recorder.span("a")
        b = recorder.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(ReproError):
            recorder._close_span(a)

    def test_recording_restores_previous_recorder(self):
        outer = obs.install()
        with obs.recording() as inner:
            assert obs.current() is inner
            assert inner is not outer
        assert obs.current() is outer


class TestCountersAndEvents:
    def test_counters_sum_and_gauges_overwrite(self):
        with obs.recording() as recorder:
            obs.add("hits")
            obs.add("hits", 2.0)
            obs.gauge("depth", 1.0)
            obs.gauge("depth", 5.0)
        assert recorder.counters == {"hits": 3.0}
        assert recorder.gauges == {"depth": 5.0}

    def test_sim_work_reconciles_with_summary(self):
        with obs.recording() as recorder:
            recorder.sim_work("node0.host", "syscall send", 0.0, 10.0,
                              False)
            recorder.sim_work("node0.host", "process send", 10.0, 5.0,
                              False)
            recorder.sim_work("node0.mp", "ack generation (MP)", 0.0,
                              2.5, True)
        busy = recorder.sim_busy_by_processor()
        assert busy == {"node0.host": 15.0, "node0.mp": 2.5}
        assert recorder.summary()["sim_busy_us"] == busy


class TestMerge:
    def test_merge_rebases_span_ids_and_sums_counters(self):
        parent = Recorder()
        with parent.span("parent-span"):
            pass
        foreign = [
            {"type": "span", "span_id": 0, "parent_id": None,
             "name": "worker-span", "start_s": 0.1, "end_s": 0.2,
             "depth": 0, "pid": 9999, "attrs": {}},
            {"type": "span", "span_id": 1, "parent_id": 0,
             "name": "child", "start_s": 0.12, "end_s": 0.15,
             "depth": 1, "pid": 9999, "attrs": {}},
            {"type": "counter", "name": "hits", "value": 2.0},
        ]
        parent.add("hits", 1.0)
        parent.merge(foreign)
        names = {s.name: s for s in parent.spans}
        assert names["child"].parent_id == names["worker-span"].span_id
        assert names["worker-span"].span_id != 0       # rebased
        assert names["worker-span"].pid == 9999
        assert parent.counters["hits"] == 3.0
        # the id cursor moved past the merged ids: new spans stay unique
        with parent.span("after"):
            pass
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_merge_rejects_unknown_record_type(self):
        with pytest.raises(ReproError):
            Recorder().merge([{"type": "mystery"}])
