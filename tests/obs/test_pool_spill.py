"""Worker-span spilling: one merged trace across the process pool."""

from __future__ import annotations

import pytest

from repro import obs
from repro.perf.backends import (last_map_info, local, map_sweep,
                                 shutdown_pool)


def _square(x: int) -> int:
    return x * x


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_pool()
    yield
    shutdown_pool()


def test_serial_sweep_records_per_item_spans():
    with obs.recording() as recorder:
        results = map_sweep(_square, [1, 2, 3], jobs=1)
    assert results == [1, 4, 9]
    totals = recorder.span_totals()
    assert totals["pool.task"][0] == 3
    assert totals["pool.map"][0] == 1
    (map_span,) = [s for s in recorder.spans if s.name == "pool.map"]
    assert map_span.attrs["mode"] == "serial"
    assert map_span.attrs["items"] == 3


def test_untraced_sweep_records_nothing():
    results = map_sweep(_square, [1, 2, 3], jobs=1)
    assert results == [1, 4, 9]
    assert obs.current() is None


def test_parallel_sweep_merges_worker_spans():
    items = list(range(12))
    with obs.recording() as recorder:
        results = map_sweep(_square, items, jobs=2, oversubscribe=True)
    assert results == [x * x for x in items]
    info = last_map_info()
    if info.mode != "parallel":
        pytest.skip(f"pool declined to fan out: {info.reason}")
    task_spans = [s for s in recorder.spans if s.name == "pool.task"]
    assert len(task_spans) == len(items)
    # every item's index arrived exactly once, across worker pids
    assert sorted(s.attrs["index"] for s in task_spans) == items
    worker_pids = {s.pid for s in task_spans}
    assert all(pid != recorder.pid for pid in worker_pids)
    # parent-side spans still carry the parent pid
    (map_span,) = [s for s in recorder.spans if s.name == "pool.map"]
    assert map_span.pid == recorder.pid
    assert map_span.attrs["mode"] == "parallel"
    # spill files were consumed by the merge
    assert local._parent_spill_dir is not None
    from pathlib import Path
    assert list(Path(local._parent_spill_dir).glob("obs-*.jsonl")) == []


def test_parallel_results_identical_with_and_without_tracing():
    items = list(range(8, 24))
    plain = map_sweep(_square, items, jobs=2, oversubscribe=True)
    with obs.recording():
        traced = map_sweep(_square, items, jobs=2, oversubscribe=True)
    assert traced == plain
