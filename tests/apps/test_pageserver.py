"""Integration tests for the page server / demand paging."""

import pytest

from repro.apps import PageFault, PageServer, PagedMemory
from repro.apps.pageserver import PAGE_SIZE
from repro.errors import KernelError
from repro.kernel import DistributedSystem
from repro.models.params import Architecture, Mode


def make_setup(remote=False, cache_capacity=4, pages=16):
    system = DistributedSystem(Architecture.II)
    if remote:
        server_node = system.add_node("backing-store",
                                      default_mode=Mode.NONLOCAL)
        client_node = system.add_node("workstation",
                                      default_mode=Mode.NONLOCAL)
    else:
        server_node = client_node = system.add_node("node0")
    server = PageServer(server_node, pages=pages)
    server.start()
    task = client_node.create_task("app")
    memory = PagedMemory(client_node, task, pages=pages,
                         cache_capacity=cache_capacity)
    return system, server, memory


def test_read_faults_in_a_zero_page():
    system, server, memory = make_setup()
    got = []
    memory.read(100, 8, got.append)
    system.sim.run()
    assert got == [bytes(8)]
    assert memory.misses == 1
    assert server.fetches == 1


def test_write_then_read_hits_cache():
    system, server, memory = make_setup()
    got = []
    memory.write(10, b"abc")
    system.sim.run()
    memory.read(10, 3, got.append)
    system.sim.run()
    assert got == [b"abc"]
    assert memory.misses == 1      # one fault for the shared page
    assert memory.hits == 1


def test_flush_persists_dirty_pages():
    system, server, memory = make_setup()
    memory.write(0, b"persist me")
    done = []
    system.sim.run()
    memory.flush(lambda: done.append(True))
    system.sim.run()
    assert done == [True]
    assert server.stores == 1
    # a fresh client sees the stored bytes
    task2 = server.node.create_task("app2")
    memory2 = PagedMemory(server.node, task2, pages=16)
    got = []
    memory2.read(0, 10, got.append)
    system.sim.run()
    assert got == [b"persist me"]


def test_lru_eviction_writes_back_dirty_victim():
    system, server, memory = make_setup(cache_capacity=2)
    memory.write(0 * PAGE_SIZE, b"zero")
    system.sim.run()
    memory.write(1 * PAGE_SIZE, b"one")
    system.sim.run()
    # touching a third page evicts page 0 (LRU), which is dirty
    memory.read(2 * PAGE_SIZE, 4, lambda d: None)
    system.sim.run()
    assert server.stores == 1
    assert len(memory._cache) == 2


def test_cross_page_access_rejected():
    _system, _server, memory = make_setup()
    with pytest.raises(PageFault):
        memory.read(PAGE_SIZE - 2, 8, lambda d: None)


def test_out_of_segment_access_rejected():
    _system, _server, memory = make_setup(pages=2)
    with pytest.raises(PageFault):
        memory.write(5 * PAGE_SIZE, b"far away")


def test_remote_paging_works():
    system, server, memory = make_setup(remote=True)
    got = []
    memory.write(50, b"over the wire")
    system.sim.run()
    memory.flush(lambda: got.append("flushed"))
    system.sim.run()
    assert got == ["flushed"]
    assert system.wire.packet_count >= 4   # fetch + store round trips


def test_fault_rate_measured():
    system, _server, memory = make_setup(cache_capacity=2)
    for page in (0, 1, 0, 1, 2, 0):
        memory.read(page * PAGE_SIZE, 1, lambda d: None)
        system.sim.run()
    assert memory.hits + memory.misses == 6
    assert memory.misses >= 4     # capacity 2 forces refaults


def test_bad_configuration_rejected():
    system = DistributedSystem(Architecture.I)
    node = system.add_node("n0")
    with pytest.raises(KernelError):
        PageServer(node, pages=0)
    server = PageServer(node, pages=4)
    task = node.create_task("app")
    with pytest.raises(KernelError):
        PagedMemory(node, task, pages=4, cache_capacity=0)
