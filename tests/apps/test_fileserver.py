"""Integration tests for the file server application."""

import pytest

from repro.apps import (FileClient, FileReply, FileServer, FileStatus)
from repro.kernel import DistributedSystem
from repro.models.params import Architecture, Mode


def make_setup(remote=False):
    system = DistributedSystem(Architecture.II)
    if remote:
        server_node = system.add_node("server-node",
                                      default_mode=Mode.NONLOCAL)
        client_node = system.add_node("client-node",
                                      default_mode=Mode.NONLOCAL)
    else:
        server_node = client_node = system.add_node("node0")
    server = FileServer(server_node)
    server.start()
    task = client_node.create_task("editor")
    client = FileClient(client_node, task)
    return system, server, client


def run_calls(system, steps):
    """Drive a list of callback-chained steps to completion."""
    results: list[FileReply] = []

    def next_step(index):
        def on_reply(reply):
            results.append(reply)
            if index + 1 < len(steps):
                steps[index + 1](on_reply_factory(index + 1))
        return on_reply

    def on_reply_factory(index):
        return next_step(index)

    steps[0](next_step(0))
    system.sim.run()
    return results


def test_open_returns_handle():
    system, _server, client = make_setup()
    replies = run_calls(system, [
        lambda cb: client.open("report.txt", cb),
    ])
    assert replies[0].status is FileStatus.OK
    assert replies[0].handle == 1


def test_write_then_read_roundtrip():
    system, _server, client = make_setup()
    state = {}

    def do_open(cb):
        client.open("doc", cb)

    def do_write(cb):
        state["handle"] = state["replies"][0].handle
        client.write(state["handle"], 0, b"hello pages", cb)

    def do_read(cb):
        client.read(state["handle"], 0, 11, cb)

    replies = []
    state["replies"] = replies

    def chain(fns):
        def advance(i):
            def cb(reply):
                replies.append(reply)
                if i + 1 < len(fns):
                    fns[i + 1](advance(i + 1))
            return cb
        fns[0](advance(0))

    chain([do_open, do_write, do_read])
    system.sim.run()
    assert [r.status for r in replies] == [FileStatus.OK] * 3
    assert replies[2].data == b"hello pages"


def test_bulk_page_write_moves_bytes_via_memory_reference():
    system, server, client = make_setup()
    replies = []

    def after_open(reply):
        replies.append(reply)
        buffer = client.page_buffer(size=4096, for_write=True)
        client.write(reply.handle, 0, b"x" * 4096,
                     lambda r: replies.append(r), buffer=buffer)

    client.open("big", after_open)
    system.sim.run()
    assert replies[1].status is FileStatus.OK
    assert replies[1].bytes_moved == 4096
    # the kernel's bulk path carried the page
    assert server.node.kernel.stats.bytes_moved == 4096


def test_bad_handle_reported():
    system, _server, client = make_setup()
    replies = run_calls(system, [
        lambda cb: client.read(999, 0, 10, cb),
    ])
    assert replies[0].status is FileStatus.BAD_HANDLE


def test_bad_offset_reported():
    system, _server, client = make_setup()
    replies = []

    def after_open(reply):
        replies.append(reply)
        client.read(reply.handle, 5_000, 10,
                    lambda r: replies.append(r))

    client.open("empty", after_open)
    system.sim.run()
    assert replies[1].status is FileStatus.BAD_OFFSET


def test_close_invalidates_handle():
    system, _server, client = make_setup()
    replies = []

    def after_open(reply):
        replies.append(reply)
        client.close(reply.handle, lambda r: (
            replies.append(r),
            client.read(reply.handle, 0, 1,
                        lambda rr: replies.append(rr))))

    client.open("f", after_open)
    system.sim.run()
    assert replies[1].status is FileStatus.OK
    assert replies[2].status is FileStatus.BAD_HANDLE


def test_list_files():
    system, _server, client = make_setup()
    replies = []
    client.open("b.txt", lambda r1: client.open(
        "a.txt", lambda r2: client.list_files(
            lambda r3: replies.append(r3))))
    system.sim.run()
    assert replies[0].names == ["a.txt", "b.txt"]


def test_remote_access_transparent():
    """The same client code works across nodes (the thesis's
    transparency argument)."""
    system, server, client = make_setup(remote=True)
    replies = []
    client.open("remote-doc", lambda r: replies.append(r))
    system.sim.run()
    assert replies[0].status is FileStatus.OK
    assert system.wire.packet_count == 2       # send + reply


def test_server_counts_requests():
    system, server, client = make_setup()
    client.open("f", lambda r: client.list_files(lambda rr: None))
    system.sim.run()
    assert server.requests_served == 2
