"""Tests for the executable timing diagrams (Figures 5.3-5.16)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bus import (BusCommand, handshake_edges, simple_edges)
from repro.bus.handshakes import (block_read_data_handshake,
                                  block_transfer_handshake,
                                  block_write_data_handshake,
                                  dequeue_handshake, enqueue_handshake,
                                  first_handshake, read_handshake,
                                  render_timing, write_handshake)
from repro.bus.transactions import OpKind
from repro.errors import BusError


class TestEdgeBudgets:
    """The traces' IS/IK edge counts match the command table."""

    def test_block_transfer_four_edges(self):
        assert block_transfer_handshake().information_edges == \
            handshake_edges(BusCommand.BLOCK_TRANSFER)

    def test_enqueue_four_edges(self):
        assert enqueue_handshake().information_edges == \
            simple_edges(OpKind.ENQUEUE)

    def test_dequeue_same_as_enqueue(self):
        assert dequeue_handshake().information_edges == \
            enqueue_handshake().information_edges

    def test_first_eight_edges(self):
        assert first_handshake().information_edges == \
            simple_edges(OpKind.FIRST)

    def test_read_eight_write_four(self):
        assert read_handshake().information_edges == 8
        assert write_handshake().information_edges == 4

    def test_streaming_two_edges_per_word_even(self):
        assert block_read_data_handshake(6).information_edges == 12
        assert block_write_data_handshake(4).information_edges == 8


class TestProtocolInvariants:
    def test_all_lines_released_after_every_transaction(self):
        traces = [
            block_transfer_handshake(),
            block_read_data_handshake(4),
            block_read_data_handshake(5),
            block_write_data_handshake(3),
            enqueue_handshake(), dequeue_handshake(),
            first_handshake(), read_handshake(), write_handshake(),
        ]
        for trace in traces:
            assert trace.lines_released(), trace.name

    def test_bbsy_brackets_information_cycle(self):
        trace = enqueue_handshake()
        assert trace.events[0].signal == "BBSY"
        assert trace.events[0].action == "assert"
        assert trace.events[-1].signal == "BBSY"
        assert trace.events[-1].action == "release"

    def test_odd_stream_pays_recovery_edges(self):
        # an odd block needs one extra transition pair to return the
        # strobe lines to released (section 5.3.1)
        assert block_read_data_handshake(4).information_edges == 8
        assert block_read_data_handshake(5).information_edges == \
            2 * 5 + 2

    def test_memory_drives_read_stream_processor_drives_write(self):
        read_trace = block_read_data_handshake(2)
        data_events = [e for e in read_trace.events
                       if e.signal == "IK" and "word" in e.note]
        assert all(e.actor == "memory" for e in data_events)
        write_trace = block_write_data_handshake(2)
        data_events = [e for e in write_trace.events
                       if e.signal == "IS" and "word" in e.note]
        assert all(e.actor == "processor" for e in data_events)

    def test_zero_word_stream_rejected(self):
        with pytest.raises(BusError):
            block_read_data_handshake(0)


@given(st.integers(1, 40))
def test_property_streaming_edges(words):
    """Stream cost = 2*words, +2 recovery edges when odd."""
    expected = 2 * words + (2 if words % 2 else 0)
    assert block_read_data_handshake(words).information_edges == \
        expected
    assert block_write_data_handshake(words).information_edges == \
        expected


def test_render_timing_is_readable():
    text = render_timing(first_handshake())
    assert "first control block" in text
    assert "8 IS/IK edges" in text
    assert "list address on A/D" in text
