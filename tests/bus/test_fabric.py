"""Integration tests of the smart-bus fabric with the memory controller."""

import pytest

from repro.bus import (BusMonitor, BusOperation, OpKind, SmartBusFabric)
from repro.errors import BusError
from repro.memory import (SharedMemory, SmartMemoryController, build_layout,
                          members)


def make_fabric(size=512, edge_time_us=0.25):
    memory = SharedMemory(size)
    controller = SmartMemoryController(memory)
    fabric = SmartBusFabric(controller, edge_time_us=edge_time_us)
    fabric.attach("host", 2)
    fabric.attach("mp", 4)
    fabric.attach("net", 6)
    return fabric, memory


class TestBasicOperations:
    def test_write_then_read(self):
        fabric, _memory = make_fabric()
        fabric.schedule(BusOperation(unit="host", kind=OpKind.WRITE,
                                     address=9, value=77))
        read = fabric.schedule(BusOperation(unit="host", kind=OpKind.READ,
                                            address=9, issue_time=1.0))
        fabric.run()
        assert read.result == 77

    def test_write_latency_one_memory_cycle(self):
        # four-edge handshake at 0.25 us/edge = 1 us
        fabric, _memory = make_fabric()
        op = fabric.schedule(BusOperation(unit="host", kind=OpKind.WRITE,
                                          address=9, value=1))
        fabric.run()
        assert op.latency == pytest.approx(1.0)

    def test_read_latency_two_memory_cycles(self):
        fabric, _memory = make_fabric()
        op = fabric.schedule(BusOperation(unit="host", kind=OpKind.READ,
                                          address=9))
        fabric.run()
        assert op.latency == pytest.approx(2.0)

    def test_block_read_roundtrip(self):
        fabric, memory = make_fabric()
        memory.write_block(40, list(range(10)))
        op = fabric.schedule(BusOperation(unit="host",
                                          kind=OpKind.BLOCK_READ,
                                          address=40, count=10))
        fabric.run()
        assert op.result == list(range(10))
        # 4 request edges + 20 stream edges = 24 edges = 6 us
        assert op.latency == pytest.approx(6.0)

    def test_block_write_roundtrip(self):
        fabric, memory = make_fabric()
        op = fabric.schedule(BusOperation(unit="host",
                                          kind=OpKind.BLOCK_WRITE,
                                          address=60,
                                          data=[5, 4, 3, 2, 1]))
        fabric.run()
        assert memory.read_block(60, 5) == [5, 4, 3, 2, 1]
        # 4 + 10 edges = 14 edges = 3.5 us
        assert op.latency == pytest.approx(3.5)

    def test_queue_ops_through_bus(self):
        layout = build_layout(n_tcbs=4, n_buffers=4)
        controller = SmartMemoryController(layout.memory)
        fabric = SmartBusFabric(controller)
        fabric.attach("mp", 4)
        got = fabric.schedule(BusOperation(
            unit="mp", kind=OpKind.FIRST, list_addr=layout.tcb_free_list))
        fabric.run()
        assert got.result == layout.tcbs.address_of(0)
        enq = fabric.schedule(BusOperation(
            unit="mp", kind=OpKind.ENQUEUE, element=got.result,
            list_addr=layout.communication_list))
        fabric.run()
        assert enq.result is None
        assert members(layout.memory,
                       layout.communication_list) == [got.result]


class TestArbitrationAndPreemption:
    def test_higher_priority_goes_first_when_simultaneous(self):
        fabric, _memory = make_fabric()
        low = fabric.schedule(BusOperation(unit="host", kind=OpKind.WRITE,
                                           address=9, value=1))
        high = fabric.schedule(BusOperation(unit="net", kind=OpKind.WRITE,
                                            address=10, value=2))
        fabric.run()
        assert high.complete_time < low.complete_time

    def test_stream_preempted_at_grant_boundary(self):
        fabric, memory = make_fabric()
        memory.write_block(40, list(range(20)))
        read = fabric.schedule(BusOperation(
            unit="host", kind=OpKind.BLOCK_READ, address=40, count=20))
        # net interrupt-style request lands mid-stream
        enq_time = 3.0
        net_op = fabric.schedule(BusOperation(
            unit="net", kind=OpKind.WRITE, address=9, value=1,
            issue_time=enq_time))
        fabric.run()
        assert read.result == list(range(20))       # no data lost
        assert read.preemptions >= 1
        # the net op completed long before the 20-word stream would
        # have finished if the bus were locked
        assert net_op.complete_time <= enq_time + 2.0

    def test_no_preemption_without_contention(self):
        fabric, memory = make_fabric()
        memory.write_block(40, list(range(20)))
        read = fabric.schedule(BusOperation(
            unit="host", kind=OpKind.BLOCK_READ, address=40, count=20))
        fabric.run()
        assert read.preemptions == 0

    def test_interleaved_streams_both_complete(self):
        fabric, memory = make_fabric()
        memory.write_block(40, list(range(8)))
        memory.write_block(80, list(range(100, 108)))
        a = fabric.schedule(BusOperation(
            unit="host", kind=OpKind.BLOCK_READ, address=40, count=8))
        b = fabric.schedule(BusOperation(
            unit="mp", kind=OpKind.BLOCK_READ, address=80, count=8))
        fabric.run()
        assert a.result == list(range(8))
        assert b.result == list(range(100, 108))

    def test_fifo_order_within_unit(self):
        fabric, _memory = make_fabric()
        first_op = fabric.schedule(BusOperation(
            unit="host", kind=OpKind.WRITE, address=9, value=1))
        second_op = fabric.schedule(BusOperation(
            unit="host", kind=OpKind.WRITE, address=10, value=2))
        fabric.run()
        assert first_op.complete_time < second_op.complete_time


class TestFabricGuards:
    def test_duplicate_unit_rejected(self):
        fabric, _memory = make_fabric()
        with pytest.raises(BusError):
            fabric.attach("host", 1)

    def test_duplicate_priority_rejected(self):
        fabric, _memory = make_fabric()
        with pytest.raises(BusError):
            fabric.attach("other", 2)

    def test_unknown_unit_rejected(self):
        fabric, _memory = make_fabric()
        with pytest.raises(BusError):
            fabric.schedule(BusOperation(unit="ghost", kind=OpKind.READ,
                                         address=9))

    def test_idle_bus_jumps_to_next_issue_time(self):
        fabric, _memory = make_fabric()
        op = fabric.schedule(BusOperation(unit="host", kind=OpKind.WRITE,
                                          address=9, value=1,
                                          issue_time=100.0))
        fabric.run()
        assert op.start_time == pytest.approx(100.0)


class TestMonitor:
    def test_monitor_aggregates(self):
        fabric, memory = make_fabric()
        memory.write_block(40, list(range(4)))
        fabric.schedule(BusOperation(unit="host", kind=OpKind.BLOCK_READ,
                                     address=40, count=4))
        fabric.schedule(BusOperation(unit="net", kind=OpKind.WRITE,
                                     address=9, value=1))
        fabric.run()
        monitor = BusMonitor(fabric)
        stats = monitor.unit_stats()
        assert stats["net"].tenures == 1
        assert stats["net"].edges == 4
        assert monitor.total_edges() == sum(
            e.edges for e in fabric.trace)
        assert "block_transfer" in monitor.action_counts()
        assert monitor.mean_latency_us() > 0
        assert "smart bus:" in monitor.report()
