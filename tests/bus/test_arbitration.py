"""Tests for Taub's distributed arbitration, including the hypothesis
property that the settled bus value is always the highest contender."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bus import Arbiter, arbitrate
from repro.errors import BusError


def test_single_contender_wins():
    assert arbitrate([3]).winner == 3


def test_highest_number_wins():
    assert arbitrate([2, 5, 1]).winner == 5


def test_zero_can_win_alone():
    assert arbitrate([0]).winner == 0


def test_all_eight_contenders():
    assert arbitrate(list(range(8))).winner == 7


def test_empty_contest_rejected():
    with pytest.raises(BusError):
        arbitrate([])


def test_duplicate_numbers_rejected():
    with pytest.raises(BusError):
        arbitrate([3, 3])


def test_out_of_range_number_rejected():
    with pytest.raises(BusError):
        arbitrate([8])
    with pytest.raises(BusError):
        arbitrate([-1])


def test_bus_value_equals_winner():
    outcome = arbitrate([1, 6, 4])
    assert outcome.bus_value == outcome.winner == 6


def test_settles_in_bounded_rounds():
    outcome = arbitrate(list(range(8)))
    assert outcome.settle_rounds <= 16


@given(st.sets(st.integers(0, 7), min_size=1))
def test_property_winner_is_max(contenders):
    """Wired-OR competition always resolves to the highest number."""
    assert arbitrate(sorted(contenders)).winner == max(contenders)


class TestArbiter:
    def test_no_requesters_returns_none(self):
        arbiter = Arbiter()
        assert arbiter.next_master([]) is None

    def test_tracks_current_master(self):
        arbiter = Arbiter()
        assert arbiter.next_master([2, 4]) == 4
        assert arbiter.current_master == 4

    def test_master_retained_detection(self):
        arbiter = Arbiter()
        arbiter.next_master([2, 4])
        assert not arbiter.master_retained()
        arbiter.next_master([4])
        assert arbiter.master_retained()
        arbiter.next_master([2])
        assert not arbiter.master_retained()
