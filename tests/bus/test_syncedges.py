"""Tests for the microcoded synchronization-cost derivation.

The table must be *computed* from micro-execution and handshake-edge
pricing, and the computation must agree exactly with the Python
primitives it models — that parity is what ``repro validate`` gates
on, so it is pinned here at the declared (zero-edge) tolerance.
"""

import pytest

from repro.bus.commands import BusCommand, handshake_edges
from repro.bus.syncedges import (ENVELOPES, OPERATIONS,
                                 ZERO_CONTENTION_EDGE_TOLERANCE,
                                 derive_sync_cost_table,
                                 measure_primitive_costs,
                                 zero_contention_parity)
from repro.memory.microprograms import (CONTROL_STORE,
                                        control_store_bits,
                                        control_store_words)
from repro.memory.primitives import PRIMITIVE_NAMES

#: Bare algorithm bus accesses over the canonical scenarios (enqueue
#: onto two elements, first from three, dequeue of the middle of
#: three), as (reads, writes).
BARE = {"enqueue": (2, 3), "first": (3, 2), "dequeue": (4, 1)}

#: Envelope accesses each primitive adds on top of the bare algorithm.
ENVELOPE = {"tas": (2, 2), "cas": (1, 0), "llsc": (0, 0),
            "htm": (0, 0)}


def test_table_covers_every_primitive_and_operation():
    table = derive_sync_cost_table()
    assert set(table) == set(PRIMITIVE_NAMES)
    for rows in table.values():
        assert set(rows) == set(OPERATIONS)


@pytest.mark.parametrize("primitive", PRIMITIVE_NAMES)
@pytest.mark.parametrize("operation", OPERATIONS)
def test_derived_edges_are_bare_plus_envelope(primitive, operation):
    row = derive_sync_cost_table()[primitive][operation]
    reads = BARE[operation][0] + ENVELOPE[primitive][0]
    writes = BARE[operation][1] + ENVELOPE[primitive][1]
    assert (row.reads, row.writes) == (reads, writes)
    expected = (reads * handshake_edges(BusCommand.SIMPLE_READ)
                + writes * handshake_edges(BusCommand.WRITE_TWO_BYTES))
    assert row.bus_edges == expected
    assert row.memory_cycles == reads + writes


def test_cost_ordering_matches_envelope_weight():
    """TAS > CAS > LL/SC edges; HTM ties LL/SC on the bus but pays
    begin/commit micro-cycles."""
    table = derive_sync_cost_table()
    for operation in OPERATIONS:
        tas, cas, llsc, htm = (table[p][operation].bus_edges
                               for p in PRIMITIVE_NAMES)
        assert tas > cas > llsc
        assert htm == llsc
        assert table["htm"][operation].micro_cycles > \
            table["llsc"][operation].micro_cycles


@pytest.mark.parametrize("primitive", PRIMITIVE_NAMES)
def test_measured_matches_derived_at_declared_tolerance(primitive):
    assert ZERO_CONTENTION_EDGE_TOLERANCE == 0
    for row in zero_contention_parity(primitive):
        assert row["ok"], row
        assert row["derived_edges"] == row["measured_edges"]
        assert row["derived_cycles"] == row["measured_cycles"]


@pytest.mark.parametrize("primitive", PRIMITIVE_NAMES)
def test_measured_costs_are_clean_zero_contention_rows(primitive):
    for cost in measure_primitive_costs(primitive).values():
        assert cost.retries == 0
        assert not cost.failed


def test_envelopes_stay_out_of_the_control_store():
    """The envelopes model host-side software; the smart-bus budget of
    section 5.5 (123 words, 2952 < 3000 bits) must be untouched."""
    envelope_routines = {
        routine.name for envelope in ENVELOPES.values()
        for routine, _operand in envelope if routine != "op"}
    assert envelope_routines.isdisjoint(
        {routine.name for routine in CONTROL_STORE})
    assert control_store_words() == 123
    assert control_store_bits() == 2952
