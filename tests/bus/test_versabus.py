"""Tests for the conventional-bus baseline."""

import pytest

from repro.bus.versabus import (ConventionalBus, RecordingMemory,
                                smart_bus_advantage)
from repro.errors import BusError
from repro.memory import SharedMemory, members


def make_bus():
    memory = SharedMemory(128)
    memory.write(1, 0)              # list tail
    bus = ConventionalBus(memory, lock_address=2)
    blocks = [8 + i * 4 for i in range(8)]
    return bus, memory, 1, blocks


class TestRecordingMemory:
    def test_records_reads_and_writes(self):
        memory = SharedMemory(32)
        recorder = RecordingMemory(memory)
        recorder.write(5, 9)
        assert recorder.read(5) == 9
        assert recorder.accesses == [("write", 5), ("read", 5)]


class TestSingleTransfers:
    def test_read_write_roundtrip(self):
        bus, _memory, _lst, _blocks = make_bus()
        bus.write_word("host", 9, 42)
        op = bus.read_word("host", 9)
        assert op.result == 42
        assert op.memory_cycles == 1
        # 3 instructions at 3 us + 1 memory cycle
        assert op.total_us == pytest.approx(10.0)


class TestSoftwareBlockTransfers:
    def test_table_6_1_block_cost_reproduced(self):
        """40 bytes = 20 words: 180 us processing + 20 cycles."""
        bus, memory, _lst, _blocks = make_bus()
        memory.write_block(40, list(range(20)))
        op = bus.block_read("host", 40, 20)
        assert op.result == list(range(20))
        assert op.processing_us == pytest.approx(180.0)
        assert op.memory_cycles == 20
        assert op.total_us == pytest.approx(200.0)

    def test_block_write(self):
        bus, memory, _lst, _blocks = make_bus()
        bus.block_write("mp", 60, [7, 8, 9])
        assert memory.read_block(60, 3) == [7, 8, 9]

    def test_empty_block_rejected(self):
        bus, _memory, _lst, _blocks = make_bus()
        with pytest.raises(BusError):
            bus.block_read("host", 40, 0)
        with pytest.raises(BusError):
            bus.block_write("host", 40, [])


class TestLockedQueueOps:
    def test_semantics_preserved(self):
        bus, memory, lst, blocks = make_bus()
        for block in blocks[:3]:
            bus.enqueue("mp", block, lst)
        assert members(memory, lst) == blocks[:3]
        assert bus.first("mp", lst).result == blocks[0]
        assert bus.dequeue("mp", blocks[2], lst).result is True

    def test_cost_near_measured_74us(self):
        """Chapter 4: an atomic queueing operation took 74 us of
        processing on the 68000 implementation; the software path
        model lands in that neighbourhood."""
        bus, _memory, lst, blocks = make_bus()
        op = bus.enqueue("mp", blocks[0], lst)
        assert 55.0 <= op.total_us <= 95.0

    def test_lock_cycles_counted(self):
        bus, _memory, lst, blocks = make_bus()
        op = bus.enqueue("mp", blocks[0], lst)
        # data accesses + RMW pair + unlock
        assert op.memory_cycles >= 6
        assert op.lock_spins == 0

    def test_queue_ops_need_lock_word(self):
        memory = SharedMemory(64)
        memory.write(1, 0)
        bus = ConventionalBus(memory)       # no lock address
        with pytest.raises(BusError):
            bus.enqueue("mp", 8, 1)


class TestSmartBusAdvantage:
    def test_block_move_speedup(self):
        """Table 6.1's headline: 200 us software vs 15 us smart bus
        for a 40-byte move (one four-edge + twenty two-edge)."""
        comparison = smart_bus_advantage(words=20)
        assert comparison["conventional_us"] == pytest.approx(200.0)
        assert comparison["smart_us"] == pytest.approx(9.0 + 11.0)
        assert comparison["speedup"] == pytest.approx(10.0)

    def test_speedup_grows_with_block_size(self):
        small = smart_bus_advantage(words=4)["speedup"]
        large = smart_bus_advantage(words=100)["speedup"]
        assert large > small


class TestStats:
    def test_accounting_accumulates(self):
        bus, memory, lst, blocks = make_bus()
        memory.write_block(40, [0] * 4)
        bus.block_read("host", 40, 4)
        bus.enqueue("mp", blocks[0], lst)
        assert bus.stats.operations == 2
        assert bus.stats.memory_cycles > 4
        assert len(bus.history) == 2
