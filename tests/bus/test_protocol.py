"""Tests for bus signals, commands, and transaction edge budgets."""

import pytest

from repro.bus import (BusCommand, ProtocolLine, STREAM_EDGES_PER_WORD,
                       WORDS_PER_GRANT, block_total_edges, decode,
                       handshake_edges, signal, simple_edges,
                       streaming_segments, total_lines)
from repro.bus.transactions import BusOperation, OpKind
from repro.errors import BusError


class TestSignals:
    def test_table_5_1_line_counts(self):
        assert signal("A/D").lines == 16
        assert signal("TG").lines == 4
        assert signal("CM").lines == 4
        assert signal("BR").lines == 3
        for single in ("IS", "IK", "BBSY", "AR", "ANC", "CLR"):
            assert signal(single).lines == 1

    def test_total_conductors(self):
        # 16 + 4 + 4 + 1 + 1 + 1 + 3 + 1 + 1 + 1
        assert total_lines() == 33

    def test_unknown_signal(self):
        with pytest.raises(BusError):
            signal("XYZ")

    def test_protocol_line_edge_counting(self):
        line = ProtocolLine("IS")
        line.assert_()
        line.release()
        assert line.edges == 2
        with pytest.raises(BusError):
            line.release()

    def test_double_assert_rejected(self):
        line = ProtocolLine("IK")
        line.assert_()
        with pytest.raises(BusError):
            line.assert_()

    def test_toggle_counts_edges(self):
        line = ProtocolLine("IS")
        for _ in range(5):
            line.toggle()
        assert line.edges == 5


class TestCommands:
    def test_table_5_2_encodings(self):
        assert BusCommand.SIMPLE_READ == 0b0000
        assert BusCommand.BLOCK_TRANSFER == 0b0001
        assert BusCommand.BLOCK_READ_DATA == 0b0010
        assert BusCommand.BLOCK_WRITE_DATA == 0b0011
        assert BusCommand.ENQUEUE_CONTROL_BLOCK == 0b0100
        assert BusCommand.DEQUEUE_CONTROL_BLOCK == 0b0101
        assert BusCommand.FIRST_CONTROL_BLOCK == 0b0110
        assert BusCommand.WRITE_TWO_BYTES == 0b1000
        assert BusCommand.WRITE_BYTE == 0b1001

    def test_decode_roundtrip(self):
        for command in BusCommand:
            assert decode(int(command)) is command

    def test_decode_unassigned_code(self):
        with pytest.raises(BusError):
            decode(0b0111)

    def test_handshake_edges(self):
        assert handshake_edges(BusCommand.BLOCK_TRANSFER) == 4
        assert handshake_edges(BusCommand.ENQUEUE_CONTROL_BLOCK) == 4
        assert handshake_edges(BusCommand.DEQUEUE_CONTROL_BLOCK) == 4
        assert handshake_edges(BusCommand.FIRST_CONTROL_BLOCK) == 8
        assert handshake_edges(BusCommand.SIMPLE_READ) == 8

    def test_streaming_commands_have_no_fixed_edges(self):
        with pytest.raises(BusError):
            handshake_edges(BusCommand.BLOCK_READ_DATA)


class TestTransactionPlanning:
    def test_simple_edges(self):
        assert simple_edges(OpKind.ENQUEUE) == 4
        assert simple_edges(OpKind.DEQUEUE) == 4
        assert simple_edges(OpKind.FIRST) == 8
        assert simple_edges(OpKind.READ) == 8
        assert simple_edges(OpKind.WRITE) == 4

    def test_block_ops_are_not_simple(self):
        with pytest.raises(BusError):
            simple_edges(OpKind.BLOCK_READ)

    def test_block_total_edges(self):
        # request (4) + 2 per word
        assert block_total_edges(20) == 44
        assert block_total_edges(1) == 6

    def test_streaming_segments_even(self):
        assert streaming_segments(6) == [2, 2, 2]

    def test_streaming_segments_odd_tail(self):
        assert streaming_segments(7) == [2, 2, 2, 1]
        assert streaming_segments(1) == [1]

    def test_streaming_segments_positive_only(self):
        with pytest.raises(BusError):
            streaming_segments(0)

    def test_words_per_grant_matches_released_state_rule(self):
        # strobe lines return to released state after an even number
        # of transfers, hence two words per grant
        assert WORDS_PER_GRANT == 2
        assert STREAM_EDGES_PER_WORD == 2


class TestOperationValidation:
    def test_enqueue_requires_list_and_element(self):
        with pytest.raises(BusError):
            BusOperation(unit="u", kind=OpKind.ENQUEUE).validate()

    def test_read_requires_address(self):
        with pytest.raises(BusError):
            BusOperation(unit="u", kind=OpKind.READ).validate()

    def test_write_requires_value(self):
        with pytest.raises(BusError):
            BusOperation(unit="u", kind=OpKind.WRITE, address=3).validate()

    def test_block_read_requires_count(self):
        with pytest.raises(BusError):
            BusOperation(unit="u", kind=OpKind.BLOCK_READ,
                         address=3).validate()

    def test_block_write_requires_data(self):
        with pytest.raises(BusError):
            BusOperation(unit="u", kind=OpKind.BLOCK_WRITE,
                         address=3).validate()

    def test_latency_before_completion_rejected(self):
        op = BusOperation(unit="u", kind=OpKind.READ, address=3)
        with pytest.raises(BusError):
            _ = op.latency
