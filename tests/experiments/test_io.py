"""Tests for artifact persistence (JSON/CSV)."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import Figure, Series, Table
from repro.experiments.io import (artifact_from_dict, artifact_to_dict,
                                  load_artifact, save_artifact, to_csv,
                                  to_json)


def sample_table():
    return Table(experiment_id="table-x", title="Sample",
                 headers=["a", "b"], rows=[[1, 2.5], ["z", 4]],
                 notes=["a note"])


def sample_figure():
    return Figure(experiment_id="figure-x", title="Sample",
                  x_label="x", y_label="y",
                  series=[Series("s1", [1.0, 2.0], [10.0, 20.0]),
                          Series("s2", [1.0, 3.0], [5.0, 6.0])])


def test_table_json_roundtrip():
    table = sample_table()
    restored = artifact_from_dict(json.loads(to_json(table)))
    assert isinstance(restored, Table)
    assert restored.headers == table.headers
    assert restored.rows == [[1, 2.5], ["z", 4]]
    assert restored.notes == ["a note"]


def test_figure_json_roundtrip():
    figure = sample_figure()
    restored = artifact_from_dict(artifact_to_dict(figure))
    assert isinstance(restored, Figure)
    assert restored.get_series("s1").y == [10.0, 20.0]
    assert restored.x_label == "x"


def test_table_csv():
    text = to_csv(sample_table())
    lines = text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,2.5"


def test_figure_csv_aligns_series_on_x():
    text = to_csv(sample_figure())
    lines = text.strip().splitlines()
    assert lines[0] == "x,s1,s2"
    assert lines[1] == "1.0,10.0,5.0"
    # x=2.0 has no s2 sample; x=3.0 has no s1 sample
    assert lines[2] == "2.0,20.0,"
    assert lines[3] == "3.0,,6.0"


def test_save_and_load(tmp_path):
    paths = save_artifact(sample_table(), tmp_path)
    assert {p.suffix for p in paths} == {".json", ".csv"}
    restored = load_artifact(tmp_path / "table-x.json")
    assert restored.title == "Sample"


def test_save_creates_directory(tmp_path):
    target = tmp_path / "deep" / "dir"
    save_artifact(sample_figure(), target, formats=("json",))
    assert (target / "figure-x.json").exists()


def test_unknown_format_rejected(tmp_path):
    with pytest.raises(ReproError):
        save_artifact(sample_table(), tmp_path, formats=("xml",))


def test_bad_payload_rejected():
    with pytest.raises(ReproError):
        artifact_from_dict({"kind": "sculpture"})
    with pytest.raises(ReproError):
        artifact_to_dict("not an artifact")


def test_real_experiment_roundtrips(tmp_path):
    from repro.experiments import run_experiment
    table = run_experiment("table-5.1")
    save_artifact(table, tmp_path)
    restored = load_artifact(tmp_path / "table-5.1.json")
    assert restored.rows == table.rows
