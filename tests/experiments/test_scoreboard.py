"""Tests for the reproduction scoreboard."""

import pytest

from repro.errors import ReproError
from repro.experiments.scoreboard import (Expectation, run_scoreboard,
                                          scoreboard_results,
                                          _expectations)


def test_every_expectation_passes():
    """The headline guarantee: all encoded paper claims reproduce."""
    table = run_scoreboard()
    failing = [row for row in table.rows if row[3] == "FAIL"]
    assert not failing, failing


def test_scoreboard_covers_all_chapters():
    sources = {e.source for e in _expectations()}
    assert any("3.4" in s for s in sources)        # profiling
    assert any("6.2" in s for s in sources)        # contention
    assert any("6.24" in s for s in sources)       # offered loads
    assert any("5.5" in s for s in sources)        # hardware budget
    assert any("6.1" in s for s in sources)        # bus comparison


def test_expectation_relative_tolerance():
    good = Expectation(name="x", paper_value=100.0, tolerance=0.05,
                       measure=lambda: 104.0)
    bad = Expectation(name="x", paper_value=100.0, tolerance=0.05,
                      measure=lambda: 106.0)
    assert good.evaluate().ok
    assert not bad.evaluate().ok


def test_expectation_absolute_tolerance():
    check = Expectation(name="x", paper_value=1.0, tolerance=0.0,
                        measure=lambda: 1.0, absolute=True)
    assert check.evaluate().ok
    miss = Expectation(name="x", paper_value=1.0, tolerance=0.0,
                       measure=lambda: 0.0, absolute=True)
    assert not miss.evaluate().ok


def test_title_reports_pass_count():
    table = run_scoreboard()
    assert f"{len(table.rows)}/{len(table.rows)} passing" in table.title


def test_zero_paper_value_with_relative_tolerance_rejected():
    """tolerance * |0| = 0 would demand measured == 0.0 exactly; such
    claims must declare an absolute band instead."""
    with pytest.raises(ReproError, match="absolute"):
        Expectation(name="degenerate", paper_value=0.0, tolerance=0.05,
                    measure=lambda: 0.0)


def test_zero_paper_value_allowed_with_absolute_band():
    check = Expectation(name="ok", paper_value=0.0, tolerance=0.01,
                        measure=lambda: 0.005, absolute=True)
    assert check.evaluate().ok


def test_negative_tolerance_rejected():
    with pytest.raises(ReproError, match="negative"):
        Expectation(name="bad", paper_value=1.0, tolerance=-0.1,
                    measure=lambda: 1.0)


def test_scoreboard_results_match_table():
    rows = scoreboard_results()
    table = run_scoreboard()
    assert len(rows) == len(table.rows)
    assert all(row.ok for row in rows)
