"""Tests for the reproduction scoreboard."""

import pytest

from repro.experiments.scoreboard import (Expectation, run_scoreboard,
                                          _expectations)


def test_every_expectation_passes():
    """The headline guarantee: all encoded paper claims reproduce."""
    table = run_scoreboard()
    failing = [row for row in table.rows if row[3] == "FAIL"]
    assert not failing, failing


def test_scoreboard_covers_all_chapters():
    sources = {e.source for e in _expectations()}
    assert any("3.4" in s for s in sources)        # profiling
    assert any("6.2" in s for s in sources)        # contention
    assert any("6.24" in s for s in sources)       # offered loads
    assert any("5.5" in s for s in sources)        # hardware budget
    assert any("6.1" in s for s in sources)        # bus comparison


def test_expectation_relative_tolerance():
    good = Expectation(name="x", paper_value=100.0, tolerance=0.05,
                       measure=lambda: 104.0)
    bad = Expectation(name="x", paper_value=100.0, tolerance=0.05,
                      measure=lambda: 106.0)
    assert good.evaluate().ok
    assert not bad.evaluate().ok


def test_expectation_absolute_tolerance():
    check = Expectation(name="x", paper_value=1.0, tolerance=0.0,
                        measure=lambda: 1.0, absolute=True)
    assert check.evaluate().ok
    miss = Expectation(name="x", paper_value=1.0, tolerance=0.0,
                       measure=lambda: 0.0, absolute=True)
    assert not miss.evaluate().ok


def test_title_reports_pass_count():
    table = run_scoreboard()
    assert f"{len(table.rows)}/{len(table.rows)} passing" in table.title
