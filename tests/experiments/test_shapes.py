"""Integration tests of the headline result shapes (section 6.10).

These run the light experiment grids and assert the qualitative
conclusions of the thesis: who wins, by roughly what factor, and where
the win region lies.
"""

import pytest

from repro.experiments import run_experiment
from repro.models import (Architecture, Mode, solve,
                          server_time_for_offered_load)


class TestFigure617:
    def test_local_max_load_shapes(self):
        figure = run_experiment("figure-6.17a")
        arch1 = figure.get_series("arch I")
        arch2 = figure.get_series("arch II")
        arch3 = figure.get_series("arch III")
        # arch I flat in conversations
        assert arch1.y[0] == pytest.approx(arch1.y[-1], rel=1e-6)
        # arch II below arch I at one conversation (the ~10% loss) ...
        assert arch2.y[0] < arch1.y[0]
        # ... but above with several conversations
        assert arch2.y[-1] > arch1.y[-1]
        # arch III significantly better than both everywhere
        for y1, y2, y3 in zip(arch1.y, arch2.y, arch3.y):
            assert y3 > y1
            assert y3 > y2
        # throughput increase is sublinear (MP bandwidth limit)
        assert arch2.y[3] < 4 * arch2.y[0]


class TestFigure620:
    def test_partitioned_bus_no_significant_gain_local(self):
        figure = run_experiment("figure-6.20")
        arch3 = figure.get_series("arch III")
        arch4 = figure.get_series("arch IV")
        for y3, y4 in zip(arch3.y, arch4.y):
            # IV is never significantly better than III (section 6.9.3)
            assert y4 == pytest.approx(y3, rel=0.06)


class TestRealisticWorkloadRegion:
    """Section 6.10 conclusion 1: the coprocessor wins over a region
    of offered loads, and the gain evaporates when compute-bound."""

    def test_arch2_win_region_local(self):
        for load in (0.7, 0.5):
            server = server_time_for_offered_load(
                Architecture.I, Mode.LOCAL, load)
            t1 = solve(Architecture.I, Mode.LOCAL, 4, server).throughput
            t2 = solve(Architecture.II, Mode.LOCAL, 4, server).throughput
            assert t2 > 1.3 * t1, load

    def test_gain_vanishes_when_compute_bound(self):
        server = server_time_for_offered_load(
            Architecture.I, Mode.LOCAL, 0.1)
        t1 = solve(Architecture.I, Mode.LOCAL, 2, server).throughput
        t2 = solve(Architecture.II, Mode.LOCAL, 2, server).throughput
        assert t2 == pytest.approx(t1, rel=0.1)

    def test_upper_bound_factor_two(self):
        """With an MP equal in speed to the host, the improvement is
        bounded by 2x (section 6.9.2)."""
        for load in (0.9, 0.7, 0.5):
            server = server_time_for_offered_load(
                Architecture.I, Mode.LOCAL, load)
            t1 = solve(Architecture.I, Mode.LOCAL, 4, server).throughput
            t2 = solve(Architecture.II, Mode.LOCAL, 4, server).throughput
            assert t2 < 2.0 * t1


class TestOfferedLoadTables:
    def test_table_6_24_renders_all_architectures(self):
        table = run_experiment("table-6.24")
        assert table.headers == ["Server Time (ms)", "I", "II", "III",
                                 "IV"]
        assert len(table.rows) == 13
        # first row: zero server time = unit offered load everywhere
        assert table.rows[0][1:] == [1.0, 1.0, 1.0, 1.0]
