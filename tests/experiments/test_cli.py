"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_shows_light_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table-3.1" in out
    assert "table-6.24" in out
    assert "figure-6.18" not in out        # heavy, hidden by default


def test_list_heavy_includes_figures(capsys):
    assert main(["list", "--heavy"]) == 0
    out = capsys.readouterr().out
    assert "figure-6.18" in out
    assert "(heavy)" in out


def test_run_single_table(capsys):
    assert main(["run", "table-5.2"]) == 0
    out = capsys.readouterr().out
    assert "Smart Bus Commands" in out
    assert "[table-5.2 in" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "table-99.1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_run_unknown_experiment_suggests_close_match(capsys):
    """A typo exits nonzero with a did-you-mean, not a traceback."""
    assert main(["run", "tabel-6.24"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "did you mean" in err
    assert "table-6.24" in err
    assert "Traceback" not in err


def test_run_unknown_experiment_lists_ids_when_no_match(capsys):
    assert main(["run", "zzzzzz"]) == 1
    err = capsys.readouterr().err
    assert "known ids:" in err
    assert "table-6.24" in err


def test_run_without_ids(capsys):
    assert main(["run"]) == 2
    assert "nothing to run" in capsys.readouterr().err


def test_solve_prints_operating_point(capsys):
    assert main(["solve", "--arch", "I", "--mode", "local",
                 "-n", "1"]) == 0
    out = capsys.readouterr().out
    assert "architecture I" in out
    assert "throughput" in out
    # architecture I local, zero compute: 4970 us round trip
    assert "4970" in out


def test_run_with_save_writes_artifacts(tmp_path, capsys):
    assert main(["run", "table-5.1", "--save", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "saved:" in out
    assert (tmp_path / "table-5.1.json").exists()
    assert (tmp_path / "table-5.1.csv").exists()


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_seed_flag_sets_global_default(capsys):
    from repro.seeding import default_seed, set_default_seed
    try:
        assert main(["--seed", "123", "list"]) == 0
        assert default_seed() == 123
    finally:
        set_default_seed(None)


def test_chaos_subcommand_renders_sweep(capsys):
    assert main(["--seed", "1", "chaos", "--arch", "II",
                 "--loss", "0", "0.02", "--measure", "150000"]) == 0
    try:
        out = capsys.readouterr().out
        assert "chaos-sweep" in out
        assert "retransmits" in out
        assert "seed=1" in out
    finally:
        from repro.seeding import set_default_seed
        set_default_seed(None)


def test_chaos_rejects_bad_loss_rate(capsys):
    assert main(["chaos", "--loss", "1.5"]) == 1
    assert "outside [0, 1]" in capsys.readouterr().err


def test_profile_writes_dump_and_summary(tmp_path, capsys):
    assert main(["--profile", "run", "table-5.1",
                 "--save", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    prof = tmp_path / "table-5.1.prof"
    summary = tmp_path / "table-5.1.profile.txt"
    assert prof.exists() and summary.exists()
    # a real pstats dump, with the top-20 cumulative summary
    import pstats
    pstats.Stats(str(prof))
    text = summary.read_text()
    assert "cumulative" in text


def test_profile_defaults_to_cwd(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["--profile", "run", "table-5.1"]) == 0
    assert (tmp_path / "table-5.1.prof").exists()
    assert (tmp_path / "table-5.1.profile.txt").exists()


def test_profile_works_on_traffic_point_runs(tmp_path, capsys):
    """`repro --profile traffic` profiles the open-arrival point and
    honours the traffic subcommand's --save directory."""
    assert main(["--profile", "--duration", "50000",
                 "traffic", "--arch", "II", "--load", "0.5",
                 "--warmup", "0", "--save", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    prof = tmp_path / "traffic-point.prof"
    summary = tmp_path / "traffic-point.profile.txt"
    assert prof.exists() and summary.exists()
    import pstats
    pstats.Stats(str(prof))
    # the profile covers the DES hot loop, not just CLI plumbing
    assert "_drain" in summary.read_text()


def test_validate_quick_end_to_end(tmp_path, capsys):
    """The acceptance gate: `repro validate --quick` agrees on every
    configuration, writes a parity report, and that report validates."""
    report_path = tmp_path / "validation-report.json"
    assert main(["validate", "--quick",
                 "--report", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "4/4 configurations agree" in out
    assert "parity report:" in out
    from repro.validate.report import validate_report
    payload = validate_report(report_path)
    assert payload["summary"]["ok"] is True
    assert payload["grid"] == "quick"
    # the committed baseline at the repo root was found and checked
    assert payload["baseline"].get("skipped") is None
    assert payload["baseline"]["ok"] is True


def test_validate_rebaseline_writes_custom_path(tmp_path, capsys):
    target = tmp_path / "baseline.json"
    assert main(["validate", "--rebaseline",
                 "--baseline", str(target)]) == 0
    out = capsys.readouterr().out
    assert "baseline written" in out
    from repro.validate.baseline import load_baseline
    payload = load_baseline(target)
    # the union of the quick and full grids, exact values only
    assert len(payload["entries"]) >= 24
    entry = payload["entries"]["II-nonlocal-n2-x0"]
    assert entry["throughput_per_ms"] > 0
    assert "Host" in entry["busy"]


def test_jobs_flag_rejects_bad_values(capsys):
    with pytest.raises(SystemExit):
        main(["--jobs", "0", "list"])
    assert "--jobs must be >= 1" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["--jobs", "four", "list"])
    assert "invalid int value" in capsys.readouterr().err
