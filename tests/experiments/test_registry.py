"""Tests for the experiment registry and reporting."""

import pytest

from repro.errors import ReproError
from repro.experiments import (Figure, REGISTRY, Series, Table,
                               all_experiment_ids, get_experiment,
                               run_experiment)


def test_every_evaluation_artifact_registered():
    expected = {
        # chapter 3
        "table-3.1", "table-3.2", "table-3.3", "table-3.4", "table-3.5",
        "table-3.6", "table-3.7",
        # chapter 5
        "table-5.1", "table-5.2",
        # chapter 6 tables
        "table-6.1", "table-6.2", "table-6.4", "table-6.6", "table-6.9",
        "table-6.11", "table-6.14", "table-6.16", "table-6.19",
        "table-6.21", "table-6.24", "table-6.25",
        # chapter 6 figures
        "figure-6.7", "figure-6.15", "figure-6.17a", "figure-6.17b",
        "figure-6.18", "figure-6.19", "figure-6.20", "figure-6.21",
        "figure-6.22", "figure-6.23",
    }
    assert expected <= set(REGISTRY)


def test_unknown_experiment_rejected():
    with pytest.raises(ReproError):
        get_experiment("table-99.9")


def test_light_ids_exclude_heavy():
    light = all_experiment_ids(include_heavy=False)
    assert "table-6.24" in light
    assert "figure-6.18" not in light


def test_validation_experiments_registered():
    light = all_experiment_ids(include_heavy=False)
    assert "validate-quick" in light              # the CI gate
    assert "validate-full" not in light           # full grid is heavy
    assert get_experiment("validate-full").heavy


def test_light_tables_run_and_render():
    for experiment_id in ("table-3.1", "table-3.6", "table-5.1",
                          "table-5.2", "table-6.1", "table-6.4"):
        artifact = run_experiment(experiment_id)
        assert isinstance(artifact, Table)
        text = artifact.render()
        assert experiment_id in text
        assert len(text.splitlines()) >= 4


def test_figure_6_7_curves_coincide():
    figure = run_experiment("figure-6.7")
    const = figure.get_series("constant")
    geo = figure.get_series("geometric")
    for a, b in zip(const.y, geo.y):
        assert a == pytest.approx(b, rel=1e-9)


def test_table_render_alignment():
    table = Table(experiment_id="t", title="x",
                  headers=["a", "bb"], rows=[[1, 2.5], ["zz", 3]])
    lines = table.render().splitlines()
    assert len({len(line) for line in lines[1:]}) == 1


def test_series_length_mismatch_rejected():
    with pytest.raises(ReproError):
        Series("s", [1.0, 2.0], [1.0])


def test_figure_lookup_and_render():
    figure = Figure(experiment_id="f", title="t", x_label="x",
                    y_label="y",
                    series=[Series("a", [1.0, 2.0], [3.0, 4.0])])
    assert figure.get_series("a").y == [3.0, 4.0]
    with pytest.raises(ReproError):
        figure.get_series("b")
    assert "f — t" in figure.render()
