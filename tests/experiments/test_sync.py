"""Tests for the sync-comparison experiment."""

import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.sync import sync_comparison
from repro.models import Architecture, Mode, solve


def test_registered_with_heavy_nonlocal_variant():
    light = get_experiment("sync-comparison")
    heavy = get_experiment("sync-comparison-nonlocal")
    assert light.kind == "figure" and not light.heavy
    assert heavy.kind == "figure" and heavy.heavy


@pytest.fixture(scope="module")
def quick_figure():
    return sync_comparison(conversations=(1, 2),
                           syncs=("tas", "llsc"), jobs=1)


def test_one_series_per_primitive_plus_references(quick_figure):
    assert [s.label for s in quick_figure.series] == \
        ["arch II (tas)", "arch II (llsc)", "arch III", "arch IV"]
    for series in quick_figure.series:
        assert series.x == [1.0, 2.0]
        assert len(series.y) == 2


def test_tas_series_is_the_unmodified_baseline(quick_figure):
    baseline = [solve(Architecture.II, Mode.LOCAL, n).throughput_per_ms
                for n in (1, 2)]
    assert quick_figure.series[0].y == baseline


def test_cheaper_primitive_lifts_but_does_not_beat_smart_bus(
        quick_figure):
    tas, llsc, arch3, _arch4 = quick_figure.series
    for baseline, fast, smart in zip(tas.y, llsc.y, arch3.y):
        assert baseline < fast < smart


def test_notes_carry_the_derived_cost_rows(quick_figure):
    text = "\n".join(quick_figure.notes)
    assert "tas: queue op 74.0 us" in text
    assert "llsc: queue op" in text
    assert "derived edges enqueue/first/dequeue = 28/32/36" in text
