"""Tests for the chapter 6 parameter tables."""

import pytest

from repro.errors import ModelError
from repro.models import (ACTION_TABLES, Architecture, Mode, action_table,
                          round_trip_sum)
from repro.models.params import (LOCAL_PARAMS, NONLOCAL_CLIENT_PARAMS,
                                 NONLOCAL_SERVER_PARAMS,
                                 PROCESSING_TIME_TABLE)


def test_all_eight_action_tables_present():
    assert len(ACTION_TABLES) == 8
    for arch in Architecture:
        for mode in Mode:
            assert action_table(arch, mode)


def test_every_action_table_has_exactly_one_compute_row():
    for rows in ACTION_TABLES.values():
        assert sum(1 for row in rows if row.is_compute) == 1


def test_contention_never_below_best():
    for rows in ACTION_TABLES.values():
        for row in rows:
            if row.is_compute:
                continue
            assert row.contention >= row.best - 1e-9, row


def test_best_equals_processing_plus_shared_access():
    for rows in ACTION_TABLES.values():
        for row in rows:
            if row.is_compute:
                continue
            assert row.best == pytest.approx(
                row.processing + row.shared_access), row


def test_arch1_local_round_trip_sum_is_4970():
    # Chapter 6: C for architecture I local = full serialized sum
    assert round_trip_sum(Architecture.I, Mode.LOCAL) == \
        pytest.approx(4970.0)


def test_round_trip_sums_decrease_with_hardware_support():
    """Smart-bus architectures shave time off every step."""
    for mode in Mode:
        sums = [round_trip_sum(arch, mode) for arch in
                (Architecture.II, Architecture.III, Architecture.IV)]
        assert sums[0] > sums[1] > sums[2]


def test_smart_bus_times_below_coprocessor_times():
    for key in ("client_step", "process_send", "match", "process_reply"):
        a2 = getattr(LOCAL_PARAMS[Architecture.II], key)
        a3 = getattr(LOCAL_PARAMS[Architecture.III], key)
        assert a3 < a2, key


def test_arch1_has_no_coprocessor_activities():
    assert LOCAL_PARAMS[Architecture.I].process_send is None
    assert NONLOCAL_CLIENT_PARAMS[Architecture.I].process_send is None
    assert NONLOCAL_SERVER_PARAMS[Architecture.I].process_receive is None


def test_nonlocal_server_receive_path():
    p2 = NONLOCAL_SERVER_PARAMS[Architecture.II]
    assert p2.receive_path == pytest.approx(549.0 + 628.2)
    p1 = NONLOCAL_SERVER_PARAMS[Architecture.I]
    assert p1.receive_path == pytest.approx(790.7)


def test_table_6_1_processing_times():
    by_op = {row.operation: row for row in PROCESSING_TIME_TABLE}
    # software queue ops: 60 us processing + 14 memory cycles
    assert by_op["Enqueue"].arch2_processing == 60
    assert by_op["Enqueue"].arch2_memory == 14
    # smart bus: 3 instructions = 9 us, one memory cycle
    assert by_op["Enqueue"].arch3_processing == 9
    assert by_op["Enqueue"].arch3_memory == 1
    assert by_op["First"].arch3_memory == 2      # eight-edge handshake
    assert by_op["Block Read (40 Bytes)"].arch3_memory == 11


def test_unknown_table_lookup_raises():
    with pytest.raises(ModelError):
        round_trip_sum(Architecture.I, Mode.LOCAL, column="bogus")
