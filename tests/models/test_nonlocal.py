"""Tests for the split non-local models and their iterative solution."""

import pytest

from repro.errors import ModelError
from repro.gtpn import analyze
from repro.models import (Architecture, build_nonlocal_client_net,
                          build_nonlocal_server_net, initial_server_delay,
                          server_population, solve_nonlocal)


class TestClientNet:
    def test_arch1_runs_interrupts_on_host(self):
        net = build_nonlocal_client_net(Architecture.I, 1, 3000.0)
        assert not net.has_place("MP")
        assert net.has_transition("cleanup")

    def test_arch2_runs_interrupts_on_mp(self):
        net = build_nonlocal_client_net(Architecture.II, 1, 3000.0)
        assert net.has_place("MP")
        assert net.has_transition("process_send")

    def test_client_net_solves_and_cycles(self):
        net = build_nonlocal_client_net(Architecture.II, 1, 3000.0)
        result = analyze(net)
        assert result.throughput("lambda") > 0

    def test_longer_server_delay_lowers_throughput(self):
        fast = analyze(build_nonlocal_client_net(
            Architecture.II, 1, 2000.0)).throughput("lambda")
        slow = analyze(build_nonlocal_client_net(
            Architecture.II, 1, 8000.0)).throughput("lambda")
        assert slow < fast

    def test_rejects_bad_arguments(self):
        with pytest.raises(ModelError):
            build_nonlocal_client_net(Architecture.I, 0, 3000.0)
        with pytest.raises(ModelError):
            build_nonlocal_client_net(Architecture.I, 1, 0.5)


class TestServerNet:
    def test_population_and_arrivals_positive(self):
        net = build_nonlocal_server_net(Architecture.II, 2, 3000.0, 500.0)
        result = analyze(net)
        assert result.resource_usage("lambda_in") > 0
        assert server_population(result) > 0

    def test_littles_law_population_below_conversations(self):
        net = build_nonlocal_server_net(Architecture.II, 3, 3000.0)
        result = analyze(net)
        assert 0 < server_population(result) <= 3.0 + 1e-9

    def test_flow_balance_in_equals_out(self):
        net = build_nonlocal_server_net(Architecture.II, 2, 3000.0)
        result = analyze(net)
        assert result.resource_usage("lambda_in") == pytest.approx(
            result.resource_usage("lambda_out"), rel=1e-6)

    def test_compute_time_grows_population(self):
        quick = analyze(build_nonlocal_server_net(
            Architecture.II, 2, 4000.0, 0.0))
        busy = analyze(build_nonlocal_server_net(
            Architecture.II, 2, 4000.0, 4000.0))
        assert server_population(busy) > server_population(quick)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ModelError):
            build_nonlocal_server_net(Architecture.I, 1, 3000.0, -1.0)


class TestIterativeSolution:
    def test_initial_delay_includes_compute(self):
        base = initial_server_delay(Architecture.II, 0.0)
        assert initial_server_delay(Architecture.II, 1000.0) == \
            pytest.approx(base + 1000.0)

    def test_converges_for_all_architectures(self):
        for arch in Architecture:
            solution = solve_nonlocal(arch, 1, 0.0)
            assert solution.throughput > 0
            assert solution.iterations <= 60

    def test_single_conversation_communication_times_match_thesis(self):
        """C from Table 6.25 (via offered loads): I ~6.5ms, II ~6.9ms,
        III ~5.1ms, IV ~5.0ms; reproduce within 2%."""
        expected = {Architecture.I: 6555.0, Architecture.II: 6930.0,
                    Architecture.III: 5130.0, Architecture.IV: 5022.0}
        for arch, target in expected.items():
            c = 1 / solve_nonlocal(arch, 1, 0.0).throughput
            assert c == pytest.approx(target, rel=0.02), arch

    def test_throughput_grows_with_conversations(self):
        t1 = solve_nonlocal(Architecture.II, 1, 2850.0).throughput
        t2 = solve_nonlocal(Architecture.II, 2, 2850.0).throughput
        assert t2 > t1

    def test_nonlocal_saturates_slower_than_local(self):
        """Section 6.9.1: the processing load spreads across two
        nodes, so adding conversations helps more than locally."""
        from repro.gtpn import analyze as _analyze
        from repro.models import build_local_net
        local_gain = (_analyze(build_local_net(
            Architecture.I, 2)).throughput()
            / _analyze(build_local_net(Architecture.I, 1)).throughput())
        nonlocal_gain = (solve_nonlocal(Architecture.I, 2, 0.0).throughput
                         / solve_nonlocal(Architecture.I, 1, 0.0)
                         .throughput)
        assert nonlocal_gain > local_gain

    def test_history_recorded(self):
        solution = solve_nonlocal(Architecture.II, 2, 2850.0)
        assert len(solution.history) == solution.iterations
        assert solution.round_trip_time == pytest.approx(
            2 / solution.throughput)
