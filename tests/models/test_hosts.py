"""Tests for the multi-host (chapter 7 / section 6.8) parameter."""

import pytest

from repro.errors import ModelError
from repro.gtpn import analyze
from repro.kernel import run_conversation_experiment
from repro.models import (Architecture, Mode, build_local_net,
                          solve_nonlocal)
from repro.models.nonlocal_client import build_nonlocal_client_net
from repro.models.nonlocal_server import build_nonlocal_server_net


class TestLocalHosts:
    def test_two_hosts_double_arch1_throughput_at_load(self):
        """Architecture I with two hosts: twice the processing power,
        up to rendezvous serialization."""
        one = analyze(build_local_net(Architecture.I, 4, 0.0,
                                      hosts=1)).throughput()
        two = analyze(build_local_net(Architecture.I, 4, 0.0,
                                      hosts=2)).throughput()
        assert two > 1.5 * one

    def test_extra_hosts_capped_by_mp(self):
        from repro.models.extension import mp_saturation_bound
        bound = mp_saturation_bound(Architecture.II)
        three = analyze(build_local_net(Architecture.II, 4, 0.0,
                                        hosts=3)).throughput()
        assert three <= bound + 1e-12

    def test_zero_hosts_rejected(self):
        with pytest.raises(ModelError):
            build_local_net(Architecture.I, 1, hosts=0)


class TestNonlocalHosts:
    def test_nets_accept_hosts(self):
        client = build_nonlocal_client_net(Architecture.II, 2, 3000.0,
                                           hosts=2)
        server = build_nonlocal_server_net(Architecture.II, 2, 3000.0,
                                           hosts=2)
        assert client.get_place("Host").initial_tokens == 2
        assert server.get_place("Host").initial_tokens == 2

    def test_zero_hosts_rejected(self):
        with pytest.raises(ModelError):
            build_nonlocal_client_net(Architecture.I, 1, 3000.0,
                                      hosts=0)
        with pytest.raises(ModelError):
            build_nonlocal_server_net(Architecture.I, 1, 3000.0,
                                      hosts=0)

    def test_solve_nonlocal_with_two_hosts_converges(self):
        one = solve_nonlocal(Architecture.II, 2, 2850.0, hosts=1)
        two = solve_nonlocal(Architecture.II, 2, 2850.0, hosts=2)
        assert two.throughput >= one.throughput * 0.99


class TestKernelHosts:
    def test_two_host_node_faster_under_compute_load(self):
        slow = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 4, 5700.0, hosts=1,
            warmup_us=50_000, measure_us=500_000)
        fast = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 4, 5700.0, hosts=2,
            warmup_us=50_000, measure_us=500_000)
        assert fast.throughput > slow.throughput

    def test_host_pool_utilization_normalized(self):
        result = run_conversation_experiment(
            Architecture.II, Mode.LOCAL, 4, 5700.0, hosts=2,
            warmup_us=50_000, measure_us=300_000)
        # utilization is per-server-pool (0..1), not summed
        assert 0 < result.utilization["node0"]["host"] <= 1.0
