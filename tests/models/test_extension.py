"""Tests for the chapter 7 extensions and design ablations."""

import pytest

from repro.errors import ModelError
from repro.models import Architecture, Mode
from repro.models.ablations import (derive_arch3_round_trip,
                                    mp_speed_sensitivity,
                                    smart_bus_primitive_costs,
                                    smart_bus_sensitivity)
from repro.models.extension import (build_symmetric_net,
                                    compare_dedication,
                                    dedication_crossover_lock_overhead,
                                    host_scaling, mp_saturation_bound)
from repro.models.params import round_trip_sum
from repro.gtpn import analyze


class TestHostScaling:
    def test_extra_hosts_help_until_mp_saturates(self):
        points = host_scaling(Architecture.II, [1, 2, 3], 4, 2850.0)
        assert points[1].throughput > points[0].throughput
        # by three hosts the MP is the ceiling
        bound = mp_saturation_bound(Architecture.II)
        assert points[2].throughput <= bound + 1e-12
        assert points[2].throughput > 0.95 * points[1].throughput

    def test_throughput_never_exceeds_mp_bound(self):
        bound = mp_saturation_bound(Architecture.II)
        for point in host_scaling(Architecture.II, [1, 2, 4], 4, 0.0):
            assert point.throughput <= bound + 1e-12

    def test_uniprocessor_has_no_mp_bound(self):
        with pytest.raises(ModelError):
            mp_saturation_bound(Architecture.I)

    def test_smart_bus_node_scales_too(self):
        points = host_scaling(Architecture.III, [1, 2], 3, 2850.0)
        assert points[1].throughput > points[0].throughput


class TestSymmetricComparison:
    def test_symmetric_net_solves(self):
        result = analyze(build_symmetric_net(2, 1000.0))
        assert result.throughput() > 0

    def test_lock_overhead_slows_symmetric(self):
        fast = analyze(build_symmetric_net(2, 0.0,
                                           lock_overhead=0.0))
        slow = analyze(build_symmetric_net(2, 0.0,
                                           lock_overhead=2000.0))
        assert slow.throughput() < fast.throughput()

    def test_comparison_reports_both_sides(self):
        comparison = compare_dedication(2, 2850.0)
        assert comparison.dedicated_throughput > 0
        assert comparison.symmetric_throughput > 0
        # honest finding: with published constants and mild locking,
        # the symmetric organization wins raw throughput
        assert not comparison.dedication_wins

    def test_crossover_lock_overhead_is_large(self):
        """Dedication wins on throughput only under heavy locking —
        the thesis's case is cost/simplicity, not raw speed."""
        crossover = dedication_crossover_lock_overhead(2, 2850.0)
        assert crossover > 1000.0

    def test_bad_arguments_rejected(self):
        with pytest.raises(ModelError):
            build_symmetric_net(0)
        with pytest.raises(ModelError):
            build_symmetric_net(1, processors=0)
        with pytest.raises(ModelError):
            build_symmetric_net(1, lock_overhead=-1.0)


class TestSmartBusAblation:
    def test_derivation_matches_published_arch3(self):
        """16 queue ops + 4 copies replaced by bus primitives lands
        within 5% of the published architecture III tables."""
        for mode in Mode:
            derived = derive_arch3_round_trip(1.0, mode).round_trip_us
            published = round_trip_sum(Architecture.III, mode)
            assert derived == pytest.approx(published, rel=0.05), mode

    def test_primitive_costs_at_thesis_speed(self):
        queue_op, copy = smart_bus_primitive_costs(1.0)
        assert queue_op == pytest.approx(10.0)   # 9 us + 1 cycle
        assert copy == pytest.approx(20.0)       # 9 + 1 + 20 * 0.5

    def test_bus_speed_is_second_order(self):
        """The smart bus's win is eliminating software processing; a
        4x slower bus costs only a few percent of round trip."""
        slow, fast = smart_bus_sensitivity([4.0, 1.0])
        assert slow.round_trip_us < 1.1 * fast.round_trip_us

    def test_faster_bus_monotonically_better(self):
        points = smart_bus_sensitivity([0.25, 0.5, 1.0, 2.0])
        times = [p.round_trip_us for p in points]
        assert times == sorted(times)

    def test_invalid_handshake_rejected(self):
        with pytest.raises(ModelError):
            smart_bus_primitive_costs(0.0)


class TestMpSpeedAblation:
    def test_slower_mp_hurts(self):
        slow, base = mp_speed_sensitivity([0.5, 1.0], 3, 2850.0)
        assert slow.throughput < base.throughput

    def test_faster_mp_saturates_at_host(self):
        """Once the MP outruns the host, the host becomes the
        bottleneck and further MP speed buys little."""
        x2, x4 = mp_speed_sensitivity([2.0, 4.0], 3, 2850.0)
        assert x4.throughput < 1.1 * x2.throughput

    def test_unit_ratio_reproduces_published_model(self):
        from repro.models import solve
        (point,) = mp_speed_sensitivity([1.0], 2, 2850.0)
        published = solve(Architecture.II, Mode.LOCAL, 2, 2850.0)
        assert point.throughput == pytest.approx(published.throughput,
                                                 rel=1e-9)

    def test_bad_ratio_rejected(self):
        with pytest.raises(ModelError):
            mp_speed_sensitivity([0.0], 1, 0.0)
