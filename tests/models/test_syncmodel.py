"""Tests for the per-primitive re-costing of architecture II."""

import pytest

from repro import config
from repro.models import Architecture, Mode, solve, solve_grid
from repro.models.params import (LOCAL_PARAMS, NONLOCAL_CLIENT_PARAMS,
                                 NONLOCAL_SERVER_PARAMS, QUEUE_OP_US)
from repro.models.syncmodel import (local_params,
                                    nonlocal_client_params,
                                    nonlocal_server_params,
                                    queue_op_cost,
                                    round_trip_savings_us)


class TestQueueOpCost:
    def test_tas_reproduces_table_6_1_exactly(self):
        cost = queue_op_cost("tas")
        assert cost.processing_us == pytest.approx(60.0)
        assert cost.memory_cycles == pytest.approx(14.0)
        assert cost.queue_op_us == pytest.approx(QUEUE_OP_US)

    def test_cost_ordering(self):
        """Cheaper synchronization, cheaper op — LL/SC cheapest, the
        thesis's TAS most expensive, HTM paying begin/commit over
        LL/SC's free ride."""
        costs = {name: queue_op_cost(name).queue_op_us
                 for name in ("tas", "cas", "llsc", "htm")}
        assert costs["llsc"] < costs["htm"] < costs["cas"] \
            < costs["tas"]

    def test_savings_positive_except_baseline(self):
        assert round_trip_savings_us("tas") == pytest.approx(0.0)
        for name in ("cas", "llsc", "htm"):
            assert round_trip_savings_us(name) > 0


class TestScaledParams:
    def test_tas_is_the_committed_baseline_object(self):
        assert local_params("tas") is LOCAL_PARAMS[Architecture.II]
        assert nonlocal_client_params("tas") is \
            NONLOCAL_CLIENT_PARAMS[Architecture.II]
        assert nonlocal_server_params("tas") is \
            NONLOCAL_SERVER_PARAMS[Architecture.II]

    def test_only_mp_activities_scaled(self):
        base = LOCAL_PARAMS[Architecture.II]
        scaled = local_params("llsc")
        assert scaled.process_send < base.process_send
        assert scaled.match < base.match
        # host-side activities are untouched
        assert scaled.client_step == base.client_step
        assert scaled.server_step == base.server_step
        assert scaled.serve_base == base.serve_base

    def test_client_and_server_share_one_factor(self):
        client = nonlocal_client_params("cas")
        server = nonlocal_server_params("cas")
        base_c = NONLOCAL_CLIENT_PARAMS[Architecture.II]
        base_s = NONLOCAL_SERVER_PARAMS[Architecture.II]
        factor_c = client.process_send / base_c.process_send
        factor_s = server.match / base_s.match
        assert factor_c == pytest.approx(factor_s)
        assert 0 < factor_c < 1


class TestSolveWithSync:
    def test_throughput_ordering_tracks_primitive_cost(self):
        results = {name: solve(Architecture.II, Mode.LOCAL, 2,
                               sync=name).throughput
                   for name in ("tas", "cas", "llsc", "htm")}
        assert results["tas"] < results["cas"] < results["htm"] \
            < results["llsc"]

    def test_result_carries_the_primitive(self):
        result = solve(Architecture.II, Mode.LOCAL, 1, sync="cas")
        assert result.sync == "cas"

    def test_other_architectures_normalize_to_baseline(self):
        for arch in (Architecture.I, Architecture.III,
                     Architecture.IV):
            fast = solve(arch, Mode.LOCAL, 2, sync="llsc")
            base = solve(arch, Mode.LOCAL, 2)
            assert fast.sync == "tas"
            assert fast.throughput == base.throughput

    def test_ambient_config_resolves_when_sync_omitted(self):
        with config.overrides(sync="llsc"):
            ambient = solve(Architecture.II, Mode.LOCAL, 2)
        explicit = solve(Architecture.II, Mode.LOCAL, 2, sync="llsc")
        assert ambient.sync == "llsc"
        assert ambient.throughput == explicit.throughput

    def test_grid_accepts_five_tuples_and_fills_ambient(self):
        points = [(Architecture.II, Mode.LOCAL, 2, 0.0),
                  (Architecture.II, Mode.LOCAL, 2, 0.0, "llsc")]
        with config.overrides(sync="cas"):
            ambient, explicit = solve_grid(points, jobs=1)
        assert ambient.sync == "cas"
        assert explicit.sync == "llsc"
        assert ambient.throughput == \
            solve(Architecture.II, Mode.LOCAL, 2, sync="cas").throughput

    def test_nonlocal_solve_improves_with_cheap_primitive(self):
        base = solve(Architecture.II, Mode.NONLOCAL, 2)
        fast = solve(Architecture.II, Mode.NONLOCAL, 2, sync="llsc")
        assert fast.throughput > base.throughput
