"""Tests for the low-level shared-memory contention model."""

import pytest

from repro.errors import ModelError
from repro.models import (arch1_client_contention, build_contention_net,
                          contention_completion_times)
from repro.models.params import (ARCH1_CLIENT_CONTENTION_ACTIVITIES,
                                 ARCH1_CLIENT_CONTENTION_RESULTS,
                                 ContentionActivity)


def test_single_activity_completes_at_best_time():
    activity = ContentionActivity("Host", "Solo", 100, 20)
    times = contention_completion_times([activity])
    assert times["Solo"] == pytest.approx(120.0, rel=0.01)


def test_contention_inflates_completion_times():
    a = ContentionActivity("A", "A", 100, 50)
    b = ContentionActivity("B", "B", 100, 50)
    solo = contention_completion_times([a])["A"]
    contended = contention_completion_times([a, b])["A"]
    assert contended > solo


def test_memoryless_activity_unaffected_by_contention():
    a = ContentionActivity("A", "A", 100, 0)
    b = ContentionActivity("B", "B", 100, 90)
    times = contention_completion_times([a, b])
    assert times["A"] == pytest.approx(100.0, rel=0.01)


def test_table_6_2_reproduction():
    """The contention column of Table 6.2 within 1%."""
    times = arch1_client_contention()
    for name, expected in ARCH1_CLIENT_CONTENTION_RESULTS.items():
        assert times[name] == pytest.approx(expected, rel=0.01), name


def test_contention_at_least_best_for_table_6_2():
    times = arch1_client_contention()
    by_name = {a.name: a for a in ARCH1_CLIENT_CONTENTION_ACTIVITIES}
    for name, value in times.items():
        assert value >= by_name[name].best - 0.5


def test_duplicate_names_rejected():
    a = ContentionActivity("A", "X", 100, 10)
    b = ContentionActivity("B", "X", 100, 10)
    with pytest.raises(ModelError):
        build_contention_net([a, b])


def test_empty_activity_set_rejected():
    with pytest.raises(ModelError):
        build_contention_net([])


def test_full_memory_share_rejected():
    bad = ContentionActivity("A", "A", 0, 100)
    with pytest.raises(ModelError):
        build_contention_net([bad])
