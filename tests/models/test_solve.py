"""Tests for the high-level solve/offered-load API."""

import pytest

from repro.errors import ModelError
from repro.models import (Architecture, Mode, communication_time,
                          offered_load, offered_load_table, solve,
                          server_time_for_offered_load,
                          throughput_vs_offered_load)
from repro.models.params import (PAPER_OFFERED_LOADS_LOCAL,
                                 PAPER_OFFERED_LOADS_NONLOCAL)


def test_solve_returns_consistent_result():
    result = solve(Architecture.I, Mode.LOCAL, 2, 1000.0)
    assert result.conversations == 2
    assert result.throughput > 0
    assert result.round_trip_time == pytest.approx(2 / result.throughput)
    assert result.throughput_per_ms == pytest.approx(
        result.throughput * 1e3)


def test_solve_caches_identical_calls():
    a = solve(Architecture.I, Mode.LOCAL, 1, 0.0)
    b = solve(Architecture.I, Mode.LOCAL, 1, 0.0)
    assert a.throughput == b.throughput


def test_communication_time_matches_local_sum_for_arch1():
    assert communication_time(Architecture.I, Mode.LOCAL) == \
        pytest.approx(4970.0, rel=1e-6)


def test_offered_load_bounds():
    assert offered_load(Architecture.I, Mode.LOCAL, 0.0) == 1.0
    mid = offered_load(Architecture.I, Mode.LOCAL, 4970.0)
    assert mid == pytest.approx(0.5, rel=1e-6)


def test_offered_load_inversion_roundtrip():
    s = server_time_for_offered_load(Architecture.I, Mode.LOCAL, 0.4)
    assert offered_load(Architecture.I, Mode.LOCAL, s) == \
        pytest.approx(0.4, rel=1e-9)


def test_offered_load_table_local_matches_table_6_24():
    table = offered_load_table(Mode.LOCAL)
    for arch in Architecture:
        for ours, paper in zip(table[arch],
                               PAPER_OFFERED_LOADS_LOCAL[arch]):
            assert ours == pytest.approx(paper, abs=0.005), arch


def test_offered_load_table_nonlocal_matches_table_6_25():
    table = offered_load_table(Mode.NONLOCAL)
    for arch in Architecture:
        for ours, paper in zip(table[arch],
                               PAPER_OFFERED_LOADS_NONLOCAL[arch]):
            assert ours == pytest.approx(paper, abs=0.005), arch


def test_offered_load_ordering_matches_thesis():
    """Table 6.24 note: offered load for a given server time is least
    for architecture IV, nearly same for III, higher for II and I."""
    s = 5700.0
    loads = {arch: offered_load(arch, Mode.LOCAL, s)
             for arch in Architecture}
    assert loads[Architecture.IV] < loads[Architecture.III]
    assert loads[Architecture.III] < loads[Architecture.I]
    assert loads[Architecture.I] < loads[Architecture.II]


def test_throughput_vs_offered_load_curve():
    curve = throughput_vs_offered_load(
        Architecture.I, Mode.LOCAL, 1, [0.9, 0.5, 0.3])
    # lighter offered load = more compute = lower message throughput
    assert curve[0].throughput > curve[1].throughput > \
        curve[2].throughput


def test_bad_arguments_rejected():
    with pytest.raises(ModelError):
        solve(Architecture.I, Mode.LOCAL, 0)
    with pytest.raises(ModelError):
        solve(Architecture.I, Mode.LOCAL, 1, -1.0)
    with pytest.raises(ModelError):
        offered_load(Architecture.I, Mode.LOCAL, -1.0)
    with pytest.raises(ModelError):
        server_time_for_offered_load(Architecture.I, Mode.LOCAL, 0.0)
