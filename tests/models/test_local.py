"""Tests for the local-conversation GTPN models."""

import pytest

from repro.errors import ModelError
from repro.gtpn import analyze
from repro.models import Architecture, build_local_net


def throughput(arch, conversations, compute=0.0):
    return analyze(build_local_net(arch, conversations, compute)) \
        .throughput()


class TestArchitectureI:
    def test_single_conversation_cycle_is_sum_of_steps(self):
        # 1390 + 970 + 2610 = 4970 (everything serialized on the host)
        assert 1 / throughput(Architecture.I, 1) == pytest.approx(4970.0,
                                                                  rel=1e-9)

    def test_throughput_flat_in_conversations(self):
        """Section 6.9.1: 'the throughput for local conversations is
        the same irrespective of the number of conversations'."""
        base = throughput(Architecture.I, 1)
        assert throughput(Architecture.I, 2) == pytest.approx(base,
                                                              rel=1e-9)
        assert throughput(Architecture.I, 3) == pytest.approx(base,
                                                              rel=1e-9)

    def test_compute_time_adds_to_cycle(self):
        assert 1 / throughput(Architecture.I, 1, 1000.0) == \
            pytest.approx(5970.0, rel=1e-9)


class TestArchitectureII:
    def test_single_conversation_loss_is_small(self):
        """Section 6.9.1: ~10% loss at one conversation from host/MP
        information transfer."""
        c1 = 1 / throughput(Architecture.I, 1)
        c2 = 1 / throughput(Architecture.II, 1)
        loss = (c2 - c1) / c1
        assert 0.05 < loss < 0.15

    def test_throughput_grows_with_conversations(self):
        t1 = throughput(Architecture.II, 1)
        t2 = throughput(Architecture.II, 2)
        t3 = throughput(Architecture.II, 3)
        assert t2 > t1
        assert t3 > t2

    def test_growth_sublinear_mp_bandwidth_limit(self):
        """Section 6.9.1: 'Increase in throughput with the number of
        conversations is less than linear due to the finite bandwidth
        of the message coprocessor.'"""
        t1 = throughput(Architecture.II, 1)
        t3 = throughput(Architecture.II, 3)
        assert t3 < 3 * t1
        # and it stays below the MP service bound
        mp_busy = 1030.2 + 603.0 + 1264.4 + 1289.8
        assert t3 <= 1 / mp_busy + 1e-9


class TestSmartBusArchitectures:
    def test_arch3_beats_arch1_and_arch2(self):
        """Section 6.9.1: architecture III significantly better."""
        for n in (1, 2):
            t1 = throughput(Architecture.I, n)
            t2 = throughput(Architecture.II, n)
            t3 = throughput(Architecture.III, n)
            assert t3 > t1
            assert t3 > t2

    def test_arch4_close_to_arch3(self):
        """Section 6.9.3: the partitioned bus does not perform
        significantly better (memory is not the bottleneck)."""
        t3 = throughput(Architecture.III, 2)
        t4 = throughput(Architecture.IV, 2)
        assert t4 == pytest.approx(t3, rel=0.05)
        assert t4 >= t3 - 1e-12


class TestValidation:
    def test_rejects_zero_conversations(self):
        with pytest.raises(ModelError):
            build_local_net(Architecture.I, 0)

    def test_rejects_negative_compute(self):
        with pytest.raises(ModelError):
            build_local_net(Architecture.I, 1, -5.0)

    def test_net_names_distinguish_architectures(self):
        n1 = build_local_net(Architecture.I, 2)
        n3 = build_local_net(Architecture.III, 2)
        assert n1.name != n3.name

    def test_coprocessor_net_has_mp_place(self):
        net = build_local_net(Architecture.II, 1)
        assert net.has_place("MP")
        uni = build_local_net(Architecture.I, 1)
        assert not uni.has_place("MP")
