"""Tests for the transition-table views of the nets."""

import pytest

from repro.errors import ModelError
from repro.models import Architecture, Mode
from repro.models.transitions import (TRANSITION_TABLE_IDS,
                                      build_model_net,
                                      model_transition_rows,
                                      transition_rows)


def test_all_twelve_tables_mapped():
    assert len(TRANSITION_TABLE_IDS) == 12
    architectures = {entry[0] for entry in TRANSITION_TABLE_IDS.values()}
    assert architectures == set(Architecture)


def test_unknown_table_rejected():
    with pytest.raises(ModelError):
        model_transition_rows("table-9.99")


def test_local_table_frequencies_match_thesis():
    """Table 6.10 (arch II local): 1/519.9, 1/1030.2, 1/603,
    1/1264.4, 1/1289.8."""
    rows = {r.name: r for r in model_transition_rows("table-6.10")}
    assert rows["send"].frequency == "1/519.9"
    assert rows["process_send"].frequency == "1/1030.2"
    assert rows["process_receive"].frequency == "1/603"
    assert rows["match"].frequency == "1/1264.4"
    assert rows["process_reply"].frequency == "1/1289.8"
    assert rows["process_reply"].resource == "lambda"


def test_nonlocal_client_table_gates_marked():
    """Table 6.7 (arch I client): syscall send inhibited during
    interrupt processing."""
    rows = {r.name: r for r in model_transition_rows("table-6.7")}
    assert rows["send"].frequency == "<gate> -> 1/1314.9, 0"
    assert rows["cleanup"].frequency == "1/982"
    assert rows["dma_in"].frequency.startswith("<gate>")


def test_server_table_has_interrupt_dispatch():
    rows = {r.name: r for r in model_transition_rows("table-6.13")}
    assert rows["dispatch"].delay == "0"
    assert rows["match"].frequency == "1/1812.5"
    assert rows["process_reply"].frequency == \
        "<gate> -> 1/1124, 0"


def test_every_table_renders_nonempty():
    for table_id in TRANSITION_TABLE_IDS:
        rows = model_transition_rows(table_id)
        assert len(rows) >= 5, table_id
        assert any(r.resource for r in rows), table_id


def test_exit_loop_frequencies_complementary():
    """Each activity pair's labels are 1/m and 1 - 1/m."""
    for table_id in ("table-6.5", "table-6.15t", "table-6.22"):
        rows = {r.name: r for r in model_transition_rows(table_id)}
        for name, row in rows.items():
            if name.endswith(".loop"):
                base = rows[name[:-5]]
                expected = base.frequency.replace("1/", "1 - 1/") \
                    if not base.frequency.startswith("<gate>") else \
                    base.frequency.replace("-> 1/", "-> 1 - 1/")
                assert row.frequency == expected, name


def test_build_model_net_argument_validation():
    with pytest.raises(ModelError):
        build_model_net(Architecture.I, Mode.LOCAL, "client")
    with pytest.raises(ModelError):
        build_model_net(Architecture.I, Mode.NONLOCAL, None)


def test_transition_rows_on_arbitrary_net():
    from repro.gtpn import Net
    net = Net()
    a = net.place("A", tokens=1)
    net.transition("t", delay=3, frequency=0.25, inputs=[a],
                   outputs=[a], resource="r")
    (row,) = transition_rows(net)
    assert row.delay == "3"
    assert row.frequency == "0.25"
    assert row.resource == "r"