"""Tests reproducing the chapter 3 profiling tables and observations."""

import pytest

from repro.errors import ReproError
from repro.profiling import (ALL_SYSTEMS, CHARLOTTE, CHARLOTTE_NONLOCAL,
                             JASMIN, P925, UNIX_LOCAL, UNIX_NONLOCAL,
                             copy_percent, get_system, overhead_model,
                             profile_table,
                             scheduling_and_control_percent)


class TestSystemSpecs:
    def test_activity_times_sum_to_round_trip(self):
        # the thesis's own tables carry ~0.3% rounding slack (e.g.
        # Table 3.4 rows sum to 4.56 ms against a stated 4.57 ms)
        for spec in ALL_SYSTEMS:
            total = sum(a.time_us for a in spec.activities)
            assert total == pytest.approx(spec.round_trip_us,
                                          rel=0.005), spec.name

    def test_lookup_by_name(self):
        assert get_system("charlotte") is CHARLOTTE
        assert get_system("Unix (local)") is UNIX_LOCAL
        with pytest.raises(ReproError):
            get_system("multics")


class TestTableReproduction:
    def test_table_3_1_charlotte(self):
        table = profile_table(CHARLOTTE)
        assert table.round_trip_ms == pytest.approx(20.0, rel=0.01)
        row = table.row("Protocol Processing for Sender and Receiver")
        assert row.percent == pytest.approx(50.0, abs=1.0)
        assert table.row("Copy Time").percent == pytest.approx(3.0,
                                                               abs=0.5)

    def test_table_3_2_jasmin(self):
        table = profile_table(JASMIN)
        assert table.round_trip_ms == pytest.approx(0.72, rel=0.01)
        sched = table.row(
            "Actions Leading to Short-Term Scheduling Decisions")
        assert sched.percent == pytest.approx(40.0, abs=1.0)

    def test_table_3_3_925(self):
        table = profile_table(P925)
        assert table.round_trip_ms == pytest.approx(5.6, rel=0.01)
        control = table.row(
            "Checking, Addressing, and Control Block Manipulation")
        assert control.percent == pytest.approx(40.0, abs=1.0)
        assert table.row("Copy Time").percent == pytest.approx(15.0,
                                                               abs=1.0)

    def test_table_3_4_unix_local(self):
        table = profile_table(UNIX_LOCAL)
        assert table.round_trip_ms == pytest.approx(4.57, rel=0.01)
        checking = table.row(
            "Validity Checking and Control Block Manipulation")
        assert checking.percent == pytest.approx(53.4, abs=1.0)

    def test_table_3_5_unix_nonlocal(self):
        table = profile_table(UNIX_NONLOCAL)
        assert table.round_trip_ms == pytest.approx(6.8, rel=0.01)
        assert table.row("IP processing").percent == pytest.approx(
            24.0, abs=1.0)
        assert table.row("TCP processing").percent == pytest.approx(
            19.0, abs=1.0)

    def test_percentages_sum_to_100(self):
        for spec in ALL_SYSTEMS:
            table = profile_table(spec)
            assert sum(r.percent for r in table.rows) == pytest.approx(
                100.0, abs=0.1)


class TestChapter3Observations:
    def test_small_message_copy_under_20_percent(self):
        """Section 3.6 characteristic 1 (small messages)."""
        for spec in (CHARLOTTE, JASMIN, P925, UNIX_LOCAL):
            assert copy_percent(spec) < 20.0, spec.name

    def test_scheduling_and_control_dominate_locally(self):
        """Section 3.7: a large share of the round trip goes to
        short-term scheduling and control-block style work."""
        for spec in (CHARLOTTE, JASMIN, P925, UNIX_LOCAL):
            assert scheduling_and_control_percent(spec) > 40.0, spec.name

    def test_protocol_processing_dominates_unix_nonlocal(self):
        """Section 3.4: 'A large percentage of the time is spent in
        protocol processing for TCP and IP.'"""
        tcp = UNIX_NONLOCAL.activity_percent("TCP processing")
        ip = UNIX_NONLOCAL.activity_percent("IP processing")
        interrupt = UNIX_NONLOCAL.activity_percent(
            "Interrupt Processing")
        assert tcp + ip + interrupt > 40.0

    def test_fixed_overhead_values(self):
        """Section 3.4: 19.4 ms Charlotte, 0.612 ms Jasmin, 4.76 ms
        925."""
        assert CHARLOTTE.fixed_overhead_us == pytest.approx(19_400.0)
        assert JASMIN.fixed_overhead_us == pytest.approx(612.0)
        assert P925.fixed_overhead_us == pytest.approx(4_760.0)

    def test_charlotte_nonlocal_crossover_near_6000_bytes(self):
        """Section 3.4: copy time begins to dominate the non-local
        round trip around 6000 bytes."""
        assert CHARLOTTE_NONLOCAL.crossover_bytes == pytest.approx(
            6000.0, rel=0.05)

    def test_copy_fraction_grows_with_size(self):
        model = overhead_model(P925)
        assert model.copy_fraction(40) < model.copy_fraction(1000)

    def test_fixed_overhead_significant_for_medium_messages(self):
        """Section 3.4: the fixed overhead remains a significant
        round-trip component for fairly large messages (at 1000 bytes
        the 925 copy share is only 57%).  The single-point linear
        model overestimates copy (it folds per-copy setup into the
        per-byte rate), so the check uses a conservative bound."""
        model = overhead_model(P925)
        assert 1.0 - model.copy_fraction(100) > 0.5
        assert model.copy_fraction(1000) > model.copy_fraction(100)

    def test_bad_model_inputs_rejected(self):
        model = overhead_model(P925)
        with pytest.raises(ReproError):
            model.round_trip_us(-1)
