"""Tests for the profiling instruments, incl. wraparound correction."""

import pytest

from repro.errors import ReproError
from repro.profiling import HardwareTimer, KernelProfiler


class TestHardwareTimer:
    def test_reads_advance(self):
        timer = HardwareTimer(width_bits=16)
        assert timer.read() == 0
        timer.advance(100.0)
        assert timer.read() == 100

    def test_wraparound(self):
        timer = HardwareTimer(width_bits=8)
        timer.advance(300.0)
        assert timer.read() == 300 % 256

    def test_negative_advance_rejected(self):
        timer = HardwareTimer()
        with pytest.raises(ReproError):
            timer.advance(-1.0)

    def test_too_narrow_rejected(self):
        with pytest.raises(ReproError):
            HardwareTimer(width_bits=2)


class TestKernelProfiler:
    def test_basic_measurement(self):
        profiler = KernelProfiler(timer=HardwareTimer())
        profiler.profile("send", 120.0)
        profiler.profile("send", 80.0)
        assert profiler.statistics["send"].count == 2
        assert profiler.mean_time_us("send") == pytest.approx(100.0)

    def test_wraparound_corrected(self):
        # 8-bit timer wraps every 256 us; measure 100 us straddling it
        timer = HardwareTimer(width_bits=8)
        timer.advance(200.0)
        profiler = KernelProfiler(timer=timer)
        profiler.profile("op", 100.0)
        assert profiler.mean_time_us("op") == pytest.approx(100.0)

    def test_probe_overhead_subtracted(self):
        profiler = KernelProfiler(timer=HardwareTimer(),
                                  probe_overhead_ticks=5)
        profiler.profile("op", 100.0)
        # raw elapsed includes one probe (the exit-side read happens
        # after its overhead); correction recovers ~the true time
        assert profiler.mean_time_us("op") == pytest.approx(100.0,
                                                            abs=6.0)

    def test_exit_without_entry_rejected(self):
        profiler = KernelProfiler(timer=HardwareTimer())
        with pytest.raises(ReproError):
            profiler.exit("never")

    def test_reentrant_call_rejected(self):
        profiler = KernelProfiler(timer=HardwareTimer())
        profiler.enter("op")
        with pytest.raises(ReproError):
            profiler.enter("op")

    def test_clear_resets(self):
        profiler = KernelProfiler(timer=HardwareTimer())
        profiler.profile("op", 10.0)
        profiler.clear()
        assert profiler.statistics == {}

    def test_report_shape(self):
        profiler = KernelProfiler(timer=HardwareTimer())
        profiler.profile("a", 10.0)
        profiler.profile("b", 20.0)
        report = profiler.report()
        assert set(report) == {"a", "b"}
        count, total = report["b"]
        assert count == 1
        assert total == pytest.approx(20.0)

    def test_mean_of_unfinished_procedure_rejected(self):
        profiler = KernelProfiler(timer=HardwareTimer())
        profiler.enter("op")
        with pytest.raises(ReproError):
            profiler.mean_time_us("op")
