"""Tests for the Unix service-time data (Tables 3.6-3.7)."""

import pytest

from repro.errors import ReproError
from repro.profiling import (UNIX_READ_WRITE_MS, UNIX_SERVICE_TIMES_MS,
                             computation_comparable_to_communication,
                             fit_read_write, offered_load_range,
                             read_time_ms, service_time_ms, write_time_ms)


def test_table_3_6_values():
    assert service_time_ms("Open File") == pytest.approx(4.35)
    assert service_time_ms("GetTimeofDay") == pytest.approx(0.2)
    assert service_time_ms("Make Directory") == pytest.approx(18.71)


def test_unknown_service_rejected():
    with pytest.raises(ReproError):
        service_time_ms("Launch Missiles")


def test_table_3_7_values():
    assert read_time_ms(128) == pytest.approx(1.0092)
    assert write_time_ms(4096) == pytest.approx(6.1082)


def test_unmeasured_block_size_rejected():
    with pytest.raises(ReproError):
        read_time_ms(777)


def test_write_slower_than_read_at_every_size():
    for size, (read, write) in UNIX_READ_WRITE_MS.items():
        assert write > read, size


def test_times_monotone_in_block_size():
    sizes = sorted(UNIX_READ_WRITE_MS)
    reads = [read_time_ms(s) for s in sizes]
    writes = [write_time_ms(s) for s in sizes]
    assert reads == sorted(reads)
    assert writes == sorted(writes)


def test_linear_fit_reasonable():
    read_fit, write_fit = fit_read_write()
    assert read_fit.base_ms > 0
    assert read_fit.slope_ms_per_byte > 0
    # interpolation error under 25% across measured sizes
    for size in UNIX_READ_WRITE_MS:
        assert read_fit.predict_ms(size) == pytest.approx(
            read_time_ms(size), rel=0.25)
        assert write_fit.predict_ms(size) == pytest.approx(
            write_time_ms(size), rel=0.25)


def test_computation_comparable_to_communication():
    """Section 3.5's motivating observation."""
    assert computation_comparable_to_communication(4.57)


def test_offered_load_range_matches_section_6_10():
    """Local C=4.57 ms gives offered loads 0.96..0.43."""
    low, high = offered_load_range(4.57)
    assert high == pytest.approx(0.96, abs=0.01)
    assert low == pytest.approx(0.43, abs=0.01)


def test_offered_load_range_nonlocal():
    """Non-local C=6.8 ms gives 0.97..0.53."""
    low, high = offered_load_range(6.8)
    assert high == pytest.approx(0.97, abs=0.01)
    assert low == pytest.approx(0.53, abs=0.01)


def test_offered_load_range_rejects_bad_input():
    with pytest.raises(ReproError):
        offered_load_range(0.0)
