"""Tests for the smart shared-memory controller (tag table, errors)."""

import pytest

from repro.errors import MemoryError_
from repro.memory import (Direction, NULL, SharedMemory,
                          SmartMemoryController, build_layout, members)


def make_controller(size=256, **kwargs):
    memory = SharedMemory(size)
    return SmartMemoryController(memory, **kwargs), memory


class TestBlockTransfers:
    def test_read_roundtrip_in_chunks(self):
        controller, memory = make_controller()
        memory.write_block(10, list(range(7)))
        tag = controller.block_transfer("host", Direction.READ, 10, 7)
        data = []
        data += controller.block_read_data(tag, 2)
        data += controller.block_read_data(tag, 2)
        data += controller.block_read_data(tag, 2)
        data += controller.block_read_data(tag, 2)   # last odd word
        assert data == list(range(7))
        assert controller.outstanding_tags == []

    def test_write_roundtrip_in_chunks(self):
        controller, memory = make_controller()
        tag = controller.block_transfer("host", Direction.WRITE, 20, 5)
        controller.block_write_data(tag, [1, 2])
        controller.block_write_data(tag, [3, 4])
        controller.block_write_data(tag, [5])
        assert memory.read_block(20, 5) == [1, 2, 3, 4, 5]
        assert controller.outstanding_tags == []

    def test_restart_after_interleaving(self):
        # two units' transfers interleave; the tag table keeps each
        # one's progress so both complete correctly (section 5.2).
        controller, memory = make_controller()
        memory.write_block(10, [1, 2, 3, 4])
        memory.write_block(30, [9, 8, 7, 6])
        tag_a = controller.block_transfer("host", Direction.READ, 10, 4)
        tag_b = controller.block_transfer("net", Direction.READ, 30, 4)
        a = controller.block_read_data(tag_a, 2)
        b = controller.block_read_data(tag_b, 2)
        a += controller.block_read_data(tag_a, 2)
        b += controller.block_read_data(tag_b, 2)
        assert a == [1, 2, 3, 4]
        assert b == [9, 8, 7, 6]

    def test_progress_tracked(self):
        controller, memory = make_controller()
        memory.write_block(10, [0] * 6)
        tag = controller.block_transfer("host", Direction.READ, 10, 6)
        controller.block_read_data(tag, 2)
        assert controller.outstanding(tag).transferred == 2
        assert controller.outstanding(tag).remaining == 4

    def test_tag_reuse_after_completion(self):
        controller, memory = make_controller(n_tags=1)
        memory.write_block(10, [5, 6])
        tag = controller.block_transfer("host", Direction.READ, 10, 2)
        controller.block_read_data(tag, 2)
        tag2 = controller.block_transfer("host", Direction.READ, 10, 2)
        assert tag2 == tag


class TestErrorConditions:
    """Section A.5 error conditions."""

    def test_nonpositive_count(self):
        controller, _memory = make_controller()
        with pytest.raises(MemoryError_):
            controller.block_transfer("host", Direction.READ, 10, 0)

    def test_block_outside_memory(self):
        controller, _memory = make_controller(size=64)
        with pytest.raises(MemoryError_):
            controller.block_transfer("host", Direction.READ, 60, 10)

    def test_second_outstanding_request_per_unit_rejected(self):
        controller, _memory = make_controller()
        controller.block_transfer("host", Direction.READ, 10, 4)
        with pytest.raises(MemoryError_):
            controller.block_transfer("host", Direction.WRITE, 20, 2)

    def test_tag_exhaustion(self):
        controller, _memory = make_controller(n_tags=2)
        controller.block_transfer("a", Direction.READ, 10, 4)
        controller.block_transfer("b", Direction.READ, 20, 4)
        with pytest.raises(MemoryError_):
            controller.block_transfer("c", Direction.READ, 30, 4)

    def test_unknown_tag(self):
        controller, _memory = make_controller()
        with pytest.raises(MemoryError_):
            controller.block_read_data(9, 2)

    def test_direction_mismatch(self):
        controller, _memory = make_controller()
        tag = controller.block_transfer("host", Direction.READ, 10, 4)
        with pytest.raises(MemoryError_):
            controller.block_write_data(tag, [1])

    def test_overrun_write_rejected(self):
        controller, _memory = make_controller()
        tag = controller.block_transfer("host", Direction.WRITE, 10, 2)
        with pytest.raises(MemoryError_):
            controller.block_write_data(tag, [1, 2, 3])

    def test_overread_rejected(self):
        controller, memory = make_controller()
        memory.write_block(10, [1, 2])
        tag = controller.block_transfer("host", Direction.READ, 10, 2)
        controller.block_read_data(tag, 2)
        with pytest.raises(MemoryError_):
            controller.block_read_data(tag, 2)

    def test_null_queue_element_rejected(self):
        controller, _memory = make_controller()
        with pytest.raises(MemoryError_):
            controller.enqueue_control_block(NULL, 1)

    def test_bad_tag_table_size(self):
        memory = SharedMemory(64)
        with pytest.raises(MemoryError_):
            SmartMemoryController(memory, n_tags=17)


class TestQueueOperations:
    def test_atomic_queue_ops_on_layout(self):
        layout = build_layout(n_tcbs=4, n_buffers=4)
        controller = SmartMemoryController(layout.memory)
        tcb = controller.first_control_block(layout.tcb_free_list)
        assert tcb == layout.tcbs.address_of(0)
        controller.enqueue_control_block(tcb, layout.communication_list)
        assert members(layout.memory, layout.communication_list) == [tcb]
        assert controller.dequeue_control_block(
            tcb, layout.communication_list)
        assert controller.first_control_block(
            layout.communication_list) == NULL

    def test_first_on_empty_returns_null(self):
        layout = build_layout()
        controller = SmartMemoryController(layout.memory)
        assert controller.first_control_block(
            layout.computation_list) == NULL


class TestCostAccounting:
    def test_microcode_costs_accumulate(self):
        layout = build_layout(n_tcbs=4, n_buffers=4)
        controller = SmartMemoryController(layout.memory)
        controller.first_control_block(layout.tcb_free_list)      # 2.0
        tcb = layout.tcbs.address_of(0)
        controller.enqueue_control_block(tcb, layout.computation_list)
        controller.dequeue_control_block(tcb, layout.computation_list)
        # first=2, enqueue=1, dequeue=1
        assert controller.busy_cycles == pytest.approx(4.0)
        assert controller.operations == {
            "first": 1, "enqueue": 1, "dequeue": 1}

    def test_streaming_cost_half_cycle_per_word(self):
        controller, memory = make_controller()
        memory.write_block(10, [0] * 8)
        tag = controller.block_transfer("host", Direction.READ, 10, 8)
        controller.block_read_data(tag, 8)
        # request 1.0 + 8 * 0.5
        assert controller.busy_cycles == pytest.approx(5.0)
