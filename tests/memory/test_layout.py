"""Tests for shared-memory layout and the SharedMemory model."""

import pytest

from repro.errors import MemoryError_
from repro.memory import (NULL, SharedMemory, build_layout, length, members)


class TestSharedMemory:
    def test_read_write_roundtrip(self):
        memory = SharedMemory(16)
        memory.write(5, 42)
        assert memory.read(5) == 42

    def test_cycle_accounting(self):
        memory = SharedMemory(16)
        memory.write(5, 1)
        memory.read(5)
        memory.read(5)
        assert memory.cycles == 3

    def test_address_zero_reserved_as_null(self):
        memory = SharedMemory(16)
        with pytest.raises(MemoryError_):
            memory.read(0)
        with pytest.raises(MemoryError_):
            memory.write(0, 1)

    def test_out_of_range_rejected(self):
        memory = SharedMemory(16)
        with pytest.raises(MemoryError_):
            memory.read(16)
        with pytest.raises(MemoryError_):
            memory.write(-1, 0)

    def test_block_roundtrip(self):
        memory = SharedMemory(32)
        memory.write_block(4, [7, 8, 9])
        assert memory.read_block(4, 3) == [7, 8, 9]

    def test_too_small_memory_rejected(self):
        with pytest.raises(MemoryError_):
            SharedMemory(1)


class TestBlockPool:
    def test_address_index_roundtrip(self):
        layout = build_layout(n_tcbs=4, n_buffers=4)
        for i in range(4):
            addr = layout.tcbs.address_of(i)
            assert layout.tcbs.index_of(addr) == i

    def test_out_of_range_index(self):
        layout = build_layout(n_tcbs=4, n_buffers=4)
        with pytest.raises(MemoryError_):
            layout.tcbs.address_of(4)

    def test_non_base_address_rejected(self):
        layout = build_layout(n_tcbs=4, n_buffers=4)
        with pytest.raises(MemoryError_):
            layout.tcbs.index_of(layout.tcbs.base + 1)

    def test_pools_do_not_overlap(self):
        layout = build_layout(n_tcbs=8, n_buffers=8)
        assert layout.tcbs.limit <= layout.buffers.base
        assert layout.buffers.limit <= layout.memory.size


class TestBuildLayout:
    def test_free_lists_fully_linked(self):
        layout = build_layout(n_tcbs=5, n_buffers=3)
        tcbs = members(layout.memory, layout.tcb_free_list)
        buffers = members(layout.memory, layout.buffer_free_list)
        assert len(tcbs) == 5
        assert len(buffers) == 3
        assert set(tcbs) == {layout.tcbs.address_of(i) for i in range(5)}

    def test_work_lists_start_empty(self):
        layout = build_layout()
        assert layout.memory.read(layout.computation_list) == NULL
        assert layout.memory.read(layout.communication_list) == NULL

    def test_startup_cycles_not_charged(self):
        layout = build_layout()
        # the read above in this test counted, so build fresh
        fresh = build_layout()
        assert fresh.memory.cycles == 0
        assert layout is not fresh

    def test_service_lists_allocated(self):
        layout = build_layout(n_service_lists=3)
        assert len(layout.service_lists) == 3
        for addr in layout.service_lists.values():
            assert layout.memory.read(addr) == NULL

    def test_well_known_locations_distinct(self):
        layout = build_layout(n_service_lists=2)
        addresses = list(layout.well_known.values())
        assert len(addresses) == len(set(addresses))

    def test_rejects_empty_pools(self):
        with pytest.raises(MemoryError_):
            build_layout(n_tcbs=0)

    def test_free_list_lengths(self):
        layout = build_layout(n_tcbs=6, n_buffers=2)
        assert length(layout.memory, layout.tcb_free_list) == 6
        assert length(layout.memory, layout.buffer_free_list) == 2
