"""Tests for the micro-engine and Appendix A micro-programs,
including property-based equivalence with the direct queue code."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.memory import SharedMemory, build_layout, dequeue, enqueue, \
    first, members
from repro.memory.microcode import (MICRO_WORD_BITS, MicroEngine, Op,
                                    assemble)
from repro.memory.microprograms import (CONTROL_STORE,
                                        MicrocodedController,
                                        control_store_bits,
                                        control_store_words,
                                        datapath_component_count,
                                        sequencer_component_count)


class TestAssembler:
    def test_labels_resolve(self):
        routine = assemble("t", [
            (Op.MOVI, "TMP", 1),
            (Op.BZ, "TMP", "@end"),
            (Op.MOVI, "TMP", 2),
            "end:",
            (Op.RET,),
        ])
        assert routine.labels == {"end": 3}
        assert routine.length == 4

    def test_undefined_label_rejected(self):
        with pytest.raises(MemoryError_):
            assemble("t", [(Op.JMP, "@nowhere"), (Op.RET,)])

    def test_duplicate_label_rejected(self):
        with pytest.raises(MemoryError_):
            assemble("t", ["a:", "a:", (Op.RET,)])

    def test_falling_off_the_end_rejected(self):
        with pytest.raises(MemoryError_):
            assemble("t", [(Op.MOVI, "TMP", 1)])

    def test_branch_without_target_rejected(self):
        with pytest.raises(MemoryError_):
            assemble("t", [(Op.BZ, "TMP"), (Op.RET,)])


class TestMicroEngine:
    def test_arithmetic_and_moves(self):
        engine = MicroEngine(SharedMemory(32))
        routine = assemble("t", [
            (Op.MOVI, "TMP", 5),
            (Op.ADDI, "TMP", "TMP", 3),
            (Op.MOV, "CURR", "TMP"),
            (Op.OUT, "CURR"),
            (Op.RET,),
        ])
        assert engine.run(routine).result == 8

    def test_memory_roundtrip(self):
        memory = SharedMemory(32)
        engine = MicroEngine(memory)
        routine = assemble("t", [
            (Op.MOVI, "MAR", 9),
            (Op.MOVI, "MDR", 42),
            (Op.WRITE,),
            (Op.RET,),
        ])
        engine.run(routine)
        assert memory.read(9) == 42

    def test_cycle_accounting(self):
        engine = MicroEngine(SharedMemory(32))
        routine = assemble("t", [
            (Op.MOVI, "MAR", 5),
            (Op.READ,),
            (Op.RET,),
        ])
        result = engine.run(routine)
        assert result.micro_cycles == 3
        assert result.memory_cycles == 1

    def test_missing_operand_rejected(self):
        engine = MicroEngine(SharedMemory(32))
        routine = assemble("t", [(Op.IN, "TMP", "OP1"), (Op.RET,)])
        with pytest.raises(MemoryError_):
            engine.run(routine)

    def test_runaway_loop_caught(self):
        engine = MicroEngine(SharedMemory(32))
        routine = assemble("t", ["top:", (Op.JMP, "@top"), (Op.RET,)])
        with pytest.raises(MemoryError_):
            engine.run(routine)

    def test_bge_branches(self):
        engine = MicroEngine(SharedMemory(32))
        routine = assemble("t", [
            (Op.MOVI, "TMP", 5),
            (Op.MOVI, "CURR", 5),
            (Op.BGE, "TMP", "CURR", "@yes"),
            (Op.MOVI, "TMP", 0),
            "yes:",
            (Op.OUT, "TMP"),
            (Op.RET,),
        ])
        assert engine.run(routine).result == 5


class TestControlStoreBudget:
    def test_under_3000_bits(self):
        """Section 5.5: 'under 3000 bits of micro-code'."""
        assert control_store_bits() < 3000
        assert control_store_bits() == \
            control_store_words() * MICRO_WORD_BITS

    def test_all_nine_routines_present(self):
        names = {routine.name for routine in CONTROL_STORE}
        assert names == {
            "main", "enqueue_control_block", "first_control_block",
            "dequeue_control_block", "block_transfer",
            "block_read_data", "block_write_word", "read", "write"}

    def test_component_counts_match_section_5_5(self):
        """'roughly 6000' data-path and 'roughly 1000' sequencer
        active components."""
        assert datapath_component_count() == pytest.approx(6000,
                                                           rel=0.05)
        assert sequencer_component_count() == pytest.approx(1000,
                                                            rel=0.05)


def microcoded(n_blocks=12, block_size=4):
    memory = SharedMemory(2 + n_blocks * block_size)
    memory.write(1, 0)
    blocks = [2 + i * block_size for i in range(n_blocks)]
    return MicrocodedController(memory), memory, 1, blocks


class TestMicrocodedQueueOps:
    def test_fifo_behaviour(self):
        controller, _memory, lst, blocks = microcoded()
        for block in blocks[:4]:
            controller.enqueue_control_block(block, lst)
        assert [controller.first_control_block(lst)
                for _ in range(5)] == blocks[:4] + [0]

    def test_dequeue_tail_and_miss(self):
        controller, memory, lst, blocks = microcoded()
        for block in blocks[:3]:
            controller.enqueue_control_block(block, lst)
        assert controller.dequeue_control_block(blocks[2], lst)
        assert members(memory, lst) == blocks[:2]
        assert not controller.dequeue_control_block(blocks[2], lst)

    def test_main_dispatch_validates_commands(self):
        controller, _memory, _lst, _blocks = microcoded()
        for code in (0, 1, 2, 3, 4, 5, 6, 8, 9):
            assert controller.dispatch(code) == code
        for code in (7, 10, 15):
            with pytest.raises(MemoryError_):
                controller.dispatch(code)


class TestMicrocodedBlockOps:
    def test_read_resumes_across_grants(self):
        controller, memory, _lst, _blocks = microcoded()
        memory.write_block(10, list(range(9)))
        tag = controller.block_transfer("read", 10, 9)
        data = controller.block_read_data(tag, 2)
        data += controller.block_read_data(tag, 4)
        data += controller.block_read_data(tag, 3)
        assert data == list(range(9))

    def test_overrun_faults(self):
        controller, memory, _lst, _blocks = microcoded()
        memory.write_block(10, [1, 2])
        tag = controller.block_transfer("read", 10, 2)
        controller.block_read_data(tag, 2)
        # tag retired; streaming again is an unknown tag
        with pytest.raises(MemoryError_):
            controller.block_read_data(tag, 1)

    def test_zero_count_faults(self):
        controller, _memory, _lst, _blocks = microcoded()
        with pytest.raises(MemoryError_):
            controller.block_transfer("read", 10, 0)

    def test_tag_reusable_after_fault(self):
        controller, memory, _lst, _blocks = microcoded()
        with pytest.raises(MemoryError_):
            controller.block_transfer("read", 10, 0)
        tag = controller.block_transfer("read", 10, 1)
        assert tag == 0

    def test_write_then_read_back(self):
        controller, memory, _lst, _blocks = microcoded()
        tag = controller.block_transfer("write", 20, 4)
        controller.block_write_data(tag, [4, 3, 2, 1])
        assert memory.read_block(20, 4) == [4, 3, 2, 1]

    def test_direction_mismatch(self):
        controller, memory, _lst, _blocks = microcoded()
        tag = controller.block_transfer("write", 20, 2)
        with pytest.raises(MemoryError_):
            controller.block_read_data(tag, 1)


# ----------------------------------------------------------------------
# property: micro-code == direct implementation
# ----------------------------------------------------------------------

@settings(max_examples=150)
@given(st.lists(st.tuples(st.sampled_from(["enq", "first", "deq"]),
                          st.integers(0, 9)), max_size=25))
def test_property_microcode_equivalent_to_direct(script):
    """Random op sequences give identical lists and results."""
    controller, mc_memory, mc_list, blocks = microcoded()
    ref_memory = SharedMemory(mc_memory.size)
    ref_memory.write(1, 0)
    inside: set[int] = set()

    for op, i in script:
        block = blocks[i]
        if op == "enq":
            if i in inside:
                continue
            controller.enqueue_control_block(block, mc_list)
            enqueue(ref_memory, block, 1)
            inside.add(i)
        elif op == "first":
            got = controller.first_control_block(mc_list)
            expect = first(ref_memory, 1)
            assert got == expect
            if got:
                inside.discard(blocks.index(got))
        else:
            got = controller.dequeue_control_block(block, mc_list)
            expect = dequeue(ref_memory, block, 1)
            assert got == expect
            inside.discard(i)
        assert members(mc_memory, mc_list) == members(ref_memory, 1)


@settings(max_examples=60)
@given(st.integers(1, 20), st.data())
def test_property_block_read_chunking_irrelevant(total, data):
    """Any chunking of a block read returns the same words."""
    memory = SharedMemory(64)
    payload = list(range(100, 100 + total))
    memory.write_block(10, payload)
    controller = MicrocodedController(memory)
    tag = controller.block_transfer("read", 10, total)
    out: list[int] = []
    remaining = total
    while remaining:
        chunk = data.draw(st.integers(1, remaining))
        out += controller.block_read_data(tag, chunk)
        remaining -= chunk
    assert out == payload
