"""Tests for conventional locking (spin locks + software queue ops)."""

import pytest

from repro.errors import MemoryError_
from repro.memory import SharedMemory, members
from repro.memory.locking import (LockedQueueOps,
                                  SOFTWARE_QUEUE_MEMORY_CYCLES,
                                  SpinLock)


def make_memory():
    memory = SharedMemory(128)
    memory.write(1, 0)        # list tail pointer
    blocks = [8 + i * 4 for i in range(8)]
    memory.cycles = 0
    return memory, 1, blocks


class TestSpinLock:
    def test_acquire_release_cycle(self):
        memory, _lst, _blocks = make_memory()
        lock = SpinLock(memory, 2)
        assert not lock.held
        assert lock.try_acquire()
        assert lock.held
        lock.release()
        assert not lock.held

    def test_second_acquire_fails_while_held(self):
        memory, _lst, _blocks = make_memory()
        lock = SpinLock(memory, 2)
        assert lock.try_acquire()
        assert not lock.try_acquire()
        assert lock.contentions == 1

    def test_release_without_hold_rejected(self):
        memory, _lst, _blocks = make_memory()
        lock = SpinLock(memory, 2)
        with pytest.raises(MemoryError_):
            lock.release()

    def test_spin_bound(self):
        memory, _lst, _blocks = make_memory()
        lock = SpinLock(memory, 2)
        lock.try_acquire()
        with pytest.raises(MemoryError_):
            lock.acquire(max_spins=5)

    def test_acquire_counts_spins(self):
        memory, _lst, _blocks = make_memory()
        lock = SpinLock(memory, 2)
        assert lock.acquire() == 0       # uncontended


class TestLockedQueueOps:
    def test_queue_semantics_preserved(self):
        memory, lst, blocks = make_memory()
        ops = LockedQueueOps(memory, 2)
        for block in blocks[:3]:
            ops.enqueue(block, lst)
        assert members(memory, lst) == blocks[:3]
        assert ops.first(lst) == blocks[0]
        assert ops.dequeue(blocks[2], lst)
        assert members(memory, lst) == [blocks[1]]

    def test_lock_released_after_each_op(self):
        memory, lst, blocks = make_memory()
        ops = LockedQueueOps(memory, 2)
        ops.enqueue(blocks[0], lst)
        assert not ops.lock.held

    def test_lock_released_even_on_error(self):
        memory, lst, _blocks = make_memory()
        ops = LockedQueueOps(memory, 2)
        with pytest.raises(MemoryError_):
            ops.enqueue(9999, lst)       # out-of-range address
        assert not ops.lock.held

    def test_memory_cycle_accounting(self):
        memory, lst, blocks = make_memory()
        ops = LockedQueueOps(memory, 2)
        ops.enqueue(blocks[0], lst)
        ops.enqueue(blocks[1], lst)
        cost = ops.history[-1]
        assert cost.operation == "enqueue"
        # lock RMW (2) + unlock check/write (2) + algorithm accesses
        assert cost.memory_cycles >= 6

    def test_measured_cycles_below_published_figure(self):
        """Table 6.1 prices the full software path at 14 memory
        cycles; the bare list manipulation under lock costs less (the
        thesis figure includes surrounding control-block accesses)."""
        memory, lst, blocks = make_memory()
        ops = LockedQueueOps(memory, 2)
        for block in blocks[:4]:
            ops.enqueue(block, lst)
        for _ in range(4):
            ops.first(lst)
        for name in ("enqueue", "first"):
            assert 6 <= ops.mean_cycles(name) <= \
                SOFTWARE_QUEUE_MEMORY_CYCLES, name

    def test_mean_cycles_requires_history(self):
        memory, _lst, _blocks = make_memory()
        ops = LockedQueueOps(memory, 2)
        with pytest.raises(MemoryError_):
            ops.mean_cycles()


def test_raising_operation_recorded_and_lock_released():
    """A queue algorithm fault must keep its cost on the books
    (flagged failed) and must not leave the lock held."""
    memory, lst, _blocks = make_memory()
    ops = LockedQueueOps(memory, 2)
    with pytest.raises(MemoryError_):
        ops.enqueue(10_000, lst)         # out-of-range block address
    assert len(ops.history) == 1
    cost = ops.history[0]
    assert cost.failed
    assert cost.operation == "enqueue"
    assert cost.memory_cycles > 0        # lock round trip + the fault
    # the lock was released on the way out: the next op succeeds
    ops.enqueue(8, lst)
    assert not ops.history[-1].failed
    assert members(memory, lst) == [8]
