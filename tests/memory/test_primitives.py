"""Tests for the pluggable synchronization primitives.

The load-bearing property is *differential*: all four backends run
the same section 5.1 queue algorithms, so from any interleaved
operation sequence they must produce bit-identical queue contents —
and all of them must agree with a plain ``collections.deque`` FIFO
model.  The backends are allowed to differ only in their recorded
costs, which the unit tests below pin at zero contention.
"""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_, ReproError
from repro.memory import NULL, SharedMemory, members
from repro.memory.primitives import (DEFAULT_HTM_RETRIES,
                                     PRIMITIVE_NAMES, PRIMITIVES,
                                     CasQueue, HtmQueue, QueuePrimitive,
                                     create_primitive)

LIST = 1
LOCK = 2
BLOCKS = tuple(4 + 2 * i for i in range(8))


def make_primitive(name, **options):
    memory = SharedMemory(64)
    memory.write(LIST, NULL)
    memory.cycles = 0
    return create_primitive(name, memory, LOCK, **options), memory


class TestRegistry:
    def test_every_name_registered_and_protocol_conformant(self):
        assert set(PRIMITIVE_NAMES) == set(PRIMITIVES)
        for name in PRIMITIVE_NAMES:
            prim, _memory = make_primitive(name)
            assert isinstance(prim, QueuePrimitive)
            assert prim.name == name

    def test_unknown_name_rejected(self):
        memory = SharedMemory(64)
        with pytest.raises(ReproError):
            create_primitive("mutex", memory, LOCK)

    def test_fail_rate_must_leave_room_for_success(self):
        with pytest.raises(ReproError):
            make_primitive("cas", fail_rate=1.0)


@pytest.mark.parametrize("name", PRIMITIVE_NAMES)
class TestQueueSemantics:
    def test_fifo_round_trip(self, name):
        prim, memory = make_primitive(name)
        for block in BLOCKS[:3]:
            prim.enqueue(block, LIST)
        assert members(memory, LIST) == list(BLOCKS[:3])
        assert prim.first(LIST) == BLOCKS[0]
        assert prim.dequeue(BLOCKS[2], LIST) is True
        assert prim.dequeue(BLOCKS[2], LIST) is False
        assert prim.first(LIST) == BLOCKS[1]
        assert prim.first(LIST) == NULL

    def test_every_operation_recorded(self, name):
        prim, _memory = make_primitive(name)
        prim.enqueue(BLOCKS[0], LIST)
        prim.first(LIST)
        prim.dequeue(BLOCKS[0], LIST)
        assert [c.operation for c in prim.history] == \
            ["enqueue", "first", "dequeue"]
        assert all(not c.failed and c.retries == 0
                   for c in prim.history)


#: Zero-contention (reads, writes) of an enqueue onto a two-element
#: list: the bare algorithm costs 2 reads + 3 writes; each primitive
#: adds its envelope.  These are the rows repro.bus.syncedges derives
#: independently from the microcode.
ENQUEUE_COSTS = {
    "tas": (4, 5),      # + lock acquire (R+W) and release (R+W)
    "cas": (3, 3),      # + the CAS load-compare
    "llsc": (2, 3),     # LL/SC ride the algorithm's own accesses
    "htm": (2, 3),      # begin/commit are processor-internal
}


@pytest.mark.parametrize("name", PRIMITIVE_NAMES)
def test_zero_contention_enqueue_cost(name):
    prim, _memory = make_primitive(name)
    prim.enqueue(BLOCKS[0], LIST)
    prim.enqueue(BLOCKS[1], LIST)
    prim.enqueue(BLOCKS[2], LIST)        # onto a two-element list
    cost = prim.history[-1]
    assert (cost.reads, cost.writes) == ENQUEUE_COSTS[name]
    assert cost.bus_transactions == cost.reads + cost.writes
    assert cost.memory_cycles == cost.bus_transactions
    assert cost.retries == 0 and not cost.failed


@pytest.mark.parametrize("name", PRIMITIVE_NAMES)
def test_failed_operation_stays_on_the_books(name):
    """An algorithm fault must not vanish from the cost history."""
    prim, _memory = make_primitive(name)
    prim.enqueue(BLOCKS[0], LIST)
    with pytest.raises(MemoryError_):
        prim.enqueue(10_000, LIST)       # out-of-range block address
    cost = prim.history[-1]
    assert cost.failed
    assert cost.memory_cycles > 0        # the cycles were consumed


def test_cas_gives_up_after_retry_budget_and_keeps_retries():
    prim, _memory = make_primitive("cas", fail_rate=0.999, seed=0,
                                   max_retries=3)
    with pytest.raises(MemoryError_):
        prim.enqueue(BLOCKS[0], LIST)
    cost = prim.history[-1]
    assert cost.failed
    assert cost.retries == 3             # charged before the give-up
    assert cost.reads >= 3               # each failed CAS probed the bus


def test_llsc_failed_reservation_charges_only_loads():
    prim, memory = make_primitive("llsc", fail_rate=0.5, seed=1)
    baseline, _memory = make_primitive("llsc")
    for block in BLOCKS[:4]:
        prim.enqueue(block, LIST)
        baseline.enqueue(block, LIST)
    assert prim.total_retries() > 0
    assert members(memory, LIST) == list(BLOCKS[:4])
    # retries re-pay the attempt's reads, never any writes
    for cost, base in zip(prim.history, baseline.history):
        assert cost.writes == base.writes
        assert cost.reads >= base.reads


def test_htm_falls_back_to_lock_after_aborts():
    prim, memory = make_primitive("htm", fail_rate=0.999, seed=0)
    assert isinstance(prim, HtmQueue)
    prim.enqueue(BLOCKS[0], LIST)        # aborts, then the lock path
    assert prim.fallbacks == 1
    cost = prim.history[-1]
    assert not cost.failed
    assert cost.retries == DEFAULT_HTM_RETRIES
    assert members(memory, LIST) == [BLOCKS[0]]
    # the fallback paid the TAS lock round trip (2 extra writes) on
    # top of the bare empty-list enqueue (2 writes)
    assert cost.writes == 4


# -- differential property suite --------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"),
                  st.integers(0, len(BLOCKS) - 1)),
        st.tuples(st.just("first"), st.just(0)),
        st.tuples(st.just("dequeue"),
                  st.integers(0, len(BLOCKS) - 1))),
    max_size=30)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, fail_rate=st.sampled_from([0.0, 0.3]),
       seed=st.integers(0, 2 ** 16))
def test_backends_agree_with_deque_model(ops, fail_rate, seed):
    """Any interleaving leaves all four backends bit-identical to a
    deque FIFO model — contents, order, and per-op return values."""
    prims = {name: make_primitive(name, fail_rate=fail_rate, seed=seed)
             for name in PRIMITIVE_NAMES}
    model: collections.deque = collections.deque()
    for kind, index in ops:
        block = BLOCKS[index]
        if kind == "enqueue":
            if block in model:
                continue                 # a block lives on one list
            model.append(block)
            for prim, _memory in prims.values():
                prim.enqueue(block, LIST)
        elif kind == "first":
            expected = model.popleft() if model else NULL
            for name, (prim, _memory) in prims.items():
                assert prim.first(LIST) == expected, name
        else:
            expected = block in model
            if expected:
                model.remove(block)
            for name, (prim, _memory) in prims.items():
                assert prim.dequeue(block, LIST) is expected, name
    for name, (_prim, memory) in prims.items():
        assert members(memory, LIST) == list(model), name


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_htm_retry_accounting_deterministic_under_fixed_seed(seed):
    runs = []
    for _repeat in range(2):
        prim, _memory = make_primitive("htm", fail_rate=0.5, seed=seed)
        for block in BLOCKS[:4]:
            prim.enqueue(block, LIST)
        prim.first(LIST)
        prim.dequeue(BLOCKS[2], LIST)
        runs.append((tuple(prim.history), prim.fallbacks))
    assert runs[0] == runs[1]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2 ** 16), name=st.sampled_from(("cas",
                                                           "llsc")))
def test_optimistic_retry_accounting_deterministic(seed, name):
    histories = []
    for _repeat in range(2):
        prim, _memory = make_primitive(name, fail_rate=0.4, seed=seed)
        for block in BLOCKS[:5]:
            prim.enqueue(block, LIST)
        prim.dequeue(BLOCKS[1], LIST)
        histories.append(tuple(prim.history))
    assert histories[0] == histories[1]
