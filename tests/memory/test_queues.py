"""Tests for the circular-list queue primitives, including the
hypothesis property tests required on core data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (NEXT_OFFSET, NULL, SharedMemory, dequeue, enqueue,
                          first, length, members)


def make_memory(n_blocks=16, block_size=4):
    """Memory with a list-tail pointer at 1 and blocks after it."""
    memory = SharedMemory(2 + n_blocks * block_size)
    memory.write(1, NULL)
    memory.cycles = 0
    blocks = [2 + i * block_size for i in range(n_blocks)]
    return memory, 1, blocks


def test_enqueue_into_empty_list_makes_singleton():
    memory, lst, blocks = make_memory()
    enqueue(memory, blocks[0], lst)
    assert memory.read(lst) == blocks[0]
    assert memory.read(blocks[0] + NEXT_OFFSET) == blocks[0]
    assert members(memory, lst) == [blocks[0]]


def test_enqueue_appends_at_tail_in_fifo_order():
    memory, lst, blocks = make_memory()
    for block in blocks[:4]:
        enqueue(memory, block, lst)
    assert members(memory, lst) == blocks[:4]
    assert memory.read(lst) == blocks[3]      # tail is last enqueued


def test_first_returns_null_on_empty():
    memory, lst, _blocks = make_memory()
    assert first(memory, lst) == NULL


def test_first_dequeues_head():
    memory, lst, blocks = make_memory()
    for block in blocks[:3]:
        enqueue(memory, block, lst)
    assert first(memory, lst) == blocks[0]
    assert members(memory, lst) == blocks[1:3]


def test_first_on_singleton_sets_list_null():
    memory, lst, blocks = make_memory()
    enqueue(memory, blocks[0], lst)
    assert first(memory, lst) == blocks[0]
    assert memory.read(lst) == NULL


def test_fifo_order_preserved():
    memory, lst, blocks = make_memory()
    for block in blocks[:5]:
        enqueue(memory, block, lst)
    out = [first(memory, lst) for _ in range(5)]
    assert out == blocks[:5]
    assert first(memory, lst) == NULL


def test_dequeue_middle_element():
    memory, lst, blocks = make_memory()
    for block in blocks[:3]:
        enqueue(memory, block, lst)
    assert dequeue(memory, blocks[1], lst)
    assert members(memory, lst) == [blocks[0], blocks[2]]


def test_dequeue_tail_updates_list_pointer():
    memory, lst, blocks = make_memory()
    for block in blocks[:3]:
        enqueue(memory, block, lst)
    assert dequeue(memory, blocks[2], lst)
    assert memory.read(lst) == blocks[1]
    assert members(memory, lst) == blocks[:2]


def test_dequeue_head():
    memory, lst, blocks = make_memory()
    for block in blocks[:3]:
        enqueue(memory, block, lst)
    assert dequeue(memory, blocks[0], lst)
    assert members(memory, lst) == [blocks[1], blocks[2]]


def test_dequeue_singleton_empties_list():
    memory, lst, blocks = make_memory()
    enqueue(memory, blocks[0], lst)
    assert dequeue(memory, blocks[0], lst)
    assert memory.read(lst) == NULL


def test_dequeue_absent_element_is_noop():
    memory, lst, blocks = make_memory()
    enqueue(memory, blocks[0], lst)
    enqueue(memory, blocks[1], lst)
    assert not dequeue(memory, blocks[5], lst)
    assert members(memory, lst) == blocks[:2]


def test_dequeue_from_empty_list_is_noop():
    memory, lst, blocks = make_memory()
    assert not dequeue(memory, blocks[0], lst)


def test_interleaved_enqueue_first():
    memory, lst, blocks = make_memory()
    enqueue(memory, blocks[0], lst)
    enqueue(memory, blocks[1], lst)
    assert first(memory, lst) == blocks[0]
    enqueue(memory, blocks[2], lst)
    assert first(memory, lst) == blocks[1]
    assert first(memory, lst) == blocks[2]
    assert first(memory, lst) == NULL


# ----------------------------------------------------------------------
# property-based tests: the circular list behaves as a FIFO queue under
# enqueue/first, and dequeue removes exactly the named element.
# ----------------------------------------------------------------------

@settings(max_examples=200)
@given(st.lists(st.sampled_from(range(12)), max_size=30))
def test_property_enqueue_first_is_fifo(script):
    """Interleaved enqueues (by index) match a reference FIFO."""
    memory, lst, blocks = make_memory()
    reference: list[int] = []
    enqueued: set[int] = set()
    for i in script:
        if i in enqueued:
            # toggle: do a `first` instead of re-enqueueing a block
            got = first(memory, lst)
            expect = reference.pop(0) if reference else NULL
            assert got == expect
            if got != NULL:
                enqueued.discard(blocks.index(got))
        else:
            enqueue(memory, blocks[i], lst)
            reference.append(blocks[i])
            enqueued.add(i)
        assert members(memory, lst) == reference


@settings(max_examples=200)
@given(st.sets(st.sampled_from(range(12)), min_size=1, max_size=12),
       st.data())
def test_property_dequeue_any_element(indices, data):
    """Dequeue of an arbitrary member leaves exactly the others."""
    memory, lst, blocks = make_memory()
    ordered = sorted(indices)
    for i in ordered:
        enqueue(memory, blocks[i], lst)
    victim = data.draw(st.sampled_from(ordered))
    assert dequeue(memory, blocks[victim], lst)
    expected = [blocks[i] for i in ordered if i != victim]
    assert members(memory, lst) == expected
    # second removal of the same element is a no-op
    assert not dequeue(memory, blocks[victim], lst)
    assert members(memory, lst) == expected


@settings(max_examples=100)
@given(st.lists(st.integers(0, 11), min_size=1, max_size=24))
def test_property_length_consistent(script):
    """length() == enqueues - successful firsts at every step."""
    memory, lst, blocks = make_memory()
    inside: set[int] = set()
    for i in script:
        if i in inside:
            continue
        enqueue(memory, blocks[i], lst)
        inside.add(i)
        assert length(memory, lst) == len(inside)
    while inside:
        got = first(memory, lst)
        inside.discard(blocks.index(got))
        assert length(memory, lst) == len(inside)


def test_first_clears_removed_elements_next_link():
    """A dequeued block is recycled onto other lists; a stale NEXT
    aimed into the old list must not survive the removal."""
    memory, lst, blocks = make_memory()
    for block in blocks[:3]:
        enqueue(memory, block, lst)
    head = first(memory, lst)
    assert memory.read(head + NEXT_OFFSET) == NULL
    # singleton removal too
    memory2, lst2, blocks2 = make_memory()
    enqueue(memory2, blocks2[0], lst2)
    assert first(memory2, lst2) == blocks2[0]
    assert memory2.read(blocks2[0] + NEXT_OFFSET) == NULL


def test_block_recycles_across_queues_without_stale_link():
    """The kernel lifecycle: free list -> message queue -> free list,
    with the block's link never pointing into a list it left."""
    memory = SharedMemory(32)
    free_list, msg_list = 1, 2
    blocks = [4, 6, 8]
    for block in blocks:
        enqueue(memory, block, free_list)
    block = first(memory, free_list)
    assert memory.read(block + NEXT_OFFSET) == NULL   # the window
    enqueue(memory, block, msg_list)
    assert members(memory, msg_list) == [block]
    assert members(memory, free_list) == blocks[1:]
    recycled = first(memory, msg_list)
    assert recycled == block
    enqueue(memory, recycled, free_list)
    assert members(memory, free_list) == blocks[1:] + [block]
