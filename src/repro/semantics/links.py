"""Charlotte's link semantics (section 3.2).

Charlotte processes communicate over two-way *links*.  The defining
characteristics reproduced here:

* the processes at the two ends have **equal rights** — either may
  use, transfer (``move``) or ``destroy`` the link unilaterally;
* messages are **not buffered** (reliable datagrams of arbitrary
  size): a send completes only when it meets a receive on the other
  end;
* posting a send/receive is synchronous while **completion is
  asynchronous** — the poster may ``poll`` the completion status or
  wait (provide a callback);
* a receive may name **one link or all links** the process holds as
  the source of the next message (section 3.2.5).

Operations charge the host with Charlotte's measured activity times
(Table 3.1), tying the semantic model to the chapter 3 profile: each
matched exchange pays the link-translation cost on posting and the
protocol-processing plus copy cost on delivery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import KernelError
from repro.kernel.node import Node
from repro.kernel.tasks import Task
from repro.profiling.systems import CHARLOTTE

_link_ids = itertools.count(1)

#: Per-operation host costs from the Charlotte profile (Table 3.1),
#: halved where the table's figure covers both round-trip directions.
POST_COST_US = 4_600.0 / 2          # link translation + selection
MATCH_COST_US = 10_000.0 / 2        # protocol processing, one way
COPY_COST_PER_KB_US = 600.0         # copy time for 1000 bytes


@dataclass
class _PendingOp:
    task: Task
    data: object = None
    size_bytes: int = 0
    on_complete: Callable | None = None
    completed: bool = False


@dataclass
class Link:
    """A Charlotte link: a two-way channel between two processes."""

    link_id: int
    ends: dict[str, str]            # "A"/"B" -> task name
    destroyed: bool = False
    #: pending operations per direction, keyed by the *receiving* end
    pending_sends: dict[str, list[_PendingOp]] = field(
        default_factory=lambda: {"A": [], "B": []})
    pending_receives: dict[str, list[_PendingOp]] = field(
        default_factory=lambda: {"A": [], "B": []})

    def end_of(self, task_name: str) -> str:
        for end, owner in self.ends.items():
            if owner == task_name:
                return end
        raise KernelError(
            f"task {task_name} holds no end of link {self.link_id}")

    def other(self, end: str) -> str:
        return "B" if end == "A" else "A"


class CharlotteLinks:
    """The link layer bound to one node."""

    def __init__(self, node: Node):
        self.node = node
        self.links: dict[int, Link] = {}
        self.matches = 0

    # ------------------------------------------------------------------
    # link lifecycle
    # ------------------------------------------------------------------
    def create_link(self, task_a: Task, task_b: Task) -> Link:
        """Create a link between two processes (ends A and B)."""
        if task_a.name == task_b.name:
            raise KernelError("a link needs two distinct processes")
        link = Link(link_id=next(_link_ids),
                    ends={"A": task_a.name, "B": task_b.name})
        self.links[link.link_id] = link
        return link

    def move(self, task: Task, link: Link, new_owner: Task) -> None:
        """Transfer *task*'s end of the link to *new_owner*.

        Either end may do this unilaterally (equal rights) — this is
        part of what makes Charlotte's validity checking "very
        complex" (section 3.2.1).
        """
        self._check_alive(link)
        end = link.end_of(task.name)
        link.ends[end] = new_owner.name

    def destroy(self, task: Task, link: Link) -> None:
        """Destroy the link; either end may do so unilaterally.

        Pending operations complete with a None delivery (cancelled).
        """
        self._check_alive(link)
        link.end_of(task.name)      # validates ownership
        link.destroyed = True
        for side in ("A", "B"):
            for op in link.pending_sends[side] + \
                    link.pending_receives[side]:
                if not op.completed and op.on_complete is not None:
                    op.completed = True
                    op.on_complete(None)
            link.pending_sends[side].clear()
            link.pending_receives[side].clear()

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, task: Task, link: Link, data: object,
             size_bytes: int = 0,
             on_complete: Callable[[object], None] | None = None,
             ) -> _PendingOp:
        """Post a send on *task*'s end; completes when matched."""
        self._check_alive(link)
        end = link.end_of(task.name)
        op = _PendingOp(task=task, data=data, size_bytes=size_bytes,
                        on_complete=on_complete)
        receiver_end = link.other(end)
        link.pending_sends[receiver_end].append(op)
        self.node.processors.host.submit(
            POST_COST_US,
            lambda: self._try_match(link, receiver_end),
            label="link post send")
        return op

    def receive(self, task: Task, link: Link,
                on_message: Callable[[object], None]) -> _PendingOp:
        """Post a receive on *task*'s end of one specific link."""
        self._check_alive(link)
        end = link.end_of(task.name)
        op = _PendingOp(task=task, on_complete=on_message)
        link.pending_receives[end].append(op)
        self.node.processors.host.submit(
            POST_COST_US, lambda: self._try_match(link, end),
            label="link post receive")
        return op

    def receive_any(self, task: Task,
                    on_message: Callable[[object], None],
                    ) -> list[_PendingOp]:
        """Post a receive on *all* links the process holds.

        The first arriving message completes the whole group (the
        Charlotte "all links" source specification); the other posts
        are withdrawn.
        """
        group: list[_PendingOp] = []
        done = {"fired": False}

        def once(data, _group=group):
            if not done["fired"] and data is not None:
                done["fired"] = True
                for other in group:
                    other.completed = True
                on_message(data)

        posted = False
        for link in self.links.values():
            if link.destroyed:
                continue
            try:
                end = link.end_of(task.name)
            except KernelError:
                continue
            posted = True
            op = _PendingOp(task=task, on_complete=once)
            link.pending_receives[end].append(op)
            group.append(op)
            self.node.processors.host.submit(
                POST_COST_US,
                lambda link=link, end=end: self._try_match(link, end),
                label="link post receive-any")
        if not posted:
            raise KernelError(
                f"task {task.name} holds no links to receive on")
        return group

    def poll(self, op: _PendingOp) -> bool:
        """Completion status of a posted operation (section 3.2.4)."""
        return op.completed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _try_match(self, link: Link, end: str) -> None:
        """Match the oldest live send/receive pair addressed to *end*."""
        if link.destroyed:
            return
        sends = [op for op in link.pending_sends[end]
                 if not op.completed]
        receives = [op for op in link.pending_receives[end]
                    if not op.completed]
        if not sends or not receives:
            return
        send, receive = sends[0], receives[0]
        link.pending_sends[end].remove(send)
        link.pending_receives[end].remove(receive)
        self.matches += 1
        copy_cost = COPY_COST_PER_KB_US * send.size_bytes / 1000.0
        self.node.processors.host.submit(
            MATCH_COST_US + copy_cost,
            lambda: self._deliver(link, end, send, receive),
            label="link protocol processing")

    def _deliver(self, link: Link, end: str, send: _PendingOp,
                 receive: _PendingOp) -> None:
        send.completed = True
        receive.completed = True
        if receive.on_complete is not None:
            receive.on_complete(send.data)
        if send.on_complete is not None:
            send.on_complete(send.data)
        # a receive-any group member may have re-enabled matching
        self._try_match(link, end)

    def _check_alive(self, link: Link) -> None:
        if link.destroyed:
            raise KernelError(f"link {link.link_id} was destroyed")
        if link.link_id not in self.links:
            raise KernelError(f"unknown link {link.link_id}")
