"""The IPC semantic flavors surveyed in section 3.2.

The thesis profiles four systems whose IPC primitives differ in
connection style, buffering, and process control:

* :class:`CharlotteLinks` — two-way links with equal rights at both
  ends, unbuffered rendezvous, asynchronous completion;
* :class:`JasminPaths` — unidirectional paths with giftable send ends,
  kernel-buffered fixed-size messages, group receive;
* :class:`UnixSockets` — bound/connected byte streams with kernel
  buffering and a non-blocking option;
* the 925's services live in :mod:`repro.kernel` itself (the primary
  substrate).

Each flavor runs on the kernel simulator's nodes and charges the host
with its system's measured chapter 3 activity times, so the semantic
differences the thesis describes (e.g. link-protocol complexity vs
socket simplicity) are backed by the same numbers as the profiling
tables.
"""

from repro.semantics.links import CharlotteLinks, Link
from repro.semantics.paths import JasminPaths, Path
from repro.semantics.sockets import Socket, UnixSockets, WouldBlock

__all__ = [
    "CharlotteLinks",
    "JasminPaths",
    "Link",
    "Path",
    "Socket",
    "UnixSockets",
    "WouldBlock",
]
