"""Unix 4.2bsd socket semantics (section 3.2).

Sockets are "two-way communication channels between any two processes
... the logical extension to the idea of pipes":

* connection-oriented: a server ``bind``s a name and ``accept``s;
  a client ``connect``s, yielding a connected pair;
* messages are **arbitrary-sized byte streams buffered by the
  kernel** — writes append to the peer's receive buffer, reads drain
  whatever is available (stream, not datagram, semantics);
* once bound, sockets are static and validity checking is cheap
  compared to Charlotte links (section 3.2.1);
* primitives block when resources are unavailable, but a per-socket
  **non-blocking option** can be set (section 3.2.3).

Operations charge the host with the Unix profile's measured activity
times (Table 3.4): socket-routine, buffer-management and copy costs.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import KernelError
from repro.kernel.node import Node
from repro.kernel.tasks import Task

_socket_ids = itertools.count(1)

#: Host costs from the Unix local profile (Table 3.4), halved where
#: the table figure covers a full round trip of two transfers.
SOCKET_ROUTINE_US = 2_440.0 / 4      # validity check per operation
BUFFER_MANAGEMENT_US = 460.0 / 2
COPY_PER_KB_US = 880.0 / 2 / 0.128   # from the 128-byte figure

#: Default kernel buffer per socket direction (bytes).
DEFAULT_BUFFER_BYTES = 4096


@dataclass
class Socket:
    """One endpoint of a connected pair."""

    socket_id: int
    owner: str
    peer: "Socket | None" = None
    receive_buffer: deque = field(default_factory=deque)
    buffered_bytes: int = 0
    buffer_limit: int = DEFAULT_BUFFER_BYTES
    nonblocking: bool = False
    closed: bool = False


@dataclass
class _Listener:
    name: str
    owner: str
    backlog: deque = field(default_factory=deque)
    accepts: deque = field(default_factory=deque)


class WouldBlock(KernelError):
    """A non-blocking operation could not proceed (EWOULDBLOCK)."""


class UnixSockets:
    """The socket layer bound to one node."""

    def __init__(self, node: Node):
        self.node = node
        self._listeners: dict[str, _Listener] = {}
        self._blocked_writes: list[tuple] = []
        self._blocked_reads: list[tuple] = []

    # ------------------------------------------------------------------
    # connection establishment
    # ------------------------------------------------------------------
    def bind(self, task: Task, name: str) -> _Listener:
        """Bind a listening name (static once bound)."""
        if name in self._listeners:
            raise KernelError(f"address {name!r} already bound")
        listener = _Listener(name=name, owner=task.name)
        self._listeners[name] = listener
        return listener

    def connect(self, task: Task, name: str,
                on_connected: Callable[[Socket], None]) -> None:
        """Connect to a bound name; completes when accepted."""
        listener = self._listeners.get(name)
        if listener is None:
            raise KernelError(f"no listener at {name!r}")
        client = Socket(socket_id=next(_socket_ids), owner=task.name)
        listener.backlog.append((client, on_connected))
        self._progress_accepts(listener)

    def accept(self, task: Task, listener: _Listener,
               on_accepted: Callable[[Socket], None]) -> None:
        """Accept the next pending connection."""
        if listener.owner != task.name:
            raise KernelError(
                f"task {task.name} does not own listener "
                f"{listener.name!r}")
        listener.accepts.append(on_accepted)
        self._progress_accepts(listener)

    def socketpair(self, task_a: Task, task_b: Task,
                   ) -> tuple[Socket, Socket]:
        """Directly create a connected pair (the pipe-like shortcut)."""
        a = Socket(socket_id=next(_socket_ids), owner=task_a.name)
        b = Socket(socket_id=next(_socket_ids), owner=task_b.name)
        a.peer, b.peer = b, a
        return a, b

    def _progress_accepts(self, listener: _Listener) -> None:
        while listener.backlog and listener.accepts:
            (client, on_connected) = listener.backlog.popleft()
            on_accepted = listener.accepts.popleft()
            server = Socket(socket_id=next(_socket_ids),
                            owner=listener.owner)
            client.peer, server.peer = server, client
            cost = SOCKET_ROUTINE_US
            self.node.processors.host.submit(
                cost,
                lambda s=server, c=client: (on_accepted(s),
                                            on_connected(c)),
                label="socket accept")

    # ------------------------------------------------------------------
    # data transfer
    # ------------------------------------------------------------------
    def set_nonblocking(self, sock: Socket, value: bool = True) -> None:
        """Socket option: never block (section 3.2.3)."""
        sock.nonblocking = value

    def write(self, task: Task, sock: Socket, data: bytes,
              on_done: Callable[[], None] | None = None) -> None:
        """Append *data* to the peer's kernel receive buffer.

        Blocks (queues) while the peer's buffer lacks room; raises
        :class:`WouldBlock` instead when the socket is non-blocking.
        """
        self._check_connected(task, sock)
        peer = sock.peer
        if peer.buffered_bytes + len(data) > peer.buffer_limit:
            if sock.nonblocking:
                raise WouldBlock(
                    f"socket {sock.socket_id}: peer buffer full")
            self._blocked_writes.append((task, sock, data, on_done))
            return
        cost = SOCKET_ROUTINE_US + BUFFER_MANAGEMENT_US \
            + COPY_PER_KB_US * len(data) / 1000.0
        peer.buffered_bytes += len(data)
        self.node.processors.host.submit(
            cost, lambda: self._deliver(peer, data, on_done),
            label="socket write")

    def read(self, task: Task, sock: Socket, max_bytes: int,
             on_data: Callable[[bytes], None]) -> None:
        """Read up to *max_bytes* from the socket's receive buffer.

        Stream semantics: returns whatever is available, possibly
        merging several writes or splitting one.  Blocks while empty;
        raises :class:`WouldBlock` when non-blocking and empty.
        """
        if sock.owner != task.name:
            raise KernelError(
                f"task {task.name} does not own socket "
                f"{sock.socket_id}")
        if max_bytes <= 0:
            raise KernelError("read needs a positive byte count")
        if not sock.receive_buffer:
            if sock.nonblocking:
                raise WouldBlock(
                    f"socket {sock.socket_id}: nothing to read")
            self._blocked_reads.append((task, sock, max_bytes, on_data))
            return
        data = self._drain(sock, max_bytes)
        cost = SOCKET_ROUTINE_US \
            + COPY_PER_KB_US * len(data) / 1000.0
        self.node.processors.host.submit(
            cost, lambda: self._complete_read(sock, data, on_data),
            label="socket read")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, peer: Socket, data: bytes,
                 on_done: Callable | None) -> None:
        peer.receive_buffer.append(bytes(data))
        if on_done is not None:
            on_done()
        self._wake_blocked_reads()

    def _drain(self, sock: Socket, max_bytes: int) -> bytes:
        out = bytearray()
        while sock.receive_buffer and len(out) < max_bytes:
            chunk = sock.receive_buffer[0]
            take = min(len(chunk), max_bytes - len(out))
            out += chunk[:take]
            if take == len(chunk):
                sock.receive_buffer.popleft()
            else:
                sock.receive_buffer[0] = chunk[take:]
        sock.buffered_bytes -= len(out)
        return bytes(out)

    def _complete_read(self, sock: Socket, data: bytes,
                       on_data: Callable) -> None:
        on_data(data)
        self._wake_blocked_writes()

    def _wake_blocked_reads(self) -> None:
        for entry in list(self._blocked_reads):
            task, sock, max_bytes, on_data = entry
            if sock.receive_buffer:
                self._blocked_reads.remove(entry)
                self.read(task, sock, max_bytes, on_data)

    def _wake_blocked_writes(self) -> None:
        for entry in list(self._blocked_writes):
            task, sock, data, on_done = entry
            peer = sock.peer
            if peer.buffered_bytes + len(data) <= peer.buffer_limit:
                self._blocked_writes.remove(entry)
                self.write(task, sock, data, on_done)

    def _check_connected(self, task: Task, sock: Socket) -> None:
        if sock.closed or sock.peer is None:
            raise KernelError(
                f"socket {sock.socket_id} is not connected")
        if sock.owner != task.name:
            raise KernelError(
                f"task {task.name} does not own socket "
                f"{sock.socket_id}")
