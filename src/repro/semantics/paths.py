"""Jasmin's path semantics (section 3.2).

Jasmin processes communicate over unidirectional *paths*:

* the creator holds the **receive end** and gets every message sent
  along the path;
* the **send end** can be given away as a *gift* — in particular, a
  gift path enclosed in a message "may be used by the recipient only
  once to send the reply" (one-shot reply connections, section 3.2.1);
* ``sendmsg`` carries fixed-size messages **buffered by the kernel**;
  it blocks the sender only when kernel buffers run short
  (section 3.2.3), resuming when one frees up;
* ``rcvmsg`` blocks when the path is empty and may name a **group of
  paths** as the source of the next message (section 3.2.5 — Jasmin
  has no polling);
* ``iomove`` moves arbitrary-sized blocks under the kernel's access
  check.

Operations charge the host with Jasmin's measured activity times
(Table 3.2).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import KernelError
from repro.kernel.messages import AccessRight, MemoryReference
from repro.kernel.node import Node
from repro.kernel.tasks import Task

_path_ids = itertools.count(1)

#: Per-operation host costs from the Jasmin profile (Table 3.2),
#: halved where the figure covers both directions of a round trip.
PATH_MANAGEMENT_US = 144.0 / 2
BUFFER_MANAGEMENT_US = 72.0 / 2
SCHEDULING_US = 288.0 / 2
COPY_US = 108.0 / 2                      # one 32-byte message copy
IOMOVE_PER_KB_US = 108.0 / 2 / 0.032     # scaled from the 32-B figure


@dataclass
class Path:
    """A unidirectional Jasmin path."""

    path_id: int
    creator: str                 # holds the receive end, forever
    send_holder: str             # current holder of the send end
    one_shot: bool = False       # gift reply path: single use
    uses: int = 0
    closed: bool = False
    queue: deque = field(default_factory=deque)


@dataclass
class _BlockedSend:
    task: Task
    path: Path
    payload: object
    on_sent: Callable | None


class JasminPaths:
    """The path layer bound to one node.

    ``kernel_buffers`` bounds the fixed-size message pool; senders
    block (queue) when it is exhausted.
    """

    def __init__(self, node: Node, kernel_buffers: int = 16):
        if kernel_buffers < 1:
            raise KernelError("need at least one kernel buffer")
        self.node = node
        self.capacity = kernel_buffers
        self.in_use = 0
        self.paths: dict[int, Path] = {}
        self._blocked_senders: deque[_BlockedSend] = deque()
        #: group receives waiting for any of a set of paths
        self._waiting_receivers: list[tuple[list[Path], Callable]] = []

    # ------------------------------------------------------------------
    # path lifecycle
    # ------------------------------------------------------------------
    def create_path(self, creator: Task) -> Path:
        """Create a path; the creator holds the receive end and,
        initially, the send end."""
        path = Path(path_id=next(_path_ids), creator=creator.name,
                    send_holder=creator.name)
        self.paths[path.path_id] = path
        return path

    def give_send_end(self, giver: Task, path: Path,
                      receiver: Task) -> None:
        """Gift the send end to another process."""
        self._check_open(path)
        if path.send_holder != giver.name:
            raise KernelError(
                f"task {giver.name} does not hold the send end of "
                f"path {path.path_id}")
        path.send_holder = receiver.name

    def create_gift_path(self, creator: Task, recipient: Task) -> Path:
        """A one-shot reply path to enclose in a message.

        The kernel pays the same setup cost as for persistent paths
        (section 3.2.1's criticism of Jasmin's RPC simulation).
        """
        path = self.create_path(creator)
        path.one_shot = True
        path.send_holder = recipient.name
        return path

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def sendmsg(self, task: Task, path: Path, payload: object,
                on_sent: Callable[[], None] | None = None) -> None:
        """Send a fixed-size message; blocks on buffer shortage."""
        self._check_open(path)
        if path.send_holder != task.name:
            raise KernelError(
                f"task {task.name} does not hold the send end of "
                f"path {path.path_id}")
        if path.one_shot and path.uses >= 1:
            raise KernelError(
                f"gift path {path.path_id} was already used for its "
                "one reply")
        path.uses += 1
        if path.one_shot:
            # the send end is spent; the path closes after delivery
            path.send_holder = ""
        if self.in_use >= self.capacity:
            self._blocked_senders.append(
                _BlockedSend(task=task, path=path, payload=payload,
                             on_sent=on_sent))
            return
        self._accept_send(path, payload, on_sent)

    def _accept_send(self, path: Path, payload: object,
                     on_sent: Callable | None) -> None:
        self.in_use += 1
        cost = PATH_MANAGEMENT_US + BUFFER_MANAGEMENT_US + COPY_US
        self.node.processors.host.submit(
            cost, lambda: self._enqueue(path, payload, on_sent),
            label="jasmin sendmsg")

    def _enqueue(self, path: Path, payload: object,
                 on_sent: Callable | None) -> None:
        path.queue.append(payload)
        if on_sent is not None:
            on_sent()
        self._wake_receivers()

    def rcvmsg(self, task: Task, paths: list[Path] | Path,
               on_message: Callable[[object, Path], None]) -> None:
        """Blocking receive from one path or a group (section 3.2.5)."""
        group = [paths] if isinstance(paths, Path) else list(paths)
        if not group:
            raise KernelError("empty path group")
        for path in group:
            if path.creator != task.name:
                raise KernelError(
                    f"task {task.name} does not hold the receive end "
                    f"of path {path.path_id}")
        self._waiting_receivers.append((group, on_message))
        self._wake_receivers()

    def iomove(self, task: Task, memory_ref: MemoryReference,
               size_bytes: int, write: bool,
               on_done: Callable[[], None] | None = None) -> None:
        """Arbitrary-sized block move with access checking.

        Blocks the caller until the kernel completes the movement
        (section 3.2.3); the data is not buffered by the kernel.
        """
        memory_ref.check(
            AccessRight.WRITE if write else AccessRight.READ,
            size_bytes)
        cost = PATH_MANAGEMENT_US + IOMOVE_PER_KB_US * size_bytes / 1000
        self.node.processors.host.submit(cost, on_done,
                                         label="jasmin iomove")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _wake_receivers(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for entry in list(self._waiting_receivers):
                group, on_message = entry
                ready = next((p for p in group if p.queue), None)
                if ready is None:
                    continue
                self._waiting_receivers.remove(entry)
                payload = ready.queue.popleft()
                progressed = True
                cost = SCHEDULING_US + COPY_US
                self.node.processors.host.submit(
                    cost,
                    lambda payload=payload, ready=ready:
                        self._deliver(payload, ready, on_message),
                    label="jasmin rcvmsg")

    def _deliver(self, payload: object, path: Path,
                 on_message: Callable) -> None:
        self.in_use -= 1
        if path.one_shot and not path.queue and path.uses >= 1:
            path.closed = True
        on_message(payload, path)
        self._release_blocked_sender()

    def _release_blocked_sender(self) -> None:
        if self._blocked_senders and self.in_use < self.capacity:
            blocked = self._blocked_senders.popleft()
            self._accept_send(blocked.path, blocked.payload,
                              blocked.on_sent)

    def _check_open(self, path: Path) -> None:
        if path.closed:
            raise KernelError(f"path {path.path_id} is closed")
        if path.path_id not in self.paths:
            raise KernelError(f"unknown path {path.path_id}")
