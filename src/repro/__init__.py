"""repro — Hardware Support for Interprocess Communication.

A production-quality reproduction of Ramachandran's 1986 thesis /
ISCA 1987 work: a message coprocessor and smart-bus architecture for
message-based operating systems, evaluated with Generalized Timed
Petri Net (GTPN) models and a discrete-event kernel simulator.

Subpackages:
    gtpn        GTPN modeling and exact/Monte-Carlo analysis
    bus         smart bus protocol, transactions, Taub arbitration
    memory      smart shared memory and queue primitives
    kernel      message-based OS discrete-event simulator
    models      GTPN models of architectures I-IV (chapter 6)
    profiling   synthetic kernel profiling study (chapter 3)
    experiments every table and figure of the evaluation
    perf        parallel sweep executor + content-addressed cache
"""

__version__ = "1.0.0"
