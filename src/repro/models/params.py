"""Timing constants of the chapter 6 evaluation (Tables 6.1-6.23).

Every number in this module is transcribed from the thesis.  Two views
are provided:

* the **action tables** — per-architecture breakdowns of the
  processing steps of one round-trip conversation (Tables 6.4, 6.6,
  6.9, 6.11, 6.14, 6.16, 6.19, 6.21), used to regenerate those tables
  and to drive the discrete-event kernel simulator, and
* the **model parameters** — the activity means of the GTPN transition
  tables (Tables 6.5, 6.7-6.8, 6.10, 6.12-6.13, 6.15, 6.17-6.18, 6.20,
  6.22-6.23), used to build the architecture nets.

All times are microseconds.  The thesis rounds inconsistently in a few
places (e.g. 544.7 vs 426.8 + 118.0); where the transition tables and
the action tables disagree by a fraction of a microsecond we use the
transition-table value, since that is what drove the published curves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ModelError


class Architecture(enum.Enum):
    """The four node architectures compared in chapter 6."""

    I = "uniprocessor"
    II = "message coprocessor"
    III = "smart bus"
    IV = "partitioned smart bus"


class Mode(enum.Enum):
    """Conversation locality."""

    LOCAL = "local"
    NONLOCAL = "nonlocal"


@dataclass(frozen=True)
class ActionRow:
    """One row of an architecture's round-trip breakdown table."""

    processor: str          # Host / MP / DMA
    initiator: str          # Client / Server / Network interrupt / ""
    number: str             # action number in the thesis table
    description: str
    processing: float | None        # None marks the workload parameter
    shared_access: float | None
    best: float | None
    contention: float | None

    @property
    def is_compute(self) -> bool:
        return self.processing is None


def _row(processor, initiator, number, description, processing=None,
         shared=None, best=None, contention=None):
    return ActionRow(processor, initiator, number, description,
                     processing, shared, best, contention)


_COMPUTE = _row("Host", "Server", "-", "Compute")

# ----------------------------------------------------------------------
# Table 6.4 — Architecture I: Local Conversation
# ----------------------------------------------------------------------
ARCH1_LOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 1040, 150, 1190, 1190),
    _row("Host", "Server", "2", "Syscall Receive", 650, 120, 770, 770),
    _row("Host", "", "3", "Match client with server", 1240, 140, 1380,
         1380),
    _COMPUTE,
    _row("Host", "Server", "5", "Syscall Reply", 1020, 210, 1230, 1230),
    _row("Host", "", "6", "Restart Server", 140, 60, 200, 200),
    _row("Host", "", "7", "Restart Client", 140, 60, 200, 200),
)

# ----------------------------------------------------------------------
# Table 6.6 — Architecture I: Non-local Conversation
# ----------------------------------------------------------------------
ARCH1_NONLOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 1140, 150, 1290, 1314.9),
    _row("DMA", "Client", "2", "DMA out", 200, 30, 230, 235.2),
    _row("Host", "Server", "3", "Syscall Receive", 650, 120, 770, 790.7),
    _row("DMA", "Network interrupt", "4", "DMA in", 200, 30, 230, 235.2),
    _row("Host", "Network interrupt", "4a", "Match client with server",
         1790, 210, 2000, 2034.6),
    _COMPUTE,
    _row("Host", "Server", "4c", "Syscall Reply", 1060, 220, 1280, 1318.5),
    _row("DMA", "Server", "5", "DMA out", 200, 30, 230, 235.2),
    _row("DMA", "Network interrupt", "6", "DMA in", 200, 30, 230, 235.2),
    _row("Host", "Network interrupt", "7", "Cleanup and Restart Client",
         830, 130, 960, 982),
)

# ----------------------------------------------------------------------
# Table 6.9 — Architecture II: Local Conversation
# ----------------------------------------------------------------------
ARCH2_LOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 320, 78, 398, 404.9),
    _row("MP", "Client", "2", "Process Send", 900, 104, 1004, 1030.2),
    _row("Host", "Server", "3", "Syscall Receive", 320, 78, 398, 404.9),
    _row("MP", "Server", "4", "Process Receive", 510, 74, 584, 603),
    _row("MP", "", "5", "Match client with server", 1160, 84, 1244,
         1264.4),
    _row("Host", "Server", "6", "Restart Server", 60, 50, 110, 115.4),
    _COMPUTE,
    _row("Host", "Server", "6b", "Syscall Reply", 320, 78, 398, 404.9),
    _row("MP", "Server", "7", "Process Reply", 1060, 182, 1242, 1289.8),
    _row("Host", "", "8", "Restart Server", 60, 50, 110, 115.4),
    _row("Host", "", "9", "Restart Client", 60, 50, 110, 115.4),
)

# ----------------------------------------------------------------------
# Table 6.11 — Architecture II: Non-local Conversation
# ----------------------------------------------------------------------
ARCH2_NONLOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 320, 78, 398, 426.8),
    _row("MP", "Client", "2", "Process Send", 1000, 104, 1104, 1145.2),
    _row("DMA", "Client", "2a", "DMA out", 200, 30, 230, 240.9),
    _row("Host", "Server", "3", "Syscall Receive", 320, 78, 398, 421.9),
    _row("MP", "Server", "4", "Process Receive", 510, 74, 584, 628.2),
    _row("DMA", "Network interrupt", "5", "DMA in", 200, 30, 230, 247.8),
    _row("MP", "Network interrupt", "5a", "Match client with server",
         1650, 104, 1754, 1812.5),
    _row("Host", "Server", "6", "Restart Server", 60, 50, 110, 128.6),
    _COMPUTE,
    _row("Host", "Server", "6b", "Syscall Reply", 320, 78, 398, 421.9),
    _row("MP", "Server", "7", "Process Reply", 920, 128, 1048, 1124),
    _row("DMA", "Server", "7a", "DMA out", 200, 30, 230, 247.8),
    _row("Host", "", "8", "Restart Server", 60, 50, 110, 128.6),
    _row("DMA", "Network interrupt", "9", "DMA in", 200, 30, 230, 240.9),
    _row("MP", "Network interrupt", "9a", "Cleanup client", 750, 74, 824,
         853.2),
    _row("Host", "", "10", "Restart Client", 60, 50, 110, 118.0),
)

# ----------------------------------------------------------------------
# Table 6.14 — Architecture III: Local Conversation
# ----------------------------------------------------------------------
ARCH3_LOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 220, 52, 272, 278),
    _row("MP", "Client", "2", "Process Send", 612, 71, 683, 700.9),
    _row("Host", "Server", "3", "Syscall Receive", 220, 52, 272, 278),
    _row("MP", "Server", "4", "Process Receive", 451, 61, 512, 527.6),
    _row("MP", "", "5", "Match client with server", 922, 61, 983, 997.7),
    _row("Host", "Server", "6", "Restart Server", 60, 50, 110, 117.2),
    _COMPUTE,
    _row("Host", "Server", "6b", "Syscall Reply", 220, 52, 272, 278),
    _row("MP", "Server", "7", "Process Reply", 475, 113, 588, 619),
    _row("Host", "", "8", "Restart Server", 60, 50, 110, 117.2),
    _row("Host", "", "9", "Restart Client", 60, 50, 110, 117.2),
)

# ----------------------------------------------------------------------
# Table 6.16 — Architecture III: Non-local Conversation
# ----------------------------------------------------------------------
ARCH3_NONLOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 220, 52, 272, 284.5),
    _row("MP", "Client", "2", "Process Send", 712, 71, 783, 805),
    _row("DMA", "Client", "2a", "DMA out", 200, 15, 215, 219.4),
    _row("Host", "Server", "3", "Syscall Receive", 220, 52, 272, 281.8),
    _row("MP", "Server", "4", "Process Receive", 451, 61, 512, 540),
    _row("DMA", "Network interrupt", "5", "DMA in", 200, 15, 215, 222.1),
    _row("MP", "Network interrupt", "5a", "Match client with server",
         1362, 71, 1433, 1461),
    _row("Host", "Server", "6", "Restart Server", 60, 50, 110, 121.5),
    _COMPUTE,
    _row("Host", "Server", "6b", "Syscall Reply", 220, 52, 272, 281.8),
    _row("MP", "Server", "7", "Process Reply", 573, 82, 655, 690),
    _row("DMA", "Server", "7a", "DMA out", 200, 15, 215, 222.1),
    _row("Host", "", "8", "Restart Server", 60, 50, 110, 121.5),
    _row("DMA", "Network interrupt", "9", "DMA in", 200, 15, 215, 219.4),
    # the thesis table leaves the contention cell blank; the transition
    # table (6.17, T6/T7 = 1/514) supplies the value used in the model
    _row("MP", "Network interrupt", "9a", "Cleanup client", 462, 41, 503,
         514),
    _row("Host", "", "10", "Restart Client", 60, 50, 110, 115.1),
)

# ----------------------------------------------------------------------
# Table 6.19 — Architecture IV: Local Conversation
# (shared access split into kernel-buffer and TCB partitions)
# ----------------------------------------------------------------------
ARCH4_LOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 220, 52, 272, 273.7),
    _row("MP", "Client", "2", "Process Send", 612, 71, 683, 687.9),
    _row("Host", "Server", "3", "Syscall Receive", 220, 52, 272, 273.7),
    _row("MP", "Server", "4", "Process Receive", 451, 61, 512, 516.9),
    _row("MP", "", "5", "Match client with server", 922, 61, 983, 983.2),
    _row("Host", "Server", "6", "Restart Server", 60, 50, 110, 112),
    _COMPUTE,
    _row("Host", "Server", "6b", "Syscall Reply", 220, 52, 272, 273.7),
    _row("MP", "Server", "7", "Process Reply", 475, 113, 588, 595.9),
    _row("Host", "", "8", "Restart Server", 60, 50, 110, 112),
    _row("Host", "", "9", "Restart Client", 60, 50, 110, 112),
)

# ----------------------------------------------------------------------
# Table 6.21 — Architecture IV: Non-local Conversation
# ----------------------------------------------------------------------
ARCH4_NONLOCAL_ACTIONS = (
    _row("Host", "Client", "1", "Syscall Send", 220, 52, 272, 273.2),
    _row("MP", "Client", "2", "Process Send", 712, 71, 783, 789.8),
    _row("DMA", "Client", "2a", "DMA out", 200, 15, 215, 216.3),
    _row("Host", "Server", "3", "Syscall Receive", 220, 52, 272, 273.5),
    _row("MP", "Server", "4", "Process Receive", 451, 61, 512, 520.2),
    _row("DMA", "Network interrupt", "5", "DMA in", 200, 15, 215, 216.3),
    _row("MP", "Network interrupt", "5a", "Match client with server",
         1362, 71, 1433, 1443),
    _row("Host", "Server", "6", "Restart Server", 60, 50, 110, 111.8),
    _COMPUTE,
    _row("Host", "Server", "6b", "Syscall Reply", 220, 52, 272, 273.5),
    _row("MP", "Server", "7", "Process Reply", 573, 82, 655, 666.6),
    _row("DMA", "Server", "7a", "DMA out", 200, 15, 215, 216.3),
    _row("Host", "", "8", "Restart Server", 60, 50, 110, 111.8),
    _row("DMA", "Network interrupt", "9", "DMA in", 200, 15, 215, 216.3),
    _row("MP", "Network interrupt", "9a", "Cleanup client", 462, 41, 503,
         506.4),
    _row("Host", "", "10", "Restart Client", 60, 50, 110, 110.5),
)

ACTION_TABLES: dict[tuple[Architecture, Mode], tuple[ActionRow, ...]] = {
    (Architecture.I, Mode.LOCAL): ARCH1_LOCAL_ACTIONS,
    (Architecture.I, Mode.NONLOCAL): ARCH1_NONLOCAL_ACTIONS,
    (Architecture.II, Mode.LOCAL): ARCH2_LOCAL_ACTIONS,
    (Architecture.II, Mode.NONLOCAL): ARCH2_NONLOCAL_ACTIONS,
    (Architecture.III, Mode.LOCAL): ARCH3_LOCAL_ACTIONS,
    (Architecture.III, Mode.NONLOCAL): ARCH3_NONLOCAL_ACTIONS,
    (Architecture.IV, Mode.LOCAL): ARCH4_LOCAL_ACTIONS,
    (Architecture.IV, Mode.NONLOCAL): ARCH4_NONLOCAL_ACTIONS,
}


def action_table(architecture: Architecture, mode: Mode,
                 ) -> tuple[ActionRow, ...]:
    """The round-trip breakdown of one architecture/mode."""
    try:
        return ACTION_TABLES[(architecture, mode)]
    except KeyError:
        raise ModelError(
            f"no action table for {architecture}/{mode}") from None


# ----------------------------------------------------------------------
# GTPN model parameters (activity means from the transition tables)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LocalModelParams:
    """Activity means of the local-conversation nets.

    Architecture I uses only ``client_step``, ``server_step`` and
    ``rendezvous`` (everything executes on the host, Table 6.5); the
    coprocessor architectures use the full pipeline (Tables 6.10,
    6.15, 6.20).
    """

    architecture: Architecture
    client_step: float          # syscall send + restart client (Host)
    server_step: float          # syscall receive + restart server (Host)
    process_send: float | None  # MP
    process_receive: float | None
    match: float                # MP (arch I: host, incl. reply)
    serve_base: float           # restart server + syscall reply (Host)
    process_reply: float | None


@dataclass(frozen=True)
class NonlocalClientParams:
    """Activity means of the split client-node nets (Tables 6.7/6.12/
    6.17/6.22)."""

    architecture: Architecture
    send_step: float            # syscall send + restart client (Host)
    process_send: float | None  # MP (None for architecture I)
    dma_out: float
    dma_in: float
    cleanup: float              # network-interrupt client cleanup


@dataclass(frozen=True)
class NonlocalServerParams:
    """Activity means of the split server-node nets (Tables 6.8/6.13/
    6.18/6.23)."""

    architecture: Architecture
    receive_step: float             # syscall receive + restart (Host)
    process_receive: float | None   # MP (None: folded into receive_step)
    match: float                    # network-interrupt match processing
    serve_base: float               # restart + syscall reply (Host)
    process_reply: float | None
    dma_in: float                   # constant added outside the model
    dma_out: float                  # constant added outside the model

    @property
    def receive_path(self) -> float:
        """S_c: mean time the server spends executing receive."""
        return self.receive_step + (self.process_receive or 0.0)


LOCAL_PARAMS: dict[Architecture, LocalModelParams] = {
    Architecture.I: LocalModelParams(
        # Table 6.5: T0 1/1390, T2 1/970, T4 1/(1380 + X + 1230)
        Architecture.I, client_step=1390.0, server_step=970.0,
        process_send=None, process_receive=None,
        match=1380.0, serve_base=1230.0, process_reply=None),
    Architecture.II: LocalModelParams(
        # Table 6.10
        Architecture.II, client_step=519.9, server_step=519.9,
        process_send=1030.2, process_receive=603.0,
        match=1264.4, serve_base=520.3, process_reply=1289.8),
    Architecture.III: LocalModelParams(
        # Table 6.15
        Architecture.III, client_step=394.6, server_step=394.6,
        process_send=700.9, process_receive=527.6,
        match=997.7, serve_base=395.2, process_reply=619.0),
    Architecture.IV: LocalModelParams(
        # Table 6.20
        Architecture.IV, client_step=385.6, server_step=385.6,
        process_send=687.9, process_receive=516.9,
        match=983.2, serve_base=385.7, process_reply=595.9),
}

NONLOCAL_CLIENT_PARAMS: dict[Architecture, NonlocalClientParams] = {
    Architecture.I: NonlocalClientParams(
        # Table 6.7: T1 1/1314.9, T4 1/982, T6 1/235.2, T11 1/235.2
        Architecture.I, send_step=1314.9, process_send=None,
        dma_out=235.2, dma_in=235.2, cleanup=982.0),
    Architecture.II: NonlocalClientParams(
        # Table 6.12
        Architecture.II, send_step=544.7, process_send=1145.2,
        dma_out=240.9, dma_in=240.9, cleanup=853.2),
    Architecture.III: NonlocalClientParams(
        # Table 6.17
        Architecture.III, send_step=399.6, process_send=805.0,
        dma_out=219.4, dma_in=219.4, cleanup=514.0),
    Architecture.IV: NonlocalClientParams(
        # Table 6.22
        Architecture.IV, send_step=383.7, process_send=789.8,
        dma_out=216.3, dma_in=216.3, cleanup=506.4),
}

NONLOCAL_SERVER_PARAMS: dict[Architecture, NonlocalServerParams] = {
    Architecture.I: NonlocalServerParams(
        # Table 6.8: T1 1/790.7, T8 1/2034.6, T11 1/(1318.5 + X)
        Architecture.I, receive_step=790.7, process_receive=None,
        match=2034.6, serve_base=1318.5, process_reply=None,
        dma_in=235.2, dma_out=235.2),
    Architecture.II: NonlocalServerParams(
        # Table 6.13: T13 1/549, T0 1/628.2, T7 1/1812.5,
        # T9 1/(550.5 + X), T11 1/1124
        Architecture.II, receive_step=549.0, process_receive=628.2,
        match=1812.5, serve_base=550.5, process_reply=1124.0,
        dma_in=247.8, dma_out=247.8),
    Architecture.III: NonlocalServerParams(
        # Table 6.18
        Architecture.III, receive_step=402.1, process_receive=540.0,
        match=1461.0, serve_base=403.3, process_reply=690.0,
        dma_in=222.1, dma_out=222.1),
    Architecture.IV: NonlocalServerParams(
        # Table 6.23
        Architecture.IV, receive_step=385.2, process_receive=520.2,
        match=1443.0, serve_base=385.3, process_reply=666.6,
        dma_in=216.3, dma_out=216.3),
}


# ----------------------------------------------------------------------
# Table 6.1 — Comparison of Processing Times (arch II vs arch III)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProcessingTimeRow:
    """One row of Table 6.1."""

    operation: str
    arch2_processing: float
    arch2_memory: float
    arch3_processing: float
    arch3_memory: float
    handshake: str


PROCESSING_TIME_TABLE = (
    ProcessingTimeRow("Enqueue", 60, 14, 9, 1, "Four-edge"),
    ProcessingTimeRow("Dequeue", 60, 14, 9, 1, "Four-edge"),
    ProcessingTimeRow("First", 60, 14, 9, 2, "Eight-edge"),
    ProcessingTimeRow("Block Read (40 Bytes)", 180, 20, 9, 11,
                      "One four-edge followed by twenty two-edge"),
    ProcessingTimeRow("Block Write (40 Bytes)", 180, 20, 9, 11,
                      "One four-edge followed by twenty two-edge"),
)


# ----------------------------------------------------------------------
# Tables 6.2 / 6.3 — low-level contention model (architecture I client)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ContentionActivity:
    """One activity of the shared-memory contention model (Fig. 6.8)."""

    processor: str
    name: str
    processing: float
    shared_access: float

    @property
    def best(self) -> float:
        return self.processing + self.shared_access


ARCH1_CLIENT_CONTENTION_ACTIVITIES = (
    ContentionActivity("Host", "SendProc", 1140, 150),
    ContentionActivity("DMA", "DMAout", 200, 30),
    ContentionActivity("DMA", "DMAin", 200, 30),
    ContentionActivity("Host", "NetIntr", 830, 130),
)

#: Paper-reported "contention" completion times for Table 6.2.
ARCH1_CLIENT_CONTENTION_RESULTS = {
    "SendProc": 1314.9,
    "DMAout": 235.2,
    "DMAin": 235.2,
    "NetIntr": 982.0,
}


# ----------------------------------------------------------------------
# General constants of section 6.4
# ----------------------------------------------------------------------

#: Motorola 68000 at 8 MHz: ~0.3 MIPS, 3 microseconds per instruction.
INSTRUCTION_TIME_US = 3.0

#: Versabus memory cycle.
MEMORY_CYCLE_US = 1.0

#: Smart-bus handshakes (assumed equal to / half a memory cycle).
FOUR_EDGE_HANDSHAKE_US = 1.0
TWO_EDGE_HANDSHAKE_US = 0.5

#: Chapter 4 measurement: copying 40 bytes takes 220 us of processing,
#: an atomic queueing operation 74 us on the 68000 implementation.
COPY_40_BYTES_US = 220.0
QUEUE_OP_US = 74.0

#: Server computation times of the offered-load tables (Tables
#: 6.24/6.25), milliseconds.
OFFERED_LOAD_SERVER_TIMES_MS = (
    0.0, 0.57, 1.14, 1.71, 2.85, 5.7, 11.4, 17.1, 22.8, 28.5, 34.2,
    39.9, 45.6,
)

#: Paper-reported offered loads (Table 6.24, local) for validation.
PAPER_OFFERED_LOADS_LOCAL = {
    Architecture.I: (1.0, 0.897, 0.813, 0.744, 0.635, 0.466, 0.304,
                     0.225, 0.179, 0.148, 0.127, 0.111, 0.098),
    Architecture.II: (1.0, 0.905, 0.827, 0.761, 0.656, 0.488, 0.323,
                      0.241, 0.193, 0.160, 0.137, 0.120, 0.107),
    Architecture.III: (1.0, 0.867, 0.769, 0.689, 0.571, 0.399, 0.249,
                       0.181, 0.142, 0.117, 0.100, 0.087, 0.077),
    Architecture.IV: (1.0, 0.866, 0.764, 0.684, 0.565, 0.393, 0.245,
                      0.178, 0.139, 0.115, 0.097, 0.084, 0.075),
}

#: Paper-reported offered loads (Table 6.25, non-local) for validation.
PAPER_OFFERED_LOADS_NONLOCAL = {
    Architecture.I: (1.0, 0.920, 0.852, 0.793, 0.697, 0.536, 0.366,
                     0.278, 0.224, 0.187, 0.161, 0.141, 0.126),
    Architecture.II: (1.0, 0.924, 0.859, 0.802, 0.709, 0.549, 0.379,
                      0.289, 0.233, 0.196, 0.169, 0.148, 0.132),
    Architecture.III: (1.0, 0.900, 0.818, 0.750, 0.643, 0.474, 0.311,
                       0.231, 0.184, 0.153, 0.130, 0.114, 0.101),
    Architecture.IV: (1.0, 0.898, 0.815, 0.747, 0.639, 0.469, 0.306,
                      0.227, 0.181, 0.150, 0.128, 0.112, 0.099),
}


def round_trip_sum(architecture: Architecture, mode: Mode,
                   column: str = "contention") -> float:
    """Sum of the non-compute action times of a round trip.

    For architecture I this equals the model's communication time C
    (everything serializes on the host); for the coprocessor
    architectures the model's C is smaller because host, MP and DMA
    pipeline within a round trip.
    """
    if column not in ("processing", "shared_access", "best", "contention"):
        raise ModelError(f"unknown action-table column {column!r}")
    total = 0.0
    for row in action_table(architecture, mode):
        if row.is_compute:
            continue
        value = getattr(row, column)
        if value is None:
            raise ModelError(
                f"{architecture}/{mode}: row {row.number} lacks "
                f"column {column}")
        total += value
    return total
