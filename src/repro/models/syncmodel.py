"""Re-costing the architecture II software queue path per primitive.

Table 6.1 prices a software queue operation at 60 us of processing
plus 14 memory cycles under the thesis's test-and-set lock; every
architecture II activity time in chapter 6 embeds 16 such operations
per round trip (section 6.2 / :mod:`repro.models.ablations`).  This
module rescales those activity times for each synchronization
primitive from the *derived* cost table of
:mod:`repro.bus.syncedges`:

* processing scales with the executed micro-instruction count
  (relative weight against the ``tas`` baseline, anchored at 60 us),
* memory time scales with the counted memory cycles (anchored at 14
  cycles of :data:`~repro.models.params.MEMORY_CYCLE_US` each),

so ``tas`` reproduces Table 6.1's 74 us exactly and every other
primitive's figure is computed, not asserted.  The per-round-trip
saving (16 operations) is then removed from the architecture II
MP-side activities — multiplicatively, preserving the pipeline's
internal proportions — and the scaled parameter sets feed the
chapter 6 nets through the ``params`` overrides of
:mod:`repro.models.local` / :mod:`repro.models.iterate`.

Architectures III and IV run queue operations *on the smart bus*
(their cost is the bus command, not software synchronization), and
architecture I has no shared queue path at all, so only architecture
II is affected; ``tas`` returns the committed parameter objects
themselves, keeping the baseline bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.models.ablations import QUEUE_OPS_PER_ROUND_TRIP
from repro.models.params import (LOCAL_PARAMS, MEMORY_CYCLE_US,
                                 NONLOCAL_CLIENT_PARAMS,
                                 NONLOCAL_SERVER_PARAMS, QUEUE_OP_US,
                                 Architecture, LocalModelParams,
                                 NonlocalClientParams,
                                 NonlocalServerParams)

#: Table 6.1 anchors (re-exported by repro.memory.locking).
_BASE_PROCESSING_US = 60.0
_BASE_MEMORY_CYCLES = 14.0

#: MP-side activities of the architecture II local net (Table 6.10).
_LOCAL_MP_FIELDS = ("process_send", "process_receive", "match",
                    "process_reply")

#: MP-side activities of the split non-local nets (Tables 6.12/6.13):
#: send processing and interrupt cleanup on the client node; receive,
#: match, and reply processing on the server node.
_CLIENT_MP_FIELDS = ("process_send", "cleanup")
_SERVER_MP_FIELDS = ("process_receive", "match", "process_reply")

#: Floor on the MP scaling factor: however cheap the primitive, the
#: coprocessor still executes the non-queue part of its activities.
_MIN_MP_FACTOR = 0.05


@dataclass(frozen=True)
class SyncQueueCost:
    """Table 6.1's queue-operation row, re-derived for one primitive."""

    primitive: str
    processing_us: float
    memory_cycles: float
    mean_micro_cycles: float
    mean_raw_cycles: float

    @property
    def queue_op_us(self) -> float:
        return self.processing_us \
            + self.memory_cycles * MEMORY_CYCLE_US


def _normalize(primitive: str) -> str:
    from repro import config
    return config.normalize_sync(primitive, source="sync")


@lru_cache(maxsize=None)
def queue_op_cost(primitive: str) -> SyncQueueCost:
    """The derived software queue-operation cost of one primitive.

    ``tas`` comes out at exactly Table 6.1's 60 us + 14 cycles = 74 us;
    the others scale by their derived micro-cycle and memory-cycle
    counts relative to it.
    """
    from repro.bus.syncedges import OPERATIONS, derive_sync_cost_table
    primitive = _normalize(primitive)
    table = derive_sync_cost_table()

    def means(name: str) -> tuple[float, float]:
        rows = [table[name][operation] for operation in OPERATIONS]
        return (sum(r.micro_cycles for r in rows) / len(rows),
                sum(r.memory_cycles for r in rows) / len(rows))

    micro, cycles = means(primitive)
    base_micro, base_cycles = means("tas")
    return SyncQueueCost(
        primitive=primitive,
        processing_us=_BASE_PROCESSING_US * micro / base_micro,
        memory_cycles=_BASE_MEMORY_CYCLES * cycles / base_cycles,
        mean_micro_cycles=micro,
        mean_raw_cycles=cycles)


def round_trip_savings_us(primitive: str) -> float:
    """Per-round-trip saving vs the TAS baseline (16 queue ops)."""
    return QUEUE_OPS_PER_ROUND_TRIP \
        * (QUEUE_OP_US - queue_op_cost(primitive).queue_op_us)


def _scale(params, fields: tuple[str, ...], savings: float,
           pool_total: float):
    factor = max(1.0 - savings / pool_total, _MIN_MP_FACTOR)
    return replace(params, **{
        name: getattr(params, name) * factor for name in fields})


@lru_cache(maxsize=None)
def local_params(primitive: str) -> LocalModelParams:
    """Architecture II local-net activity means under *primitive*."""
    primitive = _normalize(primitive)
    base = LOCAL_PARAMS[Architecture.II]
    if primitive == "tas":
        return base
    total = sum(getattr(base, name) for name in _LOCAL_MP_FIELDS)
    return _scale(base, _LOCAL_MP_FIELDS,
                  round_trip_savings_us(primitive), total)


def _nonlocal_mp_total() -> float:
    client = NONLOCAL_CLIENT_PARAMS[Architecture.II]
    server = NONLOCAL_SERVER_PARAMS[Architecture.II]
    return (sum(getattr(client, name) for name in _CLIENT_MP_FIELDS)
            + sum(getattr(server, name) for name in _SERVER_MP_FIELDS))


@lru_cache(maxsize=None)
def nonlocal_client_params(primitive: str) -> NonlocalClientParams:
    """Architecture II client-node activity means under *primitive*.

    The round trip's queue operations span both nodes, so one factor —
    computed against the *combined* MP activity of client and server —
    scales both sides, keeping the split model's proportions.
    """
    primitive = _normalize(primitive)
    base = NONLOCAL_CLIENT_PARAMS[Architecture.II]
    if primitive == "tas":
        return base
    return _scale(base, _CLIENT_MP_FIELDS,
                  round_trip_savings_us(primitive),
                  _nonlocal_mp_total())


@lru_cache(maxsize=None)
def nonlocal_server_params(primitive: str) -> NonlocalServerParams:
    """Architecture II server-node activity means under *primitive*."""
    primitive = _normalize(primitive)
    base = NONLOCAL_SERVER_PARAMS[Architecture.II]
    if primitive == "tas":
        return base
    return _scale(base, _SERVER_MP_FIELDS,
                  round_trip_savings_us(primitive),
                  _nonlocal_mp_total())
