"""Chapter 7 extensions: multiprocessor nodes and design ablations.

The thesis's discussion chapter sketches two follow-on questions that
the published evaluation does not quantify:

* **Figure 7.1** — scaling a node to a shared-memory multiprocessor:
  several hosts served by one message coprocessor.  How many hosts can
  one MP carry before it saturates?
* **Section 7.2** — functional dedication vs symmetric
  multiprocessing: is a dedicated MP better than using both processors
  interchangeably?  The thesis argues dedication wins on cost,
  hardware organization, and because symmetric sharing needs locking
  on the system data structures; this module makes the comparison
  quantitative with an explicit per-round-trip locking overhead knob.

Both studies reuse the chapter 6 models unchanged except for the host
count / lock overhead, so they inherit the validated timing base.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gtpn import Net, activity_pair, analyze
from repro.models.local import build_local_net
from repro.models.params import (LOCAL_PARAMS, QUEUE_OP_US, Architecture)


@dataclass(frozen=True)
class HostScalingPoint:
    """Throughput of a multiprocessor node with *hosts* hosts."""

    hosts: int
    conversations: int
    compute_time: float
    throughput: float


def host_scaling(architecture: Architecture, hosts_list: list[int],
                 conversations: int, compute_time: float,
                 ) -> list[HostScalingPoint]:
    """Throughput as hosts are added to one node (Figure 7.1 study).

    The message coprocessor is *not* replicated: its finite bandwidth
    caps the benefit of extra hosts, which is exactly the economics
    the thesis's section 7.3 anticipates.
    """
    points = []
    for hosts in hosts_list:
        net = build_local_net(architecture, conversations, compute_time,
                              hosts=hosts)
        points.append(HostScalingPoint(
            hosts=hosts, conversations=conversations,
            compute_time=compute_time,
            throughput=analyze(net).throughput()))
    return points


def mp_saturation_bound(architecture: Architecture,
                        compute_time: float = 0.0) -> float:
    """The MP-bandwidth throughput ceiling of a coprocessor node.

    One round trip occupies the MP for process send + process receive
    + match + process reply, regardless of how many hosts feed it.
    """
    params = LOCAL_PARAMS[architecture]
    if params.process_send is None:
        raise ModelError(
            f"architecture {architecture.name} has no coprocessor")
    mp_busy = (params.process_send + params.process_receive
               + params.match + params.process_reply)
    return 1.0 / mp_busy


def build_symmetric_net(conversations: int, compute_time: float = 0.0,
                        processors: int = 2,
                        lock_overhead: float = 4 * QUEUE_OP_US) -> Net:
    """A symmetric multiprocessor running the whole OS on every CPU.

    Section 7.2's alternative to functional dedication: the
    architecture I software runs unchanged on *processors* identical
    CPUs, but because every CPU now manipulates the shared system data
    structures, each round trip pays ``lock_overhead`` of extra
    processing for locking (the thesis names this as the principal
    software cost of the symmetric organization; the default charges
    one atomic queue operation's processing time, 74 us, for each of
    the four lock/unlock points of a round trip).
    """
    if conversations < 1:
        raise ModelError("need at least one conversation")
    if processors < 1:
        raise ModelError("need at least one processor")
    if lock_overhead < 0:
        raise ModelError("lock overhead must be non-negative")
    params = LOCAL_PARAMS[Architecture.I]
    net = Net(f"symmetric-p{processors}-n{conversations}")
    clients = net.place("Clients", tokens=conversations)
    servers = net.place("Servers", tokens=conversations)
    cpus = net.place("CPUs", tokens=processors)
    sent = net.place("Sent")
    posted = net.place("Posted")

    # spread the locking overhead over the three host activities in
    # proportion to their length
    total = (params.client_step + params.server_step + params.match
             + params.serve_base)
    inflate = 1.0 + lock_overhead / total

    activity_pair(net, "client", params.client_step * inflate,
                  inputs=[clients], outputs=[sent], holds=[cpus])
    activity_pair(net, "server", params.server_step * inflate,
                  inputs=[servers], outputs=[posted], holds=[cpus])
    rendezvous = (params.match + params.serve_base) * inflate \
        + compute_time
    activity_pair(net, "rendezvous", rendezvous,
                  inputs=[sent, posted], outputs=[clients, servers],
                  holds=[cpus], resource="lambda")
    return net


@dataclass(frozen=True)
class DedicationComparison:
    """Dedicated (arch II) vs symmetric two-processor node."""

    conversations: int
    compute_time: float
    lock_overhead: float
    dedicated_throughput: float
    symmetric_throughput: float

    @property
    def dedication_wins(self) -> bool:
        return self.dedicated_throughput >= self.symmetric_throughput


def compare_dedication(conversations: int, compute_time: float,
                       lock_overhead: float = 4 * QUEUE_OP_US,
                       ) -> DedicationComparison:
    """Quantify section 7.2's functional-dedication argument.

    An honest note: on raw throughput the symmetric organization wins
    with the published cost constants (two full processors beat a
    host+MP pipeline that also pays partition overhead).  The thesis's
    case for dedication rests on cost-effectiveness (the MP needs no
    FPU/MMU/caches), hardware simplicity, and the software cost of
    fine-grained locking — use
    :func:`dedication_crossover_lock_overhead` to see how much locking
    overhead the symmetric design must pay before dedication wins
    outright.
    """
    dedicated = analyze(build_local_net(
        Architecture.II, conversations, compute_time)).throughput()
    symmetric = analyze(build_symmetric_net(
        conversations, compute_time,
        lock_overhead=lock_overhead)).throughput()
    return DedicationComparison(
        conversations=conversations, compute_time=compute_time,
        lock_overhead=lock_overhead,
        dedicated_throughput=dedicated,
        symmetric_throughput=symmetric)


def dedication_crossover_lock_overhead(conversations: int,
                                       compute_time: float,
                                       upper: float = 20_000.0,
                                       tolerance: float = 50.0) -> float:
    """Locking overhead at which symmetric drops to the dedicated level.

    Bisects the per-round-trip lock overhead of the symmetric design
    until its throughput falls below architecture II's.  Returns
    ``inf`` if even *upper* microseconds of locking leave symmetric
    ahead.
    """
    dedicated = analyze(build_local_net(
        Architecture.II, conversations, compute_time)).throughput()

    def symmetric_throughput(lock: float) -> float:
        return analyze(build_symmetric_net(
            conversations, compute_time,
            lock_overhead=lock)).throughput()

    low, high = 0.0, upper
    if symmetric_throughput(high) > dedicated:
        return float("inf")
    if symmetric_throughput(low) <= dedicated:
        return 0.0
    while high - low > tolerance:
        mid = (low + high) / 2
        if symmetric_throughput(mid) > dedicated:
            low = mid
        else:
            high = mid
    return (low + high) / 2
