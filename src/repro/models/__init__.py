"""GTPN models of the four node architectures (chapter 6).

The package builds and solves the thesis's performance models:

* :func:`build_local_net` — local conversations (Figures 6.9/6.12),
* :func:`build_nonlocal_client_net` / :func:`build_nonlocal_server_net`
  — the split non-local models (Figures 6.10-6.11/6.13-6.14),
* :func:`solve_nonlocal` — the iterative surrogate-delay fixed point,
* :func:`solve` / :func:`offered_load_table` — the headline API behind
  every Figure 6.17-6.23 curve and Tables 6.24/6.25.
"""

from repro.models.ablations import (BusSpeedPoint, MpSpeedPoint,
                                    derive_arch3_round_trip,
                                    mp_speed_sensitivity,
                                    smart_bus_primitive_costs,
                                    smart_bus_sensitivity)
from repro.models.contention import (arch1_client_contention,
                                     build_contention_net,
                                     contention_completion_times)
from repro.models.extension import (DedicationComparison,
                                    HostScalingPoint,
                                    build_symmetric_net,
                                    compare_dedication,
                                    dedication_crossover_lock_overhead,
                                    host_scaling, mp_saturation_bound)
from repro.models.iterate import (IterationStep, NonlocalSolution,
                                  initial_server_delay, solve_nonlocal)
from repro.models.local import build_local_net
from repro.models.nonlocal_client import (build_nonlocal_client_net,
                                          client_params)
from repro.models.nonlocal_server import (build_nonlocal_server_net,
                                          server_params,
                                          server_population)
from repro.models.params import (ACTION_TABLES, ActionRow, Architecture,
                                 Mode, action_table, round_trip_sum)
from repro.models.solve import (ThroughputResult, communication_time,
                                offered_load, offered_load_table, solve,
                                solve_at_offered_load, solve_grid,
                                solve_offered_load_grid,
                                server_time_for_offered_load,
                                throughput_vs_offered_load)
from repro.models.symmetric import build_replicated_local_net

__all__ = [
    "ACTION_TABLES",
    "ActionRow",
    "Architecture",
    "BusSpeedPoint",
    "DedicationComparison",
    "HostScalingPoint",
    "IterationStep",
    "Mode",
    "MpSpeedPoint",
    "NonlocalSolution",
    "ThroughputResult",
    "action_table",
    "arch1_client_contention",
    "build_contention_net",
    "build_local_net",
    "build_replicated_local_net",
    "build_nonlocal_client_net",
    "build_nonlocal_server_net",
    "build_symmetric_net",
    "client_params",
    "communication_time",
    "compare_dedication",
    "contention_completion_times",
    "dedication_crossover_lock_overhead",
    "derive_arch3_round_trip",
    "host_scaling",
    "initial_server_delay",
    "mp_saturation_bound",
    "mp_speed_sensitivity",
    "offered_load",
    "offered_load_table",
    "round_trip_sum",
    "server_params",
    "server_population",
    "server_time_for_offered_load",
    "smart_bus_primitive_costs",
    "smart_bus_sensitivity",
    "solve",
    "solve_at_offered_load",
    "solve_grid",
    "solve_nonlocal",
    "solve_offered_load_grid",
    "throughput_vs_offered_load",
]
