"""Replicated-conversation local models for symmetry lumping.

The chapter-6 local models (:mod:`repro.models.local`) pool the n
conversations as indistinguishable tokens in shared ``Clients`` /
``Servers`` places — a counter abstraction that is itself a (manual)
symmetry reduction.  This module builds the *replicated* form of the
same workload: every conversation owns a private copy of the
client/server chain, all of them sharing the Host (and MP) resource
places.  The two forms describe the same system, but the replicated
net's reachable space grows like the product of the per-conversation
chains — the regime where the packed engine's symmetry lumping
(``analyze(..., reduction="lump")``) earns its keep by folding states
that differ only by a conversation permutation.

Each replica is registered with :meth:`repro.gtpn.net.Net.
declare_symmetry`, which validates that swapping any two replicas is a
net automorphism; the lumped chain is then an exact (strongly lumpable)
quotient, and per-transition measures are recovered by orbit averaging
in :mod:`repro.gtpn.analysis`.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.gtpn import Net, activity_pair
from repro.models.params import LOCAL_PARAMS, Architecture


def build_replicated_local_net(architecture: Architecture,
                               conversations: int,
                               compute_time: float = 0.0,
                               hosts: int = 1) -> Net:
    """The local-conversation net with per-conversation subnets.

    Same parameters and semantics as :func:`repro.models.local.
    build_local_net`, but each conversation runs in its own replica of
    the activity chain (places suffixed ``#c``), sharing the Host and —
    for architectures II-IV — the MP.  With ``conversations >= 2`` the
    replicas are declared as a symmetry group, enabling exact lumping.
    """
    if conversations < 1:
        raise ModelError("need at least one conversation")
    if compute_time < 0:
        raise ModelError("compute time must be non-negative")
    if hosts < 1:
        raise ModelError("need at least one host")
    params = LOCAL_PARAMS[architecture]
    uni = architecture is Architecture.I
    kind = "arch1" if uni else f"arch{architecture.name}"
    net = Net(f"{kind}-replicated-n{conversations}-h{hosts}")
    host = net.place("Host", tokens=hosts)
    mp = None if uni else net.place("MP", tokens=1)

    members = []
    for c in range(conversations):
        p_start, t_start = len(net.places), len(net.transitions)
        if uni:
            _uniprocessor_replica(net, params, c, compute_time, host)
        else:
            _coprocessor_replica(net, params, c, compute_time, host, mp)
        members.append((net.places[p_start:],
                        net.transitions[t_start:]))
    if conversations >= 2:
        net.declare_symmetry(members)
    return net


def _uniprocessor_replica(net: Net, params, c: int,
                          compute_time: float, host) -> None:
    client = net.place(f"Client#{c}", tokens=1)
    server = net.place(f"Server#{c}", tokens=1)
    sent = net.place(f"Sent#{c}")
    posted = net.place(f"Posted#{c}")
    activity_pair(net, f"client#{c}", params.client_step,
                  inputs=[client], outputs=[sent], holds=[host])
    activity_pair(net, f"server#{c}", params.server_step,
                  inputs=[server], outputs=[posted], holds=[host])
    rendezvous = params.match + compute_time + params.serve_base
    activity_pair(net, f"rendezvous#{c}", rendezvous,
                  inputs=[sent, posted], outputs=[client, server],
                  holds=[host], resource="lambda")


def _coprocessor_replica(net: Net, params, c: int,
                         compute_time: float, host, mp) -> None:
    client = net.place(f"Client#{c}", tokens=1)
    server = net.place(f"Server#{c}", tokens=1)
    send_req = net.place(f"SendReq#{c}")
    msg_queued = net.place(f"MsgQueued#{c}")
    rcv_req = net.place(f"RcvReq#{c}")
    rcv_posted = net.place(f"RcvPosted#{c}")
    server_ready = net.place(f"ServerReady#{c}")
    reply_req = net.place(f"ReplyReq#{c}")
    activity_pair(net, f"send#{c}", params.client_step,
                  inputs=[client], outputs=[send_req], holds=[host])
    activity_pair(net, f"process_send#{c}", params.process_send,
                  inputs=[send_req], outputs=[msg_queued], holds=[mp])
    activity_pair(net, f"receive#{c}", params.server_step,
                  inputs=[server], outputs=[rcv_req], holds=[host])
    activity_pair(net, f"process_receive#{c}", params.process_receive,
                  inputs=[rcv_req], outputs=[rcv_posted], holds=[mp])
    activity_pair(net, f"match#{c}", params.match,
                  inputs=[msg_queued, rcv_posted],
                  outputs=[server_ready], holds=[mp])
    activity_pair(net, f"serve#{c}", params.serve_base + compute_time,
                  inputs=[server_ready], outputs=[reply_req],
                  holds=[host])
    activity_pair(net, f"process_reply#{c}", params.process_reply,
                  inputs=[reply_req], outputs=[client, server],
                  holds=[mp], resource="lambda")
