"""Transition-table views of the architecture nets.

Regenerates the thesis's transition tables (6.5, 6.7-6.8, 6.10,
6.12-6.13, 6.15, 6.17-6.18, 6.20, 6.22-6.23) directly from the nets
this library builds: each row lists a transition, its deterministic
delay, and its frequency attribute in the thesis's notation.  The
published tables carried reciprocals of activity means (e.g.
``1/544.7``); because the nets are built from the same means, the
rendered frequencies match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gtpn.net import Net
from repro.models.local import build_local_net
from repro.models.nonlocal_client import build_nonlocal_client_net
from repro.models.nonlocal_server import build_nonlocal_server_net
from repro.models.params import Architecture, Mode


@dataclass(frozen=True)
class TransitionRow:
    """One row of a transition table."""

    name: str
    delay: str
    frequency: str
    resource: str


def transition_rows(net: Net) -> list[TransitionRow]:
    """Render every transition of *net* with its attribute vector."""
    rows = []
    for t in net.transitions:
        delay = "state-dependent" if callable(t.delay) else str(t.delay)
        frequency = t.frequency_label or (
            "state-dependent" if callable(t.frequency) else
            f"{float(t.frequency):g}")
        rows.append(TransitionRow(
            name=t.name, delay=delay, frequency=frequency,
            resource=t.resource or ""))
    return rows


#: table id -> (architecture, mode, role); role is None for local
#: nets, "client"/"server" for the split non-local models.
TRANSITION_TABLE_IDS: dict[str, tuple[Architecture, Mode, str | None]] = {
    "table-6.5": (Architecture.I, Mode.LOCAL, None),
    "table-6.7": (Architecture.I, Mode.NONLOCAL, "client"),
    "table-6.8": (Architecture.I, Mode.NONLOCAL, "server"),
    "table-6.10": (Architecture.II, Mode.LOCAL, None),
    "table-6.12": (Architecture.II, Mode.NONLOCAL, "client"),
    "table-6.13": (Architecture.II, Mode.NONLOCAL, "server"),
    "table-6.15t": (Architecture.III, Mode.LOCAL, None),
    "table-6.17": (Architecture.III, Mode.NONLOCAL, "client"),
    "table-6.18": (Architecture.III, Mode.NONLOCAL, "server"),
    "table-6.20": (Architecture.IV, Mode.LOCAL, None),
    "table-6.22": (Architecture.IV, Mode.NONLOCAL, "client"),
    "table-6.23": (Architecture.IV, Mode.NONLOCAL, "server"),
}


def build_model_net(architecture: Architecture, mode: Mode,
                    role: str | None, *, conversations: int = 2,
                    compute_time: float = 0.0,
                    surrogate_delay: float = 3000.0) -> Net:
    """The net whose transitions a given table describes.

    Non-local nets need a surrogate delay (S_d for the client net,
    C_d for the server net); the table's frequency entries for the
    measured activities do not depend on its value.
    """
    if mode is Mode.LOCAL:
        if role is not None:
            raise ModelError("local nets have no client/server role")
        return build_local_net(architecture, conversations,
                               compute_time)
    if role == "client":
        return build_nonlocal_client_net(architecture, conversations,
                                         surrogate_delay)
    if role == "server":
        return build_nonlocal_server_net(architecture, conversations,
                                         surrogate_delay, compute_time)
    raise ModelError(f"non-local table needs a role, got {role!r}")


def model_transition_rows(table_id: str) -> list[TransitionRow]:
    """Rows of one published transition table, from the built net."""
    try:
        architecture, mode, role = TRANSITION_TABLE_IDS[table_id]
    except KeyError:
        raise ModelError(
            f"unknown transition table {table_id!r}; known: "
            f"{sorted(TRANSITION_TABLE_IDS)}") from None
    net = build_model_net(architecture, mode, role)
    return transition_rows(net)
