"""High-level solution API: throughput and offered load per architecture.

This is the public face of the chapter 6 evaluation: one call returns
the message throughput of any architecture, conversation count, and
server computation time, for local or non-local conversations —
exactly the quantity plotted in Figures 6.17-6.23.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ModelError
from repro.gtpn import analyze
from repro.models.iterate import NonlocalSolution, solve_nonlocal
from repro.models.local import build_local_net
from repro.models.params import (OFFERED_LOAD_SERVER_TIMES_MS,
                                 Architecture, Mode)
from repro.perf.backends import map_sweep


@dataclass(frozen=True)
class ThroughputResult:
    """Solved operating point of one architecture."""

    architecture: Architecture
    mode: Mode
    conversations: int
    compute_time: float       # X, microseconds
    throughput: float         # round trips per microsecond (Lambda)
    #: synchronization primitive the software queue path was costed
    #: with (architecture II only; others always report "tas")
    sync: str = "tas"

    @property
    def throughput_per_ms(self) -> float:
        return self.throughput * 1e3

    @property
    def round_trip_time(self) -> float:
        """Mean cycle time per conversation (Little's result)."""
        return self.conversations / self.throughput


def solve(architecture: Architecture, mode: Mode, conversations: int,
          compute_time: float = 0.0,
          sync: str | None = None) -> ThroughputResult:
    """Solve one architecture model at one workload point.

    ``sync`` selects the synchronization primitive costing the
    architecture II software queue path (``tas``/``cas``/``llsc``/
    ``htm``, see :mod:`repro.models.syncmodel`); ``None`` resolves the
    ambient ``--sync`` / ``REPRO_SYNC`` configuration.  Architectures
    I/III/IV have no software queue path, so the knob normalizes to
    the ``tas`` baseline there and the results are unchanged.
    """
    if conversations < 1:
        raise ModelError("need at least one conversation")
    if compute_time < 0:
        raise ModelError("compute time must be non-negative")
    sync = _resolve_sync(architecture, sync)
    throughput = _solve_cached(architecture, mode, conversations,
                               float(compute_time), sync)
    return ThroughputResult(architecture=architecture, mode=mode,
                            conversations=conversations,
                            compute_time=compute_time,
                            throughput=throughput, sync=sync)


def _resolve_sync(architecture: Architecture,
                  sync: str | None) -> str:
    """Normalize the primitive; only architecture II is sensitive."""
    from repro import config
    name = config.sync() if sync is None else \
        config.normalize_sync(sync, source="sync")
    return name if architecture is Architecture.II else "tas"


@lru_cache(maxsize=4096)
def _solve_cached(architecture: Architecture, mode: Mode,
                  conversations: int, compute_time: float,
                  sync: str = "tas") -> float:
    if mode is Mode.LOCAL:
        params = None
        if sync != "tas":
            from repro.models import syncmodel
            params = syncmodel.local_params(sync)
        net = build_local_net(architecture, conversations, compute_time,
                              params=params)
        return analyze(net).throughput()
    client_params = server_params = None
    if sync != "tas":
        from repro.models import syncmodel
        client_params = syncmodel.nonlocal_client_params(sync)
        server_params = syncmodel.nonlocal_server_params(sync)
    solution: NonlocalSolution = solve_nonlocal(
        architecture, conversations, compute_time,
        client_params=client_params, server_params=server_params)
    return solution.throughput


@dataclass(frozen=True)
class ReferencePoint:
    """The net and exact analysis behind one operating point.

    The cross-validation harness (:mod:`repro.validate`) needs the
    *same* net both exactly analyzed and Monte Carlo simulated; for
    local conversations that is the single closed net, for non-local
    ones the converged client-node net of the fixed-point solution
    (re-analyzed at the converged surrogate delay, so the exact value
    and the simulated sample paths describe one identical model).
    ``solution_throughput`` is the figure-level value from
    :func:`solve` for comparison against external estimators such as
    the kernel DES.
    """

    architecture: Architecture
    mode: Mode
    conversations: int
    compute_time: float
    net: "object"                      # repro.gtpn.Net
    result: "object"                   # repro.gtpn.AnalysisResult
    solution_throughput: float

    @property
    def busy_places(self) -> tuple[str, ...]:
        """Processor pool places present in the reference net."""
        names = {p.name for p in self.net.places}
        return tuple(name for name in ("Host", "MP") if name in names)


def reference_point(architecture: Architecture, mode: Mode,
                    conversations: int,
                    compute_time: float = 0.0) -> ReferencePoint:
    """Build and exactly analyze the reference net of one grid point."""
    if conversations < 1:
        raise ModelError("need at least one conversation")
    if compute_time < 0:
        raise ModelError("compute time must be non-negative")
    if mode is Mode.LOCAL:
        net = build_local_net(architecture, conversations, compute_time)
        result = analyze(net)
        return ReferencePoint(
            architecture=architecture, mode=mode,
            conversations=conversations, compute_time=compute_time,
            net=net, result=result,
            solution_throughput=result.throughput())
    from repro.models.nonlocal_client import build_nonlocal_client_net
    solution = solve_nonlocal(architecture, conversations, compute_time)
    net = build_nonlocal_client_net(
        architecture, conversations, max(solution.server_delay, 1.0))
    result = analyze(net)
    return ReferencePoint(
        architecture=architecture, mode=mode,
        conversations=conversations, compute_time=compute_time,
        net=net, result=result,
        solution_throughput=solution.throughput)


def communication_time(architecture: Architecture, mode: Mode,
                       sync: str | None = None) -> float:
    """C: round-trip communication time of one unloaded conversation.

    Defined as the reciprocal of the single-conversation throughput at
    zero compute time; for architecture I (everything serialized on
    the host) this equals the sum of the round-trip activity times,
    while the coprocessor architectures pipeline and come in below the
    sum (section 6.9.2).
    """
    return 1.0 / solve(architecture, mode, 1, 0.0,
                       sync=sync).throughput


def offered_load(architecture: Architecture, mode: Mode,
                 server_time_us: float) -> float:
    """Offered load C / (C + S) of a conversation (section 6.3)."""
    if server_time_us < 0:
        raise ModelError("server time must be non-negative")
    c = communication_time(architecture, mode)
    return c / (c + server_time_us)


def solve_grid(points: list[tuple[Architecture, Mode, int, float]], *,
               jobs: int | None = None) -> list[ThroughputResult]:
    """Solve many independent operating points, possibly in parallel.

    The workhorse of every figure sweep: each point is one exact GTPN
    solve, fanned out through :func:`repro.perf.backends.map_sweep` with
    results in input order — values are identical at any job count.

    Points of the same architecture share their reachability structure:
    with the analysis cache enabled, each solve re-times the cached
    skeleton (:mod:`repro.gtpn.sweep`) instead of re-exploring the
    state space, so a grid costs one build per structure plus one
    linear solve per point.  The persistent worker pool primes workers
    from the shared cache, so the fan-out shares skeletons too.

    Points may carry a fifth element naming the synchronization
    primitive; 4-tuples get the ambient ``--sync`` configuration
    resolved *here*, in the parent — worker processes do not inherit
    CLI configuration, so the primitive always ships inside the point.
    """
    from repro import config
    default_sync = config.sync()
    expanded = [point if len(point) >= 5 else (*point, default_sync)
                for point in points]
    return map_sweep(solve, expanded, jobs=jobs, star=True)


def solve_offered_load_grid(
        points: list[tuple[Architecture, Mode, int, float, Architecture]],
        *, jobs: int | None = None) -> list[ThroughputResult]:
    """Solve a grid of :func:`solve_at_offered_load` points, in order.

    The realistic-workload figures (6.18/6.19/6.22/6.23) are grids of
    (architecture, mode, conversations, load, reference) tuples; this
    fans them out with the same structure-sharing and serial-fallback
    behaviour as :func:`solve_grid` — including parent-side resolution
    of the ambient synchronization primitive for 5-tuples (a sixth
    element overrides it per point).
    """
    from repro import config
    default_sync = config.sync()
    expanded = [point if len(point) >= 6 else (*point, default_sync)
                for point in points]
    return map_sweep(solve_at_offered_load, expanded, jobs=jobs,
                     star=True)


def offered_load_table(mode: Mode, *,
                       jobs: int | None = None,
                       ) -> dict[Architecture, list[float]]:
    """Regenerate Table 6.24 (local) / Table 6.25 (non-local).

    Rows are the thesis's server times (0 to 45.6 ms); columns the four
    architectures.  The per-architecture communication times C (one
    exact solve each) fan out in parallel; the rest of the grid is
    arithmetic on C, identical to ``offered_load`` point by point.
    """
    times = map_sweep(communication_time,
                      [(arch, mode) for arch in Architecture],
                      jobs=jobs, star=True)
    return {
        arch: [c / (c + ms * 1000.0)
               for ms in OFFERED_LOAD_SERVER_TIMES_MS]
        for arch, c in zip(Architecture, times)
    }


def server_time_for_offered_load(architecture: Architecture, mode: Mode,
                                 load: float,
                                 sync: str | None = "tas") -> float:
    """Invert the offered-load definition: S = C (1 - o) / o.

    ``sync`` defaults to the pinned ``tas`` baseline (not the ambient
    configuration): this normalization anchors the x axis of the
    realistic-workload figures, and it must agree between the parent
    process and CLI-configuration-free sweep workers.
    """
    if not 0 < load <= 1:
        raise ModelError("offered load must be in (0, 1]")
    c = communication_time(architecture, mode, sync=sync)
    return c * (1.0 - load) / load


def solve_at_offered_load(architecture: Architecture, mode: Mode,
                          conversations: int, load: float,
                          reference: Architecture = Architecture.I,
                          sync: str | None = None,
                          ) -> ThroughputResult:
    """Solve one grid point of the realistic-workload figures.

    Self-contained (it derives the server time from the reference
    architecture's offered-load normalization itself), so a sweep over
    such points ships cleanly to worker processes.  ``sync`` prices
    the solved architecture's software queue path; the *reference*
    normalization deliberately stays at the committed baseline so
    equal server times keep lining up across primitives.
    """
    server_time = server_time_for_offered_load(reference, mode, load)
    return solve(architecture, mode, conversations, server_time,
                 sync=sync)


def throughput_vs_offered_load(architecture: Architecture, mode: Mode,
                               conversations: int,
                               loads: list[float], *,
                               reference: Architecture = Architecture.I,
                               jobs: int | None = None,
                               ) -> list[ThroughputResult]:
    """One curve of Figures 6.18/6.19/6.22/6.23.

    The thesis plots every architecture against the offered load
    *computed for architecture I* so that equal server times line up
    across architectures; ``reference`` selects that normalization.
    """
    return solve_offered_load_grid(
        [(architecture, mode, conversations, load, reference)
         for load in loads],
        jobs=jobs)
