"""Ablations of the design choices called out in DESIGN.md.

Two knobs the thesis fixes by assumption are swept here:

* **Smart-bus speed** (section 6.4 assumes the four-edge handshake
  equals one Versabus memory cycle, noting "a much higher speed is
  achievable ... these conservative times give a more realistic
  basis").  :func:`smart_bus_sensitivity` re-derives the architecture
  III round trip for faster/slower handshakes using the chapter 4
  accounting: one round trip contains sixteen atomic queueing
  operations and four 40-byte copies, each replaced by a bus
  primitive.
* **Coprocessor speed** (the front-end modeling studies the thesis
  cites ask how performance depends on the relative speeds of host
  and front-end).  :func:`mp_speed_sensitivity` scales every MP-side
  activity of architecture II and resolves the local model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ModelError
from repro.gtpn import analyze
from repro.models.local import _coprocessor_net
from repro.models.params import (COPY_40_BYTES_US, INSTRUCTION_TIME_US,
                                 LOCAL_PARAMS, QUEUE_OP_US, Architecture,
                                 Mode, round_trip_sum)

#: Chapter 4 measurement: one (non-local) round trip performs sixteen
#: queueing operations and four 40-byte copy operations.
QUEUE_OPS_PER_ROUND_TRIP = 16
COPIES_PER_ROUND_TRIP = 4

#: A 40-byte block is twenty 16-bit words.
WORDS_PER_MESSAGE = 20


@dataclass(frozen=True)
class BusSpeedPoint:
    """Derived architecture III cost at one bus speed."""

    handshake_us: float        # four-edge handshake duration
    queue_op_us: float         # smart-bus atomic queue operation
    copy_us: float             # smart-bus 40-byte block move
    round_trip_us: float       # derived arch III round-trip total


def smart_bus_primitive_costs(handshake_us: float,
                              ) -> tuple[float, float]:
    """(queue op, 40-byte copy) cost under the smart bus.

    Three instructions initiate any primitive (9 us on the 0.3 MIPS
    68000); the memory-cycle component scales with the handshake: one
    four-edge handshake per queue op, and a request handshake plus
    twenty half-handshake word transfers per block copy (Table 6.1).
    """
    if handshake_us <= 0:
        raise ModelError("handshake time must be positive")
    initiate = 3 * INSTRUCTION_TIME_US
    queue_op = initiate + handshake_us
    copy = initiate + handshake_us \
        + WORDS_PER_MESSAGE * (handshake_us / 2.0)
    return queue_op, copy


def derive_arch3_round_trip(handshake_us: float = 1.0,
                            mode: Mode = Mode.LOCAL) -> BusSpeedPoint:
    """Architecture III round trip derived from architecture II.

    Replaces the software queue operations (74 us each) and software
    copies (220 us per 40 bytes) of the architecture II round trip
    with the bus primitives — the same derivation the thesis used to
    obtain the architecture III tables ("times for architectures III
    and IV were derived from architecture II after factoring in the
    primitives of the smart bus").
    """
    queue_op, copy = smart_bus_primitive_costs(handshake_us)
    base = round_trip_sum(Architecture.II, mode)
    derived = base \
        - QUEUE_OPS_PER_ROUND_TRIP * (QUEUE_OP_US - queue_op) \
        - COPIES_PER_ROUND_TRIP * (COPY_40_BYTES_US - copy)
    return BusSpeedPoint(handshake_us=handshake_us,
                         queue_op_us=queue_op, copy_us=copy,
                         round_trip_us=derived)


def smart_bus_sensitivity(handshake_scales: list[float],
                          mode: Mode = Mode.LOCAL,
                          ) -> list[BusSpeedPoint]:
    """Derived arch III round trips across bus-speed scalings.

    A scale of 1.0 is the thesis's conservative assumption (handshake
    = 1 us memory cycle); 0.5 is a bus twice as fast, etc.
    """
    return [derive_arch3_round_trip(scale * 1.0, mode)
            for scale in handshake_scales]


@dataclass(frozen=True)
class MpSpeedPoint:
    """Architecture II local throughput at one MP/host speed ratio."""

    speed_ratio: float         # MP speed relative to the host
    conversations: int
    compute_time: float
    throughput: float


def mp_speed_sensitivity(speed_ratios: list[float], conversations: int,
                         compute_time: float) -> list[MpSpeedPoint]:
    """Throughput of architecture II as the MP gets slower/faster.

    ``speed_ratio`` divides every MP-side activity time (process send
    / process receive / match / process reply); 1.0 reproduces the
    published model, 0.5 is an MP half the host's speed.
    """
    if conversations < 1:
        raise ModelError("need at least one conversation")
    points = []
    base = LOCAL_PARAMS[Architecture.II]
    for ratio in speed_ratios:
        if ratio <= 0:
            raise ModelError("speed ratio must be positive")
        params = replace(
            base,
            process_send=base.process_send / ratio,
            process_receive=base.process_receive / ratio,
            match=base.match / ratio,
            process_reply=base.process_reply / ratio)
        net = _coprocessor_net(params, conversations, compute_time,
                               hosts=1)
        points.append(MpSpeedPoint(
            speed_ratio=ratio, conversations=conversations,
            compute_time=compute_time,
            throughput=analyze(net).throughput()))
    return points
