"""GTPN models of the server node for non-local conversations.

Reproduces Figures 6.11 (architecture I) and 6.14 (architectures
II-IV) with the transition attributes of Tables 6.8 / 6.13 / 6.18 /
6.23.  Client think time is collapsed into the surrogate delay
``client_delay`` (C_d); request arrival manifests as a network
interrupt whose match processing runs on the interrupt processor.

The net measures the two quantities the iterative solution needs:

* ``lambda_in`` — the arrival rate of client requests (exit rate of
  the client-wait pair), and
* ``population`` — the mean number of requests inside the service
  subsystem (pending interrupts + in-service match / serve /
  process-reply activities), via the extra ``occupancy`` resource.

``S_d = population / lambda_in`` plus the constant request/reply DMA
times (section 6.6.4) feeds back into the client model.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.gtpn import AnalysisResult, Context, Net, activity_pair
from repro.models.params import (NONLOCAL_SERVER_PARAMS, Architecture,
                                 NonlocalServerParams)

#: Resource name measuring the in-service population.
OCCUPANCY = "population"


def build_nonlocal_server_net(architecture: Architecture,
                              conversations: int,
                              client_delay: float,
                              compute_time: float = 0.0,
                              hosts: int = 1,
                              params: NonlocalServerParams | None = None,
                              ) -> Net:
    """The server-node net with surrogate client delay C_d (us).

    ``hosts`` > 1 models a multiprocessor node (see
    :func:`repro.models.nonlocal_client.build_nonlocal_client_net`).
    ``params`` overrides the Table 6.8/6.13/6.18/6.23 activity means
    (the :mod:`repro.models.syncmodel` seam).
    """
    if conversations < 1:
        raise ModelError("need at least one conversation")
    if client_delay < 1.0:
        raise ModelError("client delay must be at least one microsecond")
    if compute_time < 0:
        raise ModelError("compute time must be non-negative")
    if hosts < 1:
        raise ModelError("need at least one host")
    if params is None:
        params = NONLOCAL_SERVER_PARAMS[architecture]
    net = Net(f"arch{architecture.name}-nonlocal-server-"
              f"n{conversations}-h{hosts}")

    servers = net.place("Servers", tokens=conversations)
    host = net.place("Host", tokens=hosts)
    net_intr = net.place("NetIntr")
    intr_svc = net.place("IntrSvc")
    client_wait = net.place("ClientWait")
    server_ready = net.place("ServerReady")

    uniprocessor = params.process_receive is None
    interrupt_processor = host if uniprocessor else \
        net.place("MP", tokens=1)

    def interrupt_free(ctx: Context) -> bool:
        """Thesis's ``(RequestService = 0) & !Tmatch & !Tmatch'``."""
        return (ctx.tokens("NetIntr") == 0
                and ctx.tokens("IntrSvc") == 0
                and not ctx.firing("match")
                and not ctx.firing("match.loop"))

    if uniprocessor:
        # Architecture I (Table 6.8): receive on the host, inhibited
        # during interrupt processing.
        activity_pair(net, "receive", params.receive_step,
                      inputs=[servers], outputs=[client_wait],
                      holds=[host], gate=interrupt_free)
    else:
        rcv_req = net.place("RcvReq")
        activity_pair(net, "receive", params.receive_step,
                      inputs=[servers], outputs=[rcv_req], holds=[host])
        activity_pair(net, "process_receive", params.process_receive,
                      inputs=[rcv_req], outputs=[client_wait],
                      holds=[interrupt_processor], gate=interrupt_free)

    # T3/T4 or T2/T3 — surrogate client delay (infinite server); each
    # exit is one request arriving at this node.
    activity_pair(net, "client_wait", client_delay,
                  inputs=[client_wait], outputs=[net_intr],
                  resource="lambda_in")

    # interrupt dispatch, then match processing (T8/T9 or T7/T8)
    net.transition("dispatch", delay=0,
                   inputs=[net_intr, interrupt_processor],
                   outputs=[intr_svc])
    activity_pair(net, "match", params.match,
                  inputs=[intr_svc],
                  outputs=[server_ready, interrupt_processor],
                  occupancy=OCCUPANCY)

    if uniprocessor:
        # T11/T12 — compute + syscall reply on the host, inhibited by
        # interrupts; completes the round trip.
        activity_pair(net, "serve", params.serve_base + compute_time,
                      inputs=[server_ready], outputs=[servers],
                      holds=[host], gate=interrupt_free,
                      resource="lambda_out", occupancy=OCCUPANCY)
    else:
        reply_req = net.place("ReplyReq")
        # T9/T10 — restart server + compute + syscall reply (Host)
        activity_pair(net, "serve", params.serve_base + compute_time,
                      inputs=[server_ready], outputs=[reply_req],
                      holds=[host], occupancy=OCCUPANCY)
        # T11/T12 — process reply (MP), inhibited by interrupts
        activity_pair(net, "process_reply", params.process_reply,
                      inputs=[reply_req], outputs=[servers],
                      holds=[interrupt_processor], gate=interrupt_free,
                      resource="lambda_out", occupancy=OCCUPANCY)
    return net


def server_population(result: AnalysisResult) -> float:
    """Mean number of requests inside the service subsystem (N).

    Counts requests waiting as pending interrupts, dispatched but
    unprocessed, queued for the host, queued for the reply processing,
    and the in-flight occupancy of the service activities.
    """
    population = result.resource_usage(OCCUPANCY)
    for place in ("NetIntr", "IntrSvc", "ServerReady", "ReplyReq"):
        if result.net.has_place(place):    # arch I has no ReplyReq
            population += result.mean_tokens(place)
    return population


def server_params(architecture: Architecture) -> NonlocalServerParams:
    """The Table 6.8/6.13/6.18/6.23 parameters for *architecture*."""
    return NONLOCAL_SERVER_PARAMS[architecture]
