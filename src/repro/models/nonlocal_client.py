"""GTPN models of the client node for non-local conversations.

Reproduces Figures 6.10 (architecture I) and 6.13 (architectures
II-IV) with the transition attributes of Tables 6.7 / 6.12 / 6.17 /
6.22.  The server's round trip is collapsed into a surrogate delay
``server_delay`` (S_d) refined by the iterative solution of
section 6.6.3.

Network-interrupt priority is modelled exactly as in the thesis: the
activities executing on the interrupt processor (host for architecture
I, MP otherwise) are inhibited — their frequency expressions evaluate
to zero — whenever an interrupt is pending (``NetIntr`` marked) or
being serviced (the cleanup pair firing), and the reply DMA cannot
start the next packet until the previous interrupt is fielded.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.gtpn import Context, Net, activity_pair
from repro.models.params import (NONLOCAL_CLIENT_PARAMS, Architecture,
                                 NonlocalClientParams)


def build_nonlocal_client_net(architecture: Architecture,
                              conversations: int,
                              server_delay: float,
                              hosts: int = 1,
                              params: NonlocalClientParams | None = None,
                              ) -> Net:
    """The client-node net with surrogate server delay S_d (us).

    ``hosts`` > 1 models a multiprocessor node (the thesis's
    experimental 925 nodes had two hosts; its Figure 6.15 validation
    model "had two tokens" in the Host places).  ``params`` overrides
    the Table 6.7/6.12/6.17/6.22 activity means (the
    :mod:`repro.models.syncmodel` seam).
    """
    if conversations < 1:
        raise ModelError("need at least one conversation")
    if server_delay < 1.0:
        raise ModelError("server delay must be at least one microsecond")
    if hosts < 1:
        raise ModelError("need at least one host")
    if params is None:
        params = NONLOCAL_CLIENT_PARAMS[architecture]
    net = Net(f"arch{architecture.name}-nonlocal-client-"
              f"n{conversations}-h{hosts}")

    clients = net.place("Clients", tokens=conversations)
    host = net.place("Host", tokens=hosts)
    io_out = net.place("IoOut", tokens=1)
    io_in = net.place("IoIn", tokens=1)
    net_intr = net.place("NetIntr")
    intr_svc = net.place("IntrSvc")
    dma_out_req = net.place("DmaOutReq")
    server_wait = net.place("ServerWait")
    reply_arrived = net.place("ReplyArrived")

    interrupt_processor = host if params.process_send is None else \
        net.place("MP", tokens=1)

    def interrupt_free(ctx: Context) -> bool:
        """No interrupt pending or in service (thesis's
        ``(NetIntr = 0) & !Tcleanup & !Tcleanup'`` expressions)."""
        return (ctx.tokens("NetIntr") == 0
                and ctx.tokens("IntrSvc") == 0
                and not ctx.firing("cleanup")
                and not ctx.firing("cleanup.loop"))

    if params.process_send is None:
        # Architecture I (Table 6.7): syscall send executes on the
        # host and is inhibited during interrupt processing.
        activity_pair(net, "send", params.send_step,
                      inputs=[clients], outputs=[dma_out_req],
                      holds=[host], gate=interrupt_free,
                      resource="lambda")
    else:
        # Architectures II-IV (Table 6.12 etc.): the host syscall is
        # never inhibited (interrupts go to the MP), the MP processing
        # is.
        send_req = net.place("SendReq")
        activity_pair(net, "send", params.send_step,
                      inputs=[clients], outputs=[send_req],
                      holds=[host], resource="lambda")
        activity_pair(net, "process_send", params.process_send,
                      inputs=[send_req], outputs=[dma_out_req],
                      holds=[interrupt_processor], gate=interrupt_free)

    # T6/T7 or T8/T9 — DMA of the request packet onto the wire
    activity_pair(net, "dma_out", params.dma_out,
                  inputs=[dma_out_req], outputs=[server_wait],
                  holds=[io_out])

    # T8/T9 or T10/T11 — surrogate server delay; every waiting client
    # progresses independently (infinite-server behaviour)
    activity_pair(net, "server_delay", server_delay,
                  inputs=[server_wait], outputs=[reply_arrived])

    # T11/T12 or T13/T14 — DMA of the reply packet; the interface
    # cannot take the next packet until the previous interrupt has
    # been fielded
    activity_pair(net, "dma_in", params.dma_in,
                  inputs=[reply_arrived], outputs=[net_intr],
                  holds=[io_in], gate=interrupt_free)

    # interrupt dispatch: seizes the interrupt processor immediately
    net.transition("dispatch", delay=0,
                   inputs=[net_intr, interrupt_processor],
                   outputs=[intr_svc])

    # T4/T5 or T6/T7 — interrupt service: cleanup + restart client
    activity_pair(net, "cleanup", params.cleanup,
                  inputs=[intr_svc],
                  outputs=[clients, interrupt_processor])
    return net


def client_params(architecture: Architecture) -> NonlocalClientParams:
    """The Table 6.7/6.12/6.17/6.22 parameters for *architecture*."""
    return NONLOCAL_CLIENT_PARAMS[architecture]
