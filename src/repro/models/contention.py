"""Low-level shared-memory contention model (section 6.6.2, Fig. 6.8).

Exact modeling of memory interference inside the big architecture nets
would explode their state space, so the thesis computes, in a separate
low-level GTPN, the *contention completion time* of each activity when
all possible other activities overlap with it, and uses those inflated
times in the high-level models.

The per-activity subnet follows Figure 6.8 / Table 6.3.  An activity
with best-case duration ``b`` of which ``s`` ticks are shared-memory
accesses cycles through three decision points:

* completion choice — each tick the activity finishes with
  probability ``1/b`` (transition T1, carrying the rate resource) or
  continues (immediate T0);
* phase choice — a continuing tick is a memory access with
  probability ``s/b`` (immediate T2) or pure processing (T3);
* memory access — T4 needs the single Memory token for one tick;
  when another activity holds it, the access stalls and the cycle
  stretches.

The contention completion time is the reciprocal of the steady-state
completion rate.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.gtpn import Net, analyze
from repro.models.params import (ARCH1_CLIENT_CONTENTION_ACTIVITIES,
                                 ContentionActivity)


def build_contention_net(activities: list[ContentionActivity]) -> Net:
    """The Figure 6.8 net for a set of concurrently running activities."""
    if not activities:
        raise ModelError("need at least one activity")
    names = [a.name for a in activities]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate activity names: {names}")
    net = Net("contention-" + "+".join(names))
    memory = net.place("Memory", tokens=1)

    for activity in activities:
        best = activity.best
        share = activity.shared_access / best
        if not 0 <= share < 1:
            raise ModelError(
                f"{activity.name}: shared access must be < total time")
        p_done = 1.0 / best
        p1 = net.place(f"{activity.name}.P1", tokens=1)
        p2 = net.place(f"{activity.name}.P2")
        p3 = net.place(f"{activity.name}.P3")
        # completion choice (T1 carries the rate resource)
        net.transition(f"{activity.name}.T0", delay=0,
                       frequency=1.0 - p_done, inputs=[p1], outputs=[p2])
        net.transition(f"{activity.name}.T1", delay=1, frequency=p_done,
                       resource=f"rate.{activity.name}",
                       inputs=[p1], outputs=[p1])
        # phase choice
        net.transition(f"{activity.name}.T2", delay=0, frequency=share,
                       inputs=[p2], outputs=[p3])
        net.transition(f"{activity.name}.T3", delay=1,
                       frequency=1.0 - share, inputs=[p2], outputs=[p1])
        # the memory access itself
        net.transition(f"{activity.name}.T4", delay=1, frequency=1.0,
                       inputs=[p3, memory], outputs=[p1, memory])
    return net


def contention_completion_times(activities: list[ContentionActivity],
                                ) -> dict[str, float]:
    """Contention completion time of each activity in the overlap set."""
    result = analyze(build_contention_net(activities))
    times: dict[str, float] = {}
    for activity in activities:
        rate = result.resource_usage(f"rate.{activity.name}")
        if rate <= 0:
            raise ModelError(f"{activity.name}: zero completion rate")
        times[activity.name] = 1.0 / rate
    return times


def arch1_client_contention() -> dict[str, float]:
    """Reproduce Table 6.2's "Contention" column.

    SendProc and NetIntr both execute on the host and therefore never
    overlap each other; each is modelled against the two DMA
    activities, matching "the 'contention' completion time for each
    activity (which results when all possible other activities
    overlap)".
    """
    send, dma_out, dma_in, netintr = ARCH1_CLIENT_CONTENTION_ACTIVITIES
    times: dict[str, float] = {}
    times.update({k: v for k, v in contention_completion_times(
        [send, dma_out, dma_in]).items() if k == send.name})
    times.update({k: v for k, v in contention_completion_times(
        [netintr, dma_out, dma_in]).items() if k == netintr.name})
    dma_set = contention_completion_times([send, dma_out, dma_in])
    times[dma_out.name] = dma_set[dma_out.name]
    times[dma_in.name] = dma_set[dma_in.name]
    return times
