"""GTPN models of local conversations (Figures 6.9 and 6.12).

Architecture I (Figure 6.9, Table 6.5): everything executes on the
single host.  Client and server steps and the combined
match + compute + reply activity all hold the Host token, so they share
the processor.

Architectures II-IV (Figure 6.12 with the parameters of Tables 6.10 /
6.15 / 6.20): the syscall halves hold the Host, the kernel-processing
halves hold the MP; the two processors pipeline within and across
conversations.

Workload (section 6.3): ``conversations`` client/server pairs;
``compute_time`` is the mean server computation X per conversation.
The throughput resource ``lambda`` counts completed round trips per
microsecond.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.gtpn import Net, activity_pair
from repro.models.params import (LOCAL_PARAMS, Architecture,
                                 LocalModelParams)


def build_local_net(architecture: Architecture, conversations: int,
                    compute_time: float = 0.0, hosts: int = 1,
                    params: LocalModelParams | None = None) -> Net:
    """The local-conversation net for one architecture.

    ``compute_time`` is X in the thesis's frequency expressions
    (microseconds of server computation per conversation).  ``hosts``
    extends the node to a shared-memory multiprocessor with several
    hosts served by the single message coprocessor (chapter 7,
    Figure 7.1); the thesis's published results use one host.
    ``params`` overrides the Table 6.5/6.10/6.15/6.20 activity means
    (the seam :mod:`repro.models.syncmodel` re-costs architecture II
    through); the default is the committed table for *architecture*.
    """
    if conversations < 1:
        raise ModelError("need at least one conversation")
    if compute_time < 0:
        raise ModelError("compute time must be non-negative")
    if hosts < 1:
        raise ModelError("need at least one host")
    if params is None:
        params = LOCAL_PARAMS[architecture]
    if architecture is Architecture.I:
        return _uniprocessor_net(params, conversations, compute_time,
                                 hosts)
    return _coprocessor_net(params, conversations, compute_time, hosts)


def _uniprocessor_net(params: LocalModelParams, conversations: int,
                      compute_time: float, hosts: int) -> Net:
    net = Net(f"arch1-local-n{conversations}-h{hosts}")
    clients = net.place("Clients", tokens=conversations)
    servers = net.place("Servers", tokens=conversations)
    host = net.place("Host", tokens=hosts)
    sent = net.place("Sent")
    posted = net.place("Posted")

    # T0/T1 — syscall send + restart client (actions 1, 7)
    activity_pair(net, "client", params.client_step,
                  inputs=[clients], outputs=[sent], holds=[host])
    # T2/T3 — syscall receive + restart server (actions 2, 6)
    activity_pair(net, "server", params.server_step,
                  inputs=[servers], outputs=[posted], holds=[host])
    # T4/T5 — match + compute + reply (actions 3, 4, 5)
    rendezvous = params.match + compute_time + params.serve_base
    activity_pair(net, "rendezvous", rendezvous,
                  inputs=[sent, posted], outputs=[clients, servers],
                  holds=[host], resource="lambda")
    return net


def _coprocessor_net(params: LocalModelParams, conversations: int,
                     compute_time: float, hosts: int) -> Net:
    net = Net(f"arch{params.architecture.name}-local-"
              f"n{conversations}-h{hosts}")
    clients = net.place("Clients", tokens=conversations)
    servers = net.place("Servers", tokens=conversations)
    host = net.place("Host", tokens=hosts)
    mp = net.place("MP", tokens=1)
    send_req = net.place("SendReq")
    msg_queued = net.place("MsgQueued")
    rcv_req = net.place("RcvReq")
    rcv_posted = net.place("RcvPosted")
    server_ready = net.place("ServerReady")
    reply_req = net.place("ReplyReq")

    # T0/T1 — syscall send + restart client (Host)
    activity_pair(net, "send", params.client_step,
                  inputs=[clients], outputs=[send_req], holds=[host])
    # T4/T5 — process send (MP)
    activity_pair(net, "process_send", params.process_send,
                  inputs=[send_req], outputs=[msg_queued], holds=[mp])
    # T2/T3 — syscall receive + restart server (Host)
    activity_pair(net, "receive", params.server_step,
                  inputs=[servers], outputs=[rcv_req], holds=[host])
    # T6/T7 — process receive (MP)
    activity_pair(net, "process_receive", params.process_receive,
                  inputs=[rcv_req], outputs=[rcv_posted], holds=[mp])
    # T8/T9 — match client with server (MP)
    activity_pair(net, "match", params.match,
                  inputs=[msg_queued, rcv_posted],
                  outputs=[server_ready], holds=[mp])
    # T10/T11 — restart server + compute + syscall reply (Host)
    activity_pair(net, "serve", params.serve_base + compute_time,
                  inputs=[server_ready], outputs=[reply_req], holds=[host])
    # T12/T13 — process reply (MP); completes the rendezvous
    activity_pair(net, "process_reply", params.process_reply,
                  inputs=[reply_req], outputs=[clients, servers],
                  holds=[mp], resource="lambda")
    return net
