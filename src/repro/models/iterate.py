"""Iterative solution of the split non-local models (section 6.6.3).

The client and server nodes are modelled separately, coupled through
two surrogate delays:

* the client model embeds S_d, the mean server delay per conversation
  (including queueing at the server node), and
* the server model embeds C_d, the mean waiting time for client
  requests.

The combined system is solved by fixed-point iteration exactly as in
the thesis:

1. solve the client model with the current S_d -> throughput Lambda;
2. Little's result: per-client cycle time T = Clients / Lambda, so the
   client-side time is C_d' = T - S_d;
3. the client's absence overlaps the server's receive processing S_c,
   so the waiting time seen by the server is C_d = C_d' - S_c;
4. solve the server model with C_d -> arrival rate lambda and mean
   population N; Little again: S_d = N / lambda, plus the constant
   request/reply DMA times (section 6.6.4);
5. repeat until successive S_d values agree within tolerance.

Only the surrogate delays change between iterations, so the client and
server nets keep their structure throughout: each side solves through a
:class:`repro.gtpn.sweep.SweepSolver`, which explores the reachability
graph once on the first iteration and re-times it on every later one —
bit-identical to per-iteration :func:`repro.gtpn.analyze`, and
independent of whether the global analysis cache is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConvergenceError
from repro.gtpn import AnalysisResult
from repro.gtpn.sweep import SweepSolver
from repro.models.nonlocal_client import build_nonlocal_client_net
from repro.models.nonlocal_server import (NONLOCAL_SERVER_PARAMS,
                                          build_nonlocal_server_net,
                                          server_population)
from repro.models.params import (NONLOCAL_CLIENT_PARAMS, Architecture)

#: Relative S_d change below which the fixed point is converged.
DEFAULT_TOLERANCE = 1e-3

DEFAULT_MAX_ITERATIONS = 60

#: Floor keeping surrogate delays valid activity means (>= 1 tick).
_MIN_DELAY = 1.0


@dataclass
class IterationStep:
    """Bookkeeping for one round of the fixed point."""

    server_delay: float
    throughput: float
    client_cycle: float
    client_delay: float
    arrival_rate: float
    population: float
    new_server_delay: float


@dataclass
class NonlocalSolution:
    """Converged solution of the split non-local model."""

    architecture: Architecture
    conversations: int
    compute_time: float
    throughput: float            # round trips per microsecond (Lambda)
    server_delay: float          # S_d
    client_delay: float          # C_d
    iterations: int
    client_result: AnalysisResult
    server_result: AnalysisResult
    history: list[IterationStep] = field(default_factory=list)

    @property
    def round_trip_time(self) -> float:
        """Mean conversation cycle time per client (T = N / Lambda)."""
        return self.conversations / self.throughput


def initial_server_delay(architecture: Architecture,
                         compute_time: float) -> float:
    """Thesis starting point: server-side communication + compute time."""
    params = NONLOCAL_SERVER_PARAMS[architecture]
    return (params.dma_in + params.match + params.serve_base
            + compute_time + (params.process_reply or 0.0)
            + params.dma_out)


def solve_nonlocal(architecture: Architecture, conversations: int,
                   compute_time: float = 0.0, *,
                   tolerance: float = DEFAULT_TOLERANCE,
                   max_iterations: int = DEFAULT_MAX_ITERATIONS,
                   damping: float = 0.5,
                   hosts: int = 1,
                   client_params=None,
                   server_params=None) -> NonlocalSolution:
    """Fixed-point solution of the non-local conversation model.

    ``damping`` blends successive S_d estimates (new = d*new +
    (1-d)*old), which stabilizes the alternating client/server solve
    for heavily loaded models without changing the fixed point.
    ``hosts`` sets the host count per node (the published curves use
    one; the thesis's own validation model used two).
    ``client_params`` / ``server_params`` override the activity means
    of the two split nets together (the
    :mod:`repro.models.syncmodel` seam); defaults are the committed
    tables for *architecture*.
    """
    if client_params is None:
        client_params = NONLOCAL_CLIENT_PARAMS[architecture]
    if server_params is None:
        server_params = NONLOCAL_SERVER_PARAMS[architecture]
    s_c = server_params.receive_path
    dma_constant = server_params.dma_in + server_params.dma_out

    server_delay = initial_server_delay(architecture, compute_time)
    history: list[IterationStep] = []
    client_result = server_result = None
    # one solver per side: iterations re-time the first iteration's
    # reachability skeleton instead of rebuilding it (see module
    # docstring); results are bit-identical to plain analyze()
    client_solver = SweepSolver()
    server_solver = SweepSolver()

    for iteration in range(1, max_iterations + 1):
        client_net = build_nonlocal_client_net(
            architecture, conversations, max(server_delay, _MIN_DELAY),
            hosts=hosts, params=client_params)
        client_result = client_solver.analyze(client_net)
        throughput = client_result.throughput("lambda")
        if throughput <= 0:
            raise ConvergenceError(
                f"{architecture}: client model produced zero throughput")
        cycle = conversations / throughput
        client_delay = max(cycle - server_delay - s_c, _MIN_DELAY)

        server_net = build_nonlocal_server_net(
            architecture, conversations, client_delay, compute_time,
            hosts=hosts, params=server_params)
        server_result = server_solver.analyze(server_net)
        arrival_rate = server_result.resource_usage("lambda_in")
        if arrival_rate <= 0:
            raise ConvergenceError(
                f"{architecture}: server model produced zero arrivals")
        population = server_population(server_result)
        new_server_delay = population / arrival_rate + dma_constant

        history.append(IterationStep(
            server_delay=server_delay, throughput=throughput,
            client_cycle=cycle, client_delay=client_delay,
            arrival_rate=arrival_rate, population=population,
            new_server_delay=new_server_delay))

        if abs(new_server_delay - server_delay) <= \
                tolerance * max(server_delay, 1.0):
            return NonlocalSolution(
                architecture=architecture, conversations=conversations,
                compute_time=compute_time, throughput=throughput,
                server_delay=new_server_delay, client_delay=client_delay,
                iterations=iteration, client_result=client_result,
                server_result=server_result, history=history)
        server_delay = (damping * new_server_delay
                        + (1.0 - damping) * server_delay)

    raise ConvergenceError(
        f"{architecture}, {conversations} conversations, "
        f"X={compute_time}: S_d did not converge in {max_iterations} "
        f"iterations (last {history[-1].new_server_delay:.1f} vs "
        f"{history[-1].server_delay:.1f})")
