"""Content-addressed cache for exact GTPN analyses.

A net is fingerprinted by a *split key* (:class:`NetFingerprint`):

* the **structure fingerprint** covers everything that shapes the
  reachable state space — place count, initial marking, arcs, resource
  tags, and the *code* of state-dependent attributes — and is
  invariant across a timing sweep, while
* the **timing fingerprint** covers the numeric attribute values
  (firing times and frequency weights, including numbers captured in
  closure cells and defaults).

Names (of the net, its places, and its transitions) stay out of both
halves: two structurally identical nets share one solve, and the
cached payload is re-bound to whichever net asked.  The analyzer keys
full payloads on ``(structure, timing, method)`` and the reusable
reachability skeleton (:mod:`repro.gtpn.sweep`) on the structure half
alone, which is what lets a parameter grid rebuild the graph once.

State-dependent attributes (callables) are fingerprinted through
their code object (bytecode, constants, referenced names, defaults)
plus the values captured in their closure cells, which is exactly the
information that determines their behaviour for the closure-built
lambdas the architecture models use; numeric cell/default values are
lifted into the timing half.  A callable without usable code (e.g. a
C callable) makes the net uncacheable — :func:`fingerprint_net`
returns ``None`` and the analyzer simply solves it.

The cache is in-memory (bounded LRU) by default.  Setting the
``REPRO_CACHE_DIR`` environment variable — or passing ``directory`` to
:class:`AnalysisCache` — adds an on-disk pickle store so repeated
benchmark processes share solves.  ``REPRO_NO_CACHE=1`` or
:func:`set_cache_enabled` turns the layer off globally (the CLI's
``--no-cache``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import types
from collections import OrderedDict
from pathlib import Path
from typing import Any, NamedTuple

from repro import config, obs

#: Default bound on in-memory cached analyses (each holds a full
#: reachability graph; architecture models run a few MB apiece).
DEFAULT_MAX_ENTRIES = 256


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable analysis caching (CLI ``--no-cache``)."""
    config.set_cache_enabled(enabled)


def cache_enabled() -> bool:
    """Resolved cache switch: either disable (CLI or env) wins."""
    return config.cache_enabled()


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------

class NetFingerprint(NamedTuple):
    """Split content hash of a net.

    ``structure`` is invariant across a timing sweep (places, arcs,
    initial marking, resource tags, attribute *code*); ``timing``
    hashes the numeric attribute values (delays, frequency weights,
    numbers captured in closures/defaults).  Compares as a plain tuple,
    so ``fingerprint_net(a) == fingerprint_net(b)`` means identical
    full keys and equal ``.structure`` means "same state space shape".
    """

    structure: str
    timing: str


def _describe_code(code: types.CodeType) -> tuple:
    consts = tuple(
        _describe_code(c) if isinstance(c, types.CodeType) else repr(c)
        for c in code.co_consts)
    return ("code", code.co_code.hex(), consts, code.co_names,
            code.co_varnames, code.co_argcount)


def _split_captured(value: Any, timing: list) -> Any | None:
    """Describe one closure-cell/default value, lifting numbers out.

    Non-bool numbers go to *timing* and leave a positional placeholder
    in the structural description; callables recurse; everything else
    (bools, strings, tuples of names, ...) is structural.  Returns
    ``None`` when the value cannot be fingerprinted faithfully.
    """
    if isinstance(value, bool):
        return ("const", repr(value))
    if isinstance(value, (int, float)):
        timing.append(repr(value))
        return ("param",)
    if callable(value):
        nested = _split_attr(value)
        if nested is None:
            return None
        desc, nested_timing = nested
        timing.extend(nested_timing)
        return desc
    return ("const", repr(value))


def _split_attr(value: Any) -> tuple[tuple, tuple] | None:
    """``(structure_desc, timing_values)`` for a delay/frequency.

    Returns ``None`` when the attribute cannot be fingerprinted
    faithfully (no code object, or unreadable closure cells).
    """
    timing: list = []
    if not callable(value):
        desc = _split_captured(value, timing)
        return (desc, tuple(timing))
    code = getattr(value, "__code__", None)
    if code is None:
        return None
    cells: list = []
    closure = getattr(value, "__closure__", None)
    if closure:
        try:
            contents = [c.cell_contents for c in closure]
        except ValueError:          # empty cell: still being built
            return None
        for item in contents:
            desc = _split_captured(item, timing)
            if desc is None:
                return None
            cells.append(desc)
    defaults: list = []
    for item in getattr(value, "__defaults__", None) or ():
        desc = _split_captured(item, timing)
        if desc is None:
            return None
        defaults.append(desc)
    return (("callable", _describe_code(code), tuple(cells),
             tuple(defaults)), tuple(timing))


def fingerprint_net(net) -> NetFingerprint | None:
    """Split content hash of a net, or ``None`` if uncacheable.

    Covers everything the analyzer's numbers depend on — places,
    initial marking, arcs, delays, frequencies, resources — and
    nothing cosmetic (names, labels), so renamed-but-identical nets
    share a fingerprint.  Numeric attribute values land in the
    ``timing`` half only; everything shaping the state space lands in
    ``structure``.
    """
    structure: list = [len(net.places), tuple(net.initial_marking)]
    # declared symmetry groups shape the packed engine's lumping
    # quotient, so they are structural: two nets that differ only in
    # declarations must not share a lumped skeleton
    for group in getattr(net, "symmetries", ()):
        structure.append(("sym", tuple(
            (tuple(p_idx), tuple(t_idx)) for p_idx, t_idx
            in group.members)))
    timing: list = []
    for t in net.transitions:
        delay = _split_attr(t.delay)
        freq = _split_attr(t.frequency)
        if delay is None or freq is None:
            return None
        structure.append((tuple(sorted(t.inputs.items())),
                          tuple(sorted(t.outputs.items())),
                          delay[0], freq[0], t.resource,
                          tuple(t.extra_resources)))
        timing.append((delay[1], freq[1]))
    def _hash(parts) -> str:
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
    return NetFingerprint(_hash(structure), _hash(timing))


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------

class AnalysisCache:
    """Thread-safe LRU of analysis payloads, with optional disk tier.

    Keys are opaque hashables (the analyzer uses ``(fingerprint,
    method)``); payloads are opaque picklable objects.  ``directory``
    (or ``REPRO_CACHE_DIR`` for the global cache) enables the on-disk
    tier; unreadable or corrupt disk entries are treated as misses.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 max_entries: int = DEFAULT_MAX_ENTRIES):
        self._mem: OrderedDict[Any, Any] = OrderedDict()
        self._max_entries = max_entries
        self._dir = Path(directory) if directory else None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            self.hits = 0
            self.misses = 0

    def _disk_path(self, key: Any) -> Path | None:
        if self._dir is None:
            return None
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self._dir / f"analysis-{digest}.pkl"

    def get(self, key: Any, *, record_stats: bool = True):
        """The cached payload for *key*, or ``None`` on a miss."""
        with self._lock:
            if key in self._mem:
                self._mem.move_to_end(key)
                if record_stats:
                    self.hits += 1
                    obs.add("cache.hit")
                return self._mem[key]
        path = self._disk_path(key)
        if path is not None:
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError,
                    ValueError, TypeError, KeyError):
                # corrupted/truncated entries are a miss, never an error
                payload = None
            if payload is not None:
                with self._lock:
                    if record_stats:
                        self.hits += 1
                        obs.add("cache.hit")
                    self._store_mem(key, payload)
                return payload
        if record_stats:
            with self._lock:
                self.misses += 1
                obs.add("cache.miss")
        return None

    def put(self, key: Any, payload: Any) -> None:
        with self._lock:
            self._store_mem(key, payload)
        self._write_disk(key, payload)

    def get_structure(self, structure_fp: str, kind: str = "object"):
        """Cached sweep skeleton for a structure fingerprint, if any.

        ``kind`` separates skeleton families sharing one structure:
        ``"object"`` (the historical traced-build skeleton, keeping its
        historical key so old disk tiers stay readable) and
        ``"packed:<reduction>"`` for the array engine's skeletons.

        Skeleton lookups ride the same LRU/disk tiers as payloads but
        stay out of ``hits``/``misses`` — those stats count *solves
        avoided*, and a skeleton hit still re-times and re-solves.
        """
        return self.get(self._structure_key(structure_fp, kind),
                        record_stats=False)

    def put_structure(self, structure_fp: str, skeleton: Any,
                      kind: str = "object") -> None:
        self.put(self._structure_key(structure_fp, kind), skeleton)

    @staticmethod
    def _structure_key(structure_fp: str, kind: str):
        if kind == "object":
            return ("skeleton", structure_fp)
        return ("skeleton", structure_fp, kind)

    def attach_directory(self, directory: str | os.PathLike) -> None:
        """Add (or retarget) the disk tier without dropping memory.

        Existing in-memory entries are flushed to the new directory so
        freshly-forked pool workers can prime from what the parent has
        already solved (the sweep pool's shared-disk priming).
        """
        with self._lock:
            self._dir = Path(directory)
            entries = list(self._mem.items())
        for key, payload in entries:
            self._write_disk(key, payload)

    @property
    def directory(self) -> Path | None:
        return self._dir

    def _write_disk(self, key: Any, payload: Any) -> None:
        path = self._disk_path(key)
        if path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(f".tmp-{os.getpid()}")
                with open(tmp, "wb") as fh:
                    pickle.dump(payload, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)     # atomic for concurrent writers
            except (OSError, pickle.PicklingError, TypeError):
                pass                      # disk tier is best-effort

    def _store_mem(self, key: Any, payload: Any) -> None:
        self._mem[key] = payload
        self._mem.move_to_end(key)
        while len(self._mem) > self._max_entries:
            self._mem.popitem(last=False)


_global_cache: AnalysisCache | None = None
_global_lock = threading.Lock()


def get_cache() -> AnalysisCache:
    """The process-wide analysis cache (created on first use)."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = AnalysisCache(directory=config.cache_dir())
        return _global_cache


def configure_cache(directory: str | os.PathLike | None = None,
                    max_entries: int = DEFAULT_MAX_ENTRIES,
                    ) -> AnalysisCache:
    """Replace the process-wide cache (tests, CLI) and return it."""
    global _global_cache
    with _global_lock:
        _global_cache = AnalysisCache(directory=directory,
                                      max_entries=max_entries)
        return _global_cache
