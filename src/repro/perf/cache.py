"""Content-addressed cache for exact GTPN analyses.

A net is fingerprinted by its *structure and attributes* — place
count, initial marking, arcs, delays, frequencies, resource tags —
while names (of the net, its places, and its transitions) stay out of
the key: two structurally identical nets share one solve, and the
cached payload is re-bound to whichever net asked.

State-dependent attributes (callables) are fingerprinted through
their code object (bytecode, constants, referenced names, defaults)
plus the values captured in their closure cells, which is exactly the
information that determines their behaviour for the closure-built
lambdas the architecture models use.  A callable without usable code
(e.g. a C callable) makes the net uncacheable — :func:`fingerprint_net`
returns ``None`` and the analyzer simply solves it.

The cache is in-memory (bounded LRU) by default.  Setting the
``REPRO_CACHE_DIR`` environment variable — or passing ``directory`` to
:class:`AnalysisCache` — adds an on-disk pickle store so repeated
benchmark processes share solves.  ``REPRO_NO_CACHE=1`` or
:func:`set_cache_enabled` turns the layer off globally (the CLI's
``--no-cache``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import types
from collections import OrderedDict
from pathlib import Path
from typing import Any

#: Default bound on in-memory cached analyses (each holds a full
#: reachability graph; architecture models run a few MB apiece).
DEFAULT_MAX_ENTRIES = 256

_enabled = True


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable analysis caching (CLI ``--no-cache``)."""
    global _enabled
    _enabled = bool(enabled)


def cache_enabled() -> bool:
    return _enabled and os.environ.get("REPRO_NO_CACHE", "") != "1"


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------

def _describe_code(code: types.CodeType) -> tuple:
    consts = tuple(
        _describe_code(c) if isinstance(c, types.CodeType) else repr(c)
        for c in code.co_consts)
    return ("code", code.co_code.hex(), consts, code.co_names,
            code.co_varnames, code.co_argcount)


def _describe_attr(value: Any) -> tuple | None:
    """Canonical description of a delay/frequency attribute.

    Returns ``None`` when the attribute cannot be fingerprinted
    faithfully (no code object, or unreadable closure cells).
    """
    if not callable(value):
        return ("const", repr(value))
    code = getattr(value, "__code__", None)
    if code is None:
        return None
    cells: tuple = ()
    closure = getattr(value, "__closure__", None)
    if closure:
        try:
            cells = tuple(repr(c.cell_contents) for c in closure)
        except ValueError:          # empty cell: still being built
            return None
    defaults = repr(getattr(value, "__defaults__", None))
    return ("callable", _describe_code(code), cells, defaults)


def fingerprint_net(net) -> str | None:
    """Canonical content hash of a net, or ``None`` if uncacheable.

    Covers everything the analyzer's numbers depend on — places,
    initial marking, arcs, delays, frequencies, resources — and
    nothing cosmetic (names, labels), so renamed-but-identical nets
    share a fingerprint.
    """
    parts: list = [len(net.places), tuple(net.initial_marking)]
    for t in net.transitions:
        delay = _describe_attr(t.delay)
        freq = _describe_attr(t.frequency)
        if delay is None or freq is None:
            return None
        parts.append((tuple(sorted(t.inputs.items())),
                      tuple(sorted(t.outputs.items())),
                      delay, freq, t.resource,
                      tuple(t.extra_resources)))
    blob = repr(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------

class AnalysisCache:
    """Thread-safe LRU of analysis payloads, with optional disk tier.

    Keys are opaque hashables (the analyzer uses ``(fingerprint,
    method)``); payloads are opaque picklable objects.  ``directory``
    (or ``REPRO_CACHE_DIR`` for the global cache) enables the on-disk
    tier; unreadable or corrupt disk entries are treated as misses.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 max_entries: int = DEFAULT_MAX_ENTRIES):
        self._mem: OrderedDict[Any, Any] = OrderedDict()
        self._max_entries = max_entries
        self._dir = Path(directory) if directory else None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            self.hits = 0
            self.misses = 0

    def _disk_path(self, key: Any) -> Path | None:
        if self._dir is None:
            return None
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self._dir / f"analysis-{digest}.pkl"

    def get(self, key: Any):
        """The cached payload for *key*, or ``None`` on a miss."""
        with self._lock:
            if key in self._mem:
                self._mem.move_to_end(key)
                self.hits += 1
                return self._mem[key]
        path = self._disk_path(key)
        if path is not None:
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError):
                payload = None
            if payload is not None:
                with self._lock:
                    self.hits += 1
                    self._store_mem(key, payload)
                return payload
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: Any, payload: Any) -> None:
        with self._lock:
            self._store_mem(key, payload)
        path = self._disk_path(key)
        if path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(f".tmp-{os.getpid()}")
                with open(tmp, "wb") as fh:
                    pickle.dump(payload, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)     # atomic for concurrent writers
            except (OSError, pickle.PicklingError, TypeError):
                pass                      # disk tier is best-effort

    def _store_mem(self, key: Any, payload: Any) -> None:
        self._mem[key] = payload
        self._mem.move_to_end(key)
        while len(self._mem) > self._max_entries:
            self._mem.popitem(last=False)


_global_cache: AnalysisCache | None = None
_global_lock = threading.Lock()


def get_cache() -> AnalysisCache:
    """The process-wide analysis cache (created on first use)."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = AnalysisCache(
                directory=os.environ.get("REPRO_CACHE_DIR") or None)
        return _global_cache


def configure_cache(directory: str | os.PathLike | None = None,
                    max_entries: int = DEFAULT_MAX_ENTRIES,
                    ) -> AnalysisCache:
    """Replace the process-wide cache (tests, CLI) and return it."""
    global _global_cache
    with _global_lock:
        _global_cache = AnalysisCache(directory=directory,
                                      max_entries=max_entries)
        return _global_cache
