"""Deprecated import path for the sweep executor.

.. deprecated::
    The executor grew into a pluggable backend family —
    :mod:`repro.perf.backends` (``serial`` / ``local`` / ``sharded``
    behind the frozen
    :class:`~repro.perf.backends.base.ExecutorBackend` protocol,
    selected via ``--backend`` / ``REPRO_BACKEND``).  Import
    ``map_sweep`` / ``plan_jobs`` / ``last_map_info`` /
    ``shutdown_pool`` from there (or ``repro.perf``); this module
    re-exports them unchanged, warns once on import, and will be
    removed after a deprecation cycle.
"""

from __future__ import annotations

import warnings

from repro.perf.backends import (CHUNK_WAVES,                 # noqa: F401
                                 MIN_ITEMS_PER_JOB, MapInfo,
                                 PoolBrokenError, default_jobs,
                                 get_backend, last_map_info, map_sweep,
                                 plan_jobs, set_default_jobs,
                                 shutdown_pool)

warnings.warn(
    "repro.perf.pool is deprecated; import map_sweep/plan_jobs/"
    "last_map_info from repro.perf.backends (or repro.perf) instead",
    DeprecationWarning, stacklevel=2)

__all__ = [
    "CHUNK_WAVES",
    "MIN_ITEMS_PER_JOB",
    "MapInfo",
    "PoolBrokenError",
    "default_jobs",
    "get_backend",
    "last_map_info",
    "map_sweep",
    "plan_jobs",
    "set_default_jobs",
    "shutdown_pool",
]


def __getattr__(name: str):
    # historical private introspection points, kept for old callers:
    # the persistent pool and spill directory now live on the local
    # backend's manager
    from repro.perf.backends import get_backend, local
    if name == "_pool":
        return get_backend("local")._manager.executor
    if name == "_parent_spill_dir":
        return local._parent_spill_dir
    raise AttributeError(name)
