"""Parallel sweep executor for grid-shaped analyses.

:func:`map_sweep` maps a picklable function over a list of independent
work items, optionally across a :class:`~concurrent.futures.\
ProcessPoolExecutor`.  Results always come back in input order, so a
sweep produces bit-identical artifacts whether it ran serially or
fanned out — parallelism only changes wall-clock time, never values.

The job count resolves, in order, from the explicit ``jobs`` argument,
:func:`set_default_jobs` (wired to the CLI ``--jobs`` flag), and the
``REPRO_JOBS`` environment variable; it defaults to 1 (serial).  Any
failure to spawn or feed the worker pool — no fork support, unpicklable
work, a broken pool — falls back to the serial path rather than
erroring, so callers never need to special-case degraded environments.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_default_jobs: int | None = None

try:
    from concurrent.futures.process import BrokenProcessPool as _BrokenPool
except ImportError:                                    # pragma: no cover
    class _BrokenPool(RuntimeError):
        pass


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (None = env/serial)."""
    global _default_jobs
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _default_jobs = jobs


def default_jobs() -> int:
    """Resolve the default worker count (explicit > REPRO_JOBS > 1)."""
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(env))
    except ValueError:
        return 1


def _call_star(payload: tuple[Callable, tuple]) -> object:
    fn, item = payload
    return fn(*item)


def map_sweep(fn: Callable[..., R], items: Iterable[T], *,
              jobs: int | None = None, star: bool = False,
              chunksize: int = 1) -> list[R]:
    """Map *fn* over *items*, in order, possibly across processes.

    ``star=True`` unpacks each item as positional arguments
    (``fn(*item)``); otherwise each item is passed whole (``fn(item)``).
    ``jobs=None`` uses :func:`default_jobs`.  With one job, one item, or
    an unusable pool the map runs serially in-process.
    """
    work: Sequence[T] = list(items)
    n_jobs = default_jobs() if jobs is None else jobs
    if n_jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {n_jobs}")
    n_jobs = min(n_jobs, len(work))
    if n_jobs > 1:
        try:
            return _map_parallel(fn, work, n_jobs, star, chunksize)
        except (OSError, pickle.PicklingError, ImportError,
                _BrokenPool, TypeError, AttributeError):
            # pool unavailable or work not shippable: solve in-process.
            # Genuine errors raised by fn re-raise from the serial pass.
            pass
    if star:
        return [fn(*item) for item in work]
    return [fn(item) for item in work]


def _map_parallel(fn, work, n_jobs, star, chunksize):
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        if star:
            payloads = [(fn, item) for item in work]
            futures = pool.map(_call_star, payloads, chunksize=chunksize)
        else:
            futures = pool.map(fn, work, chunksize=chunksize)
        return list(futures)
