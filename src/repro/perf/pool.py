"""Parallel sweep executor for grid-shaped analyses.

:func:`map_sweep` maps a picklable function over a list of independent
work items, optionally across a persistent
:class:`~concurrent.futures.ProcessPoolExecutor`.  Results always come
back in input order, so a sweep produces bit-identical artifacts
whether it ran serially or fanned out — parallelism only changes
wall-clock time, never values.

The job count resolves through :mod:`repro.config` (CLI ``--jobs`` >
``REPRO_JOBS`` > 1); non-positive or non-integer values are rejected
with :class:`~repro.errors.ConfigError` wherever they come from.

Worker pools only pay off when there is enough work to amortise their
start-up (fork, imports, cache priming) and per-task IPC.  The
executor therefore *plans* each sweep (:func:`plan_jobs`): it falls
back to serial on a single-CPU machine or when the grid offers fewer
than :data:`MIN_ITEMS_PER_JOB` points per worker, shrinking the worker
count instead when a smaller pool still clears the threshold.  What it
decided — mode, reason, worker count, chunk size — is readable
afterwards via :func:`last_map_info`, which the benchmarks record.

The pool itself is persistent: created once per (worker count, cache
configuration, trace spill directory) and reused across sweeps, so
later grids skip process start-up entirely.  Its initializer primes
each worker with the analysis/sweep imports and the parent's cache
configuration; when caching is enabled and memory-only, the parent
first attaches a session-scoped disk tier and flushes what it has
already solved, so cold workers load shared reachability skeletons
instead of rebuilding them per point.  Any failure to spawn or feed
the pool — no fork support, unpicklable work, a broken pool — falls
back to the serial path rather than erroring, so callers never need to
special-case degraded environments.

When a recorder is installed (:mod:`repro.obs`), every sweep runs
under a ``pool.map`` span and each work item under a ``pool.task``
span — in workers those spans spill to per-pid JSONL files that the
parent merges back after the sweep (:mod:`repro.obs.sink`), so one
trace shows per-worker task timing across the whole process tree.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro import config, obs
from repro.obs import sink

T = TypeVar("T")
R = TypeVar("R")

#: Below this many grid points per worker, pool start-up + IPC beat the
#: win from parallelism (BENCH_perf.json showed 0.98x on an 18-point
#: grid with a fresh pool); the planner shrinks the pool or goes serial.
MIN_ITEMS_PER_JOB = 4

#: Auto chunking aims for this many chunks per worker: big enough to
#: amortise per-task pickling, small enough to keep workers balanced.
CHUNK_WAVES = 4

try:
    from concurrent.futures.process import BrokenProcessPool as _BrokenPool
except ImportError:                                    # pragma: no cover
    class _BrokenPool(RuntimeError):
        pass


_validate_jobs = config.validate_jobs


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (None = env/serial)."""
    config.set_jobs(jobs)


def default_jobs() -> int:
    """Resolve the default worker count (explicit > REPRO_JOBS > 1).

    A malformed ``REPRO_JOBS`` raises :class:`ConfigError` instead of
    being silently coerced: a user who exported it wanted parallelism,
    and quietly running serial hides the typo.
    """
    return config.jobs()


# ----------------------------------------------------------------------
# sweep planning and introspection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MapInfo:
    """How the most recent :func:`map_sweep` actually executed."""

    mode: str                   # "serial" | "parallel"
    reason: str | None          # why serial (None when parallel)
    jobs_requested: int
    jobs_used: int
    items: int
    chunk_size: int | None      # None on the serial path

    def as_dict(self) -> dict:
        return {"mode": self.mode, "reason": self.reason,
                "jobs_requested": self.jobs_requested,
                "jobs_used": self.jobs_used, "items": self.items,
                "chunk_size": self.chunk_size}

    def describe(self) -> str:
        """Human-readable one-liner for report notes and benchmarks."""
        if self.mode == "serial":
            return f"sweep ran serially ({self.reason})"
        return (f"sweep ran on {self.jobs_used} workers, chunk size "
                f"{self.chunk_size}")


_last_map_info: MapInfo | None = None


def last_map_info() -> MapInfo | None:
    """The :class:`MapInfo` of the most recent sweep, if any."""
    return _last_map_info


def plan_jobs(n_items: int, jobs: int | None = None, *,
              oversubscribe: bool = False) -> tuple[int, str | None]:
    """Decide how a sweep of *n_items* should execute.

    Returns ``(worker_count, reason)``: 1 worker means serial, and
    *reason* says why.  ``oversubscribe=True`` skips the single-CPU
    check (tests exercise the pool protocol on one-core machines).
    """
    n_jobs = default_jobs() if jobs is None else _validate_jobs(
        jobs, "jobs")
    if n_jobs <= 1:
        return 1, "serial requested (jobs=1)"
    if n_items <= 1:
        return 1, f"{n_items} grid point(s): nothing to fan out"
    if not oversubscribe and (os.cpu_count() or 1) == 1:
        return 1, "single CPU: worker processes cannot run concurrently"
    fitting = n_items // MIN_ITEMS_PER_JOB
    if fitting <= 1:
        return 1, (f"{n_items} points across {n_jobs} workers is below "
                   f"the {MIN_ITEMS_PER_JOB}-points-per-worker "
                   "threshold")
    return min(n_jobs, fitting, n_items), None


# ----------------------------------------------------------------------
# the persistent pool
# ----------------------------------------------------------------------

_pool = None
_pool_key: tuple | None = None
_shared_cache_dir: str | None = None
_parent_spill_dir: str | None = None


def _prime_shared_cache() -> tuple[bool, str | None]:
    """Cache configuration the workers should mirror.

    When caching is enabled but memory-only, attach a session-scoped
    disk tier to the global cache and flush what the parent already
    solved — freshly started workers then prime their own caches from
    disk (shared skeletons, shared payloads) instead of rebuilding
    per point.
    """
    global _shared_cache_dir
    from repro.perf import cache as _cache
    if not _cache.cache_enabled():
        return False, None
    store = _cache.get_cache()
    if store.directory is None:
        if _shared_cache_dir is None:
            _shared_cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
            atexit.register(shutil.rmtree, _shared_cache_dir,
                            ignore_errors=True)
        store.attach_directory(_shared_cache_dir)
    return True, str(store.directory)


def _trace_spill_dir() -> str | None:
    """The spill directory workers should report traces into, if any."""
    global _parent_spill_dir
    if obs.current() is None:
        return None
    if _parent_spill_dir is None:
        _parent_spill_dir = tempfile.mkdtemp(prefix="repro-obs-")
        atexit.register(shutil.rmtree, _parent_spill_dir,
                        ignore_errors=True)
    return _parent_spill_dir


def _worker_init(cache_on: bool, cache_dir: str | None,
                 spill_dir: str | None) -> None:
    """Runs once per worker process: mirror the parent's cache and
    trace setup and pay the heavy imports before the first task."""
    from repro.perf import cache as _cache
    if not cache_on:
        _cache.set_cache_enabled(False)
    else:
        _cache.configure_cache(directory=cache_dir)
    sink.set_spill_dir(spill_dir)
    try:
        import repro.gtpn.sweep        # noqa: F401
    except ImportError:                                # pragma: no cover
        pass


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (atexit, tests)."""
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_key = None


atexit.register(shutdown_pool)


def _get_pool(n_jobs: int):
    global _pool, _pool_key
    cache_on, cache_dir = _prime_shared_cache()
    spill_dir = _trace_spill_dir()
    key = (n_jobs, cache_on, cache_dir, spill_dir)
    if _pool is not None and _pool_key != key:
        shutdown_pool()
    if _pool is None:
        from concurrent.futures import ProcessPoolExecutor
        _pool = ProcessPoolExecutor(max_workers=n_jobs,
                                    initializer=_worker_init,
                                    initargs=(cache_on, cache_dir,
                                              spill_dir))
        _pool_key = key
    return _pool


def _call_star(payload: tuple[Callable, tuple]) -> object:
    fn, item = payload
    return fn(*item)


def _traced_call(payload: tuple[Callable, object, bool, int]) -> object:
    """One pooled work item under a ``pool.task`` span, spilled after."""
    fn, item, star, index = payload
    with obs.span("pool.task", index=index):
        result = fn(*item) if star else fn(item)
    sink.flush_current()
    return result


def map_sweep(fn: Callable[..., R], items: Iterable[T], *,
              jobs: int | None = None, star: bool = False,
              chunksize: int | None = None,
              oversubscribe: bool = False) -> list[R]:
    """Map *fn* over *items*, in order, possibly across processes.

    ``star=True`` unpacks each item as positional arguments
    (``fn(*item)``); otherwise each item is passed whole (``fn(item)``).
    ``jobs=None`` uses :func:`default_jobs`.  The sweep is planned via
    :func:`plan_jobs` (serial fallback on small grids or one CPU) and
    chunked to ``ceil(items / (workers * CHUNK_WAVES))`` unless
    *chunksize* is given; :func:`last_map_info` reports what happened.
    An unusable pool (unpicklable work, no fork support) falls back to
    the serial path; exceptions raised by *fn* itself propagate.
    """
    global _last_map_info
    work: Sequence[T] = list(items)
    jobs_requested = default_jobs() if jobs is None else _validate_jobs(
        jobs, "jobs")
    n_jobs, reason = plan_jobs(len(work), jobs_requested,
                               oversubscribe=oversubscribe)
    with obs.span("pool.map", items=len(work),
                  jobs_requested=jobs_requested) as map_span:
        if n_jobs > 1:
            chunk = chunksize if chunksize else max(
                1, math.ceil(len(work) / (n_jobs * CHUNK_WAVES)))
            try:
                results = _map_parallel(fn, work, n_jobs, star, chunk)
            except (OSError, pickle.PicklingError, ImportError,
                    _BrokenPool, TypeError, AttributeError):
                # pool unavailable or work not shippable: solve
                # in-process.  Genuine errors raised by fn itself
                # re-raise from the serial pass.
                reason = "worker pool unavailable (unpicklable work " \
                         "or no process support)"
            else:
                _last_map_info = MapInfo("parallel", None,
                                         jobs_requested, n_jobs,
                                         len(work), chunk)
                map_span.set(**_last_map_info.as_dict())
                return results
        _last_map_info = MapInfo("serial", reason, jobs_requested, 1,
                                 len(work), None)
        map_span.set(**_last_map_info.as_dict())
        if obs.current() is None:
            if star:
                return [fn(*item) for item in work]
            return [fn(item) for item in work]
        results = []
        for index, item in enumerate(work):
            with obs.span("pool.task", index=index):
                results.append(fn(*item) if star else fn(item))
        return results


def _map_parallel(fn, work, n_jobs, star, chunksize):
    pool = _get_pool(n_jobs)
    recorder = obs.current()
    try:
        if recorder is not None:
            payloads = [(fn, item, star, index)
                        for index, item in enumerate(work)]
            futures = pool.map(_traced_call, payloads,
                               chunksize=chunksize)
        elif star:
            payloads = [(fn, item) for item in work]
            futures = pool.map(_call_star, payloads, chunksize=chunksize)
        else:
            futures = pool.map(fn, work, chunksize=chunksize)
        results = list(futures)
    except _BrokenPool:
        shutdown_pool()         # a dead pool never comes back; rebuild
        raise
    if recorder is not None and _parent_spill_dir is not None:
        sink.merge_spills(recorder, _parent_spill_dir)
    return results
