"""Performance layer: parallel sweep execution and analysis caching.

The chapter-6 evaluation is grid-shaped — conversations x offered
loads x architectures, each point an independent exact GTPN solve — so
the two scalable-offload levers are

* :func:`map_sweep` (:mod:`repro.perf.pool`) — fan independent grid
  points out over worker processes, with ordered results and a
  graceful serial fallback, and
* :class:`AnalysisCache` (:mod:`repro.perf.cache`) — content-addressed
  memoization of exact solves keyed by a canonical net fingerprint, so
  structurally identical nets across figures and benchmarks solve
  once (opt-in on-disk persistence via ``REPRO_CACHE_DIR``).

Both are policy-free utilities: they know nothing about GTPN
internals beyond the duck-typed net attributes the fingerprint reads.
"""

from repro.perf.cache import (AnalysisCache, cache_enabled,
                              configure_cache, fingerprint_net,
                              get_cache, set_cache_enabled)
from repro.perf.pool import default_jobs, map_sweep, set_default_jobs

__all__ = [
    "AnalysisCache",
    "cache_enabled",
    "configure_cache",
    "default_jobs",
    "fingerprint_net",
    "get_cache",
    "map_sweep",
    "set_cache_enabled",
    "set_default_jobs",
]
