"""Performance layer: pluggable sweep executors and analysis caching.

The chapter-6 evaluation is grid-shaped — conversations x offered
loads x architectures, each point an independent exact GTPN solve — so
the two scalable-offload levers are

* :func:`map_sweep` (:mod:`repro.perf.backends`) — fan independent
  grid points out over a configurable executor backend (``serial`` /
  ``local`` persistent pool / ``sharded`` work stealing, selected by
  ``--backend`` / ``REPRO_BACKEND``), with ordered results and a
  graceful serial fallback, and
* :class:`AnalysisCache` (:mod:`repro.perf.cache`) — content-addressed
  memoization of exact solves keyed by a canonical net fingerprint, so
  structurally identical nets across figures and benchmarks solve
  once (opt-in on-disk persistence via ``REPRO_CACHE_DIR``).

Both are policy-free utilities: they know nothing about GTPN
internals beyond the duck-typed net attributes the fingerprint reads.
The historical import path :mod:`repro.perf.pool` still works but
warns with :class:`DeprecationWarning`.
"""

from repro.perf.backends import (ExecutorBackend, MapInfo,
                                 default_jobs, get_backend,
                                 last_map_info, map_sweep, plan_jobs,
                                 set_default_jobs, shutdown_pool)
from repro.perf.cache import (AnalysisCache, cache_enabled,
                              configure_cache, fingerprint_net,
                              get_cache, set_cache_enabled)

__all__ = [
    "AnalysisCache",
    "ExecutorBackend",
    "MapInfo",
    "cache_enabled",
    "configure_cache",
    "default_jobs",
    "fingerprint_net",
    "get_backend",
    "get_cache",
    "last_map_info",
    "map_sweep",
    "plan_jobs",
    "set_cache_enabled",
    "set_default_jobs",
    "shutdown_pool",
]
