"""The persistent local process pool, now one backend among several.

:class:`LocalPoolBackend` is the executor PR 1/PR 3 grew inline in
``perf/pool.py``: one persistent
:class:`~concurrent.futures.ProcessPoolExecutor` per (worker count,
cache configuration, trace spill directory), reused across sweeps so
later grids skip process start-up entirely.  Its initializer primes
each worker with the analysis/sweep imports and the parent's cache
configuration; when caching is enabled and memory-only, the parent
first attaches a session-scoped disk tier and flushes what it has
already solved, so cold workers load shared reachability skeletons
instead of rebuilding them per point.

Lifecycle is now leak-free by construction: every
:class:`PersistentPool` registers its own ``atexit`` teardown when the
executor is first created, and a worker that dies mid-task
(``BrokenProcessPool``) is *reaped immediately* — the pool is shut
down and :class:`~repro.perf.backends.base.PoolBrokenError` raised so
the orchestrator degrades that sweep to the serial path with a
recorded :class:`~repro.perf.backends.base.MapInfo` reason, and the
next sweep builds a fresh pool instead of retrying into a hung
executor.

When a recorder is installed (:mod:`repro.obs`), each work item runs
under a ``pool.task`` span — in workers those spans spill to per-pid
JSONL files that the parent merges back after the sweep
(:mod:`repro.obs.sink`), so one trace shows per-worker task timing
across the whole process tree.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from typing import Callable, Sequence

from repro import obs
from repro.obs import sink
from repro.perf.backends.base import ExecutorBackend, PoolBrokenError

try:
    from concurrent.futures.process import BrokenProcessPool as \
        _BrokenPool
except ImportError:                                    # pragma: no cover
    class _BrokenPool(RuntimeError):
        pass


_shared_cache_dir: str | None = None
_parent_spill_dir: str | None = None


def _prime_shared_cache() -> tuple[bool, str | None]:
    """Cache configuration the workers should mirror.

    When caching is enabled but memory-only, attach a session-scoped
    disk tier to the global cache and flush what the parent already
    solved — freshly started workers then prime their own caches from
    disk (shared skeletons, shared payloads) instead of rebuilding
    per point.
    """
    global _shared_cache_dir
    from repro.perf import cache as _cache
    if not _cache.cache_enabled():
        return False, None
    store = _cache.get_cache()
    if store.directory is None:
        if _shared_cache_dir is None:
            _shared_cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
            atexit.register(shutil.rmtree, _shared_cache_dir,
                            ignore_errors=True)
        store.attach_directory(_shared_cache_dir)
    return True, str(store.directory)


def _trace_spill_dir() -> str | None:
    """The spill directory workers should report traces into, if any."""
    global _parent_spill_dir
    if obs.current() is None:
        return None
    if _parent_spill_dir is None:
        _parent_spill_dir = tempfile.mkdtemp(prefix="repro-obs-")
        atexit.register(shutil.rmtree, _parent_spill_dir,
                        ignore_errors=True)
    return _parent_spill_dir


def _worker_init(cache_on: bool, cache_dir: str | None,
                 spill_dir: str | None) -> None:
    """Runs once per worker process: mirror the parent's cache and
    trace setup and pay the heavy imports before the first task."""
    from repro.perf import cache as _cache
    if not cache_on:
        _cache.set_cache_enabled(False)
    else:
        _cache.configure_cache(directory=cache_dir)
    sink.set_spill_dir(spill_dir)
    try:
        import repro.gtpn.sweep        # noqa: F401
    except ImportError:                                # pragma: no cover
        pass


class PersistentPool:
    """One keyed, reaped, atexit-registered ProcessPoolExecutor.

    Shared infrastructure for every process-backed backend: the pool
    is created on first use, keyed on (worker count, cache
    configuration, spill directory) and rebuilt when the key changes,
    and torn down exactly once — by :meth:`shutdown` (tests, the
    orchestrator's broken-pool reap) or the ``atexit`` hook registered
    at creation, whichever comes first.
    """

    def __init__(self):
        self._pool = None
        self._key: tuple | None = None
        self._atexit_registered = False

    @property
    def executor(self):
        """The live executor, or ``None`` (introspection/tests)."""
        return self._pool

    def get(self, n_jobs: int):
        cache_on, cache_dir = _prime_shared_cache()
        spill_dir = _trace_spill_dir()
        key = (n_jobs, cache_on, cache_dir, spill_dir)
        if self._pool is not None and self._key != key:
            self.shutdown()
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor
            self._pool = ProcessPoolExecutor(
                max_workers=n_jobs, initializer=_worker_init,
                initargs=(cache_on, cache_dir, spill_dir))
            self._key = key
            if not self._atexit_registered:
                atexit.register(self.shutdown)
                self._atexit_registered = True
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._key = None

    def reap(self) -> None:
        """Tear down a pool whose worker died mid-task.

        ``BrokenProcessPool`` executors never recover — every later
        submit fails instantly — so the only safe move is to drop the
        executor (its shutdown also reclaims the dead children) and
        let the next sweep build a fresh one.
        """
        self.shutdown()

    def merge_trace(self, recorder) -> None:
        """Fold worker spill files into *recorder* after a sweep."""
        if recorder is not None and _parent_spill_dir is not None:
            sink.merge_spills(recorder, _parent_spill_dir)


def _call_star(payload: tuple[Callable, tuple]) -> object:
    fn, item = payload
    return fn(*item)


def _traced_call(payload: tuple[Callable, object, bool, int]) -> object:
    """One pooled work item under a ``pool.task`` span, spilled after."""
    fn, item, star, index = payload
    with obs.span("pool.task", index=index):
        result = fn(*item) if star else fn(item)
    sink.flush_current()
    return result


class LocalPoolBackend(ExecutorBackend):
    """Persistent single-pool executor: ``pool.map`` with chunking."""

    name = "local"

    def __init__(self):
        self._manager = PersistentPool()

    def submit_map(self, fn: Callable, work: Sequence, *, n_jobs: int,
                   star: bool, chunksize: int) -> list:
        pool = self._manager.get(n_jobs)
        recorder = obs.current()
        try:
            if recorder is not None:
                payloads = [(fn, item, star, index)
                            for index, item in enumerate(work)]
                futures = pool.map(_traced_call, payloads,
                                   chunksize=chunksize)
            elif star:
                payloads = [(fn, item) for item in work]
                futures = pool.map(_call_star, payloads,
                                   chunksize=chunksize)
            else:
                futures = pool.map(fn, work, chunksize=chunksize)
            results = list(futures)
        except _BrokenPool as error:
            self._manager.reap()
            raise PoolBrokenError(str(error)) from error
        self._manager.merge_trace(recorder)
        return results

    def shutdown(self) -> None:
        self._manager.shutdown()

    def describe(self) -> str:
        state = "live" if self._manager.executor is not None else "idle"
        return f"local persistent process pool ({state})"
