"""The frozen executor-backend protocol behind every sweep.

:class:`ExecutorBackend` is the seam that makes the executor choice
configuration instead of code: :func:`repro.perf.backends.map_sweep`
plans a sweep (:func:`plan_jobs`), then hands the parallel portion to
whichever backend the run selected (``--backend`` /
``REPRO_BACKEND``).  The protocol is deliberately tiny and **frozen**
— exactly three methods, pinned by ``tests/perf/test_backends.py`` —
so backends can be added (remote workers, a cluster scheduler) without
touching a single sweep call site:

``submit_map(fn, work, *, n_jobs, star, chunksize)``
    Execute *fn* over the already-planned *work* items on *n_jobs*
    workers and return results **in input order**.  Bit-identity is
    part of the contract: a backend may change wall-clock time and
    scheduling, never values.  A backend that cannot run (no fork
    support, unpicklable work) raises; a backend whose workers died
    mid-task raises :class:`PoolBrokenError` after reaping the pool —
    either way the orchestrator degrades to the serial path and
    records why in :class:`MapInfo`.

``shutdown()``
    Release worker processes and any per-backend state.  Idempotent;
    also registered via ``atexit`` so abandoned pools never outlive
    the interpreter.

``describe()``
    One human-readable line for report notes and ``repro serve
    --stats``.

:class:`MapInfo` (how the most recent sweep actually executed) and
:func:`plan_jobs` (the serial-fallback policy) live here too because
every backend shares them; the historical import path
``repro.perf.pool`` re-exports everything with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import config

#: Below this many grid points per worker, pool start-up + IPC beat the
#: win from parallelism (BENCH_perf.json showed 0.98x on an 18-point
#: grid with a fresh pool); the planner shrinks the pool or goes serial.
MIN_ITEMS_PER_JOB = 4

#: Auto chunking aims for this many chunks per worker: big enough to
#: amortise per-task pickling, small enough to keep workers balanced
#: (and, for the sharded backend, small enough that stealing has
#: something to steal).
CHUNK_WAVES = 4

_validate_jobs = config.validate_jobs


class PoolBrokenError(RuntimeError):
    """A worker process died mid-task and the pool has been reaped.

    Raised by backends *after* tearing the broken pool down, so the
    orchestrator can degrade to the serial path with a recorded reason
    and the next sweep starts from a fresh pool instead of retrying
    into a hung executor.
    """


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (None = env/serial)."""
    config.set_jobs(jobs)


def default_jobs() -> int:
    """Resolve the default worker count (explicit > REPRO_JOBS > 1).

    A malformed ``REPRO_JOBS`` raises :class:`ConfigError` instead of
    being silently coerced: a user who exported it wanted parallelism,
    and quietly running serial hides the typo.
    """
    return config.jobs()


@dataclass(frozen=True)
class MapInfo:
    """How the most recent :func:`map_sweep` actually executed."""

    mode: str                   # "serial" | "parallel"
    reason: str | None          # why serial (None when parallel)
    jobs_requested: int
    jobs_used: int
    items: int
    chunk_size: int | None      # None on the serial path
    backend: str = "serial"     # which ExecutorBackend ran the sweep

    def as_dict(self) -> dict:
        return {"mode": self.mode, "reason": self.reason,
                "jobs_requested": self.jobs_requested,
                "jobs_used": self.jobs_used, "items": self.items,
                "chunk_size": self.chunk_size, "backend": self.backend}

    def describe(self) -> str:
        """Human-readable one-liner for report notes and benchmarks."""
        if self.mode == "serial":
            return f"sweep ran serially ({self.reason})"
        tag = "" if self.backend == "serial" else \
            f" [{self.backend} backend]"
        return (f"sweep ran on {self.jobs_used} workers, chunk size "
                f"{self.chunk_size}{tag}")


def plan_jobs(n_items: int, jobs: int | None = None, *,
              oversubscribe: bool = False) -> tuple[int, str | None]:
    """Decide how a sweep of *n_items* should execute.

    Returns ``(worker_count, reason)``: 1 worker means serial, and
    *reason* says why.  ``oversubscribe=True`` skips the single-CPU
    check (tests exercise the pool protocol on one-core machines).
    """
    n_jobs = default_jobs() if jobs is None else _validate_jobs(
        jobs, "jobs")
    if n_jobs <= 1:
        return 1, "serial requested (jobs=1)"
    if n_items <= 1:
        return 1, f"{n_items} grid point(s): nothing to fan out"
    if not oversubscribe and (os.cpu_count() or 1) == 1:
        return 1, "single CPU: worker processes cannot run concurrently"
    fitting = n_items // MIN_ITEMS_PER_JOB
    if fitting <= 1:
        return 1, (f"{n_items} points across {n_jobs} workers is below "
                   f"the {MIN_ITEMS_PER_JOB}-points-per-worker "
                   "threshold")
    return min(n_jobs, fitting, n_items), None


class ExecutorBackend(abc.ABC):
    """Frozen three-method protocol every sweep executor implements."""

    #: Config spelling of this backend (``--backend <name>``).
    name: str = "abstract"

    @abc.abstractmethod
    def submit_map(self, fn: Callable, work: Sequence, *, n_jobs: int,
                   star: bool, chunksize: int) -> list:
        """Run ``fn`` over *work* on *n_jobs* workers, results in
        input order, bit-identical to a serial pass."""

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Release worker processes; idempotent."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One line for report notes and service stats."""
