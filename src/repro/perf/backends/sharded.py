"""Sharded executor: per-worker chunk queues with parent-driven
work stealing.

:class:`LocalPoolBackend` feeds one shared ``pool.map`` whose chunks
are claimed first-come-first-served — fine for uniform grids, but a
sweep whose points vary wildly in cost (big-n architecture points next
to n=1 points, chaos runs with different horizons) leaves workers idle
behind one slow chunk queue.  The sharded backend schedules the way a
work-stealing runtime does, with the parent as the scheduler:

1. The work list is cut into contiguous chunks (input order is
   preserved inside each chunk, and results are reassembled by index,
   so values are bit-identical to every other path).
2. Chunks are dealt into ``n_jobs`` per-shard deques — shard *i* owns
   a contiguous block, which keeps cache locality for structure-
   sharing sweeps (neighbouring grid points share a skeleton).
3. Each shard keeps exactly one chunk in flight.  When a shard's own
   deque runs dry it **steals from the tail of the longest remaining
   deque** — the classic steal-from-the-back rule, so the thief takes
   the work its victim would reach last.

Steals cost nothing when the grid is uniform (every shard drains its
own deque) and bound the straggler tail when it is not: the sweep ends
at most one chunk after the last-finishing point, instead of one
*queue* after.  The number of steals is observable: ``pool.steal``
counts on the installed recorder and :attr:`ShardedBackend.last_steals`
for benchmarks.

The worker processes themselves are the same primed, persistent,
atexit-reaped pool as the local backend (:class:`PersistentPool`); a
worker death mid-task reaps the pool and raises
:class:`~repro.perf.backends.base.PoolBrokenError` so the orchestrator
degrades the sweep to serial with a recorded reason.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Callable, Sequence

from repro import obs
from repro.obs import sink
from repro.perf.backends.base import ExecutorBackend, PoolBrokenError
from repro.perf.backends.local import PersistentPool, _BrokenPool


def _run_chunk(payload: tuple) -> list:
    """Execute one chunk in a worker; list of results in chunk order."""
    fn, items, star, base_index, traced = payload
    if not traced:
        if star:
            return [fn(*item) for item in items]
        return [fn(item) for item in items]
    results = []
    for offset, item in enumerate(items):
        with obs.span("pool.task", index=base_index + offset):
            results.append(fn(*item) if star else fn(item))
    sink.flush_current()
    return results


class ShardedBackend(ExecutorBackend):
    """Process shards with parent-driven work stealing."""

    name = "sharded"

    def __init__(self):
        self._manager = PersistentPool()
        #: Steals performed by the most recent sweep (benchmarks).
        self.last_steals = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @staticmethod
    def _shard_chunks(n_items: int, n_jobs: int,
                      chunksize: int) -> list[deque]:
        """Deal chunk (start, stop) ranges into contiguous shards."""
        chunks = [(start, min(start + chunksize, n_items))
                  for start in range(0, n_items, chunksize)]
        per_shard = -(-len(chunks) // n_jobs)         # ceil division
        return [deque(chunks[i * per_shard:(i + 1) * per_shard])
                for i in range(n_jobs)]

    def _next_chunk(self, shards: list[deque],
                    shard: int) -> tuple[int, int] | None:
        """The shard's next chunk, stealing from the longest deque's
        tail when its own is empty."""
        if shards[shard]:
            return shards[shard].popleft()
        victim = max(range(len(shards)), key=lambda j: len(shards[j]))
        if shards[victim]:
            self.last_steals += 1
            return shards[victim].pop()
        return None

    def submit_map(self, fn: Callable, work: Sequence, *, n_jobs: int,
                   star: bool, chunksize: int) -> list:
        pool = self._manager.get(n_jobs)
        recorder = obs.current()
        traced = recorder is not None
        shards = self._shard_chunks(len(work), n_jobs, chunksize)
        self.last_steals = 0
        results: list = [None] * len(work)
        inflight: dict = {}                  # future -> (shard, start)

        def feed(shard: int) -> None:
            chunk = self._next_chunk(shards, shard)
            if chunk is None:
                return
            start, stop = chunk
            future = pool.submit(
                _run_chunk, (fn, work[start:stop], star, start, traced))
            inflight[future] = (shard, start)

        try:
            for shard in range(n_jobs):
                feed(shard)
            while inflight:
                done, _pending = wait(inflight,
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    shard, start = inflight.pop(future)
                    chunk_results = future.result()
                    results[start:start + len(chunk_results)] = \
                        chunk_results
                    feed(shard)
        except _BrokenPool as error:
            self._manager.reap()
            raise PoolBrokenError(str(error)) from error
        if self.last_steals:
            obs.add("pool.steal", self.last_steals)
        self._manager.merge_trace(recorder)
        return results

    def shutdown(self) -> None:
        self._manager.shutdown()

    def describe(self) -> str:
        state = "live" if self._manager.executor is not None else "idle"
        return (f"sharded process pool with work stealing ({state}, "
                f"{self.last_steals} steals last sweep)")
