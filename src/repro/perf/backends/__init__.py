"""Pluggable sweep executors behind one ``map_sweep`` front door.

The executor choice is configuration, not code: every sweep call site
(figures, tables, chaos, validation, traffic knees, the GTPN
structure-sharing engine) calls :func:`map_sweep`, which plans the
sweep (:func:`~repro.perf.backends.base.plan_jobs`) and routes the
parallel portion through whichever
:class:`~repro.perf.backends.base.ExecutorBackend` the run selected —
``--backend`` / ``REPRO_BACKEND`` / default ``local``:

* ``serial`` (:class:`~repro.perf.backends.serial.SerialBackend`) —
  everything in-process; debugging, profiling, one-CPU boxes.
* ``local`` (:class:`~repro.perf.backends.local.LocalPoolBackend`) —
  the persistent primed process pool, chunked ``pool.map``.
* ``sharded`` (:class:`~repro.perf.backends.sharded.ShardedBackend`)
  — per-worker chunk shards with parent-driven work stealing, for
  grids whose points vary wildly in cost.

Results are **bit-identical across backends** (asserted by
``tests/perf/test_backends.py``): a backend changes wall-clock time
and scheduling, never values.  Any backend failure — no fork support,
unpicklable work, a worker death mid-task — degrades the sweep to the
serial path with the reason recorded in :func:`last_map_info`, so
callers never special-case broken environments.

The historical module :mod:`repro.perf.pool` re-exports this API and
warns with :class:`DeprecationWarning` on import.
"""

from __future__ import annotations

import math
import pickle
from typing import Callable, Iterable, Sequence, TypeVar

from repro import config, obs
from repro.perf.backends.base import (CHUNK_WAVES, MIN_ITEMS_PER_JOB,
                                      ExecutorBackend, MapInfo,
                                      PoolBrokenError, default_jobs,
                                      plan_jobs, set_default_jobs)
from repro.perf.backends.local import LocalPoolBackend
from repro.perf.backends.serial import SerialBackend
from repro.perf.backends.sharded import ShardedBackend

__all__ = [
    "CHUNK_WAVES",
    "MIN_ITEMS_PER_JOB",
    "ExecutorBackend",
    "LocalPoolBackend",
    "MapInfo",
    "PoolBrokenError",
    "SerialBackend",
    "ShardedBackend",
    "default_jobs",
    "get_backend",
    "last_map_info",
    "map_sweep",
    "plan_jobs",
    "register_backend",
    "set_default_jobs",
    "shutdown_pool",
]

T = TypeVar("T")
R = TypeVar("R")

#: One shared instance per backend: process pools are expensive and
#: persistent, so backends are process-wide singletons like the cache.
_BACKENDS: dict[str, ExecutorBackend] = {
    SerialBackend.name: SerialBackend(),
    LocalPoolBackend.name: LocalPoolBackend(),
    ShardedBackend.name: ShardedBackend(),
}

_last_map_info: MapInfo | None = None

#: Failures that mean "this work cannot ship to a process backend" —
#: no fork support, unpicklable work items, a worker bootstrap crash.
_POOL_UNAVAILABLE = (OSError, pickle.PicklingError, ImportError,
                     TypeError, AttributeError)


def register_backend(backend: ExecutorBackend) -> None:
    """Install (or replace) a backend under ``backend.name``.

    The extension seam for executor families the core does not ship
    (remote workers, a cluster scheduler): registering makes the name
    selectable via ``--backend`` / ``REPRO_BACKEND`` / config
    overrides, provided :func:`repro.config.normalize_backend` knows
    the name (tests monkeypatch ``VALID_BACKENDS``).
    """
    _BACKENDS[backend.name] = backend


def get_backend(name: str | None = None) -> ExecutorBackend:
    """The configured (or named) executor backend instance."""
    resolved = name if name is not None else config.backend()
    try:
        return _BACKENDS[resolved]
    except KeyError:
        from repro.errors import ConfigError
        raise ConfigError(
            f"unknown executor backend {resolved!r}; registered: "
            f"{', '.join(sorted(_BACKENDS))}") from None


def last_map_info() -> MapInfo | None:
    """The :class:`MapInfo` of the most recent sweep, if any."""
    return _last_map_info


def shutdown_pool() -> None:
    """Tear down every backend's worker pool (atexit, tests)."""
    for backend in _BACKENDS.values():
        backend.shutdown()


def map_sweep(fn: Callable[..., R], items: Iterable[T], *,
              jobs: int | None = None, star: bool = False,
              chunksize: int | None = None,
              oversubscribe: bool = False,
              backend: ExecutorBackend | str | None = None) -> list[R]:
    """Map *fn* over *items*, in order, possibly across processes.

    ``star=True`` unpacks each item as positional arguments
    (``fn(*item)``); otherwise each item is passed whole (``fn(item)``).
    ``jobs=None`` uses :func:`default_jobs`.  The sweep is planned via
    :func:`plan_jobs` (serial fallback on small grids or one CPU) and
    chunked to ``ceil(items / (workers * CHUNK_WAVES))`` unless
    *chunksize* is given; :func:`last_map_info` reports what happened.
    ``backend`` overrides the configured executor for this sweep (an
    instance or a registered name).  An unusable pool (unpicklable
    work, no fork support) or a worker death mid-task falls back to
    the serial path; exceptions raised by *fn* itself propagate.
    """
    global _last_map_info
    work: Sequence[T] = list(items)
    jobs_requested = default_jobs() if jobs is None else \
        config.validate_jobs(jobs, "jobs")
    if isinstance(backend, str) or backend is None:
        chosen = get_backend(backend)
    else:
        chosen = backend
    n_jobs, reason = plan_jobs(len(work), jobs_requested,
                               oversubscribe=oversubscribe)
    if n_jobs > 1 and chosen.name == "serial":
        n_jobs, reason = 1, "serial backend selected"
    with obs.span("pool.map", items=len(work),
                  jobs_requested=jobs_requested,
                  backend=chosen.name) as map_span:
        if n_jobs > 1:
            chunk = chunksize if chunksize else max(
                1, math.ceil(len(work) / (n_jobs * CHUNK_WAVES)))
            try:
                results = chosen.submit_map(fn, work, n_jobs=n_jobs,
                                            star=star, chunksize=chunk)
            except PoolBrokenError:
                # the backend already reaped the dead pool; run this
                # sweep in-process and let the next one start fresh
                reason = ("worker pool broke (a worker process died "
                          "mid-task); pool reaped, degraded to serial")
            except _POOL_UNAVAILABLE:
                # pool unavailable or work not shippable: solve
                # in-process.  Genuine errors raised by fn itself
                # re-raise from the serial pass.
                reason = "worker pool unavailable (unpicklable work " \
                         "or no process support)"
            else:
                _last_map_info = MapInfo("parallel", None,
                                         jobs_requested, n_jobs,
                                         len(work), chunk,
                                         backend=chosen.name)
                map_span.set(**_last_map_info.as_dict())
                return results
        _last_map_info = MapInfo("serial", reason, jobs_requested, 1,
                                 len(work), None,
                                 backend=SerialBackend.name)
        map_span.set(**_last_map_info.as_dict())
        return _BACKENDS["serial"].submit_map(fn, work, n_jobs=1,
                                              star=star, chunksize=1)
