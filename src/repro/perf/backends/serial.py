"""The in-process executor: every sweep point runs in the caller.

:class:`SerialBackend` is both a selectable backend (``--backend
serial`` forces every sweep in-process, useful for debugging and
deterministic profiling) and the degradation target every other
backend falls back to: the orchestrator routes a sweep here whenever
the planner declines to fan out or a process backend fails, so callers
never need to special-case degraded environments.

When a recorder is installed each work item runs under a ``pool.task``
span, exactly like the pooled paths — one trace schema regardless of
executor.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import obs
from repro.perf.backends.base import ExecutorBackend


class SerialBackend(ExecutorBackend):
    """Ordered in-process execution; the universal fallback."""

    name = "serial"

    def submit_map(self, fn: Callable, work: Sequence, *, n_jobs: int,
                   star: bool, chunksize: int) -> list:
        if obs.current() is None:
            if star:
                return [fn(*item) for item in work]
            return [fn(item) for item in work]
        results = []
        for index, item in enumerate(work):
            with obs.span("pool.task", index=index):
                results.append(fn(*item) if star else fn(item))
        return results

    def shutdown(self) -> None:
        pass                        # no processes to release

    def describe(self) -> str:
        return "serial in-process execution"
