"""Generalized Timed Petri Net modeling and analysis.

The GTPN package is the modeling substrate of the reproduction: nets
are built with :class:`Net`, solved exactly with :func:`analyze`
(reachability graph + embedded Markov chain) or estimated by Monte
Carlo with :func:`simulate`.

Quick example — an M/Geo/1-style cycle with mean service 10 ticks::

    from repro.gtpn import Net, activity_pair, analyze

    net = Net("cycle")
    ready = net.place("Ready", tokens=1)
    done = net.place("Done")
    activity_pair(net, "serve", 10.0, inputs=[ready], outputs=[done],
                  resource="lambda")
    net.transition("recycle", delay=1, inputs=[done], outputs=[ready])
    print(analyze(net).throughput())   # ~ 1/11 per tick
"""

from repro.gtpn.analysis import AnalysisResult, analyze
from repro.gtpn.approximations import (activity_pair, geometric_frequency,
                                       littles_law_population,
                                       littles_law_residence)
from repro.gtpn.markov import stationary_distribution, transition_matrix
from repro.gtpn.net import Context, Net, Place, SymmetryGroup, Transition
from repro.gtpn.packed import (PackedLayout, PackedSkeleton, compile_packed,
                               packed_build, packed_retime)
from repro.gtpn.reachability import (ReachabilityGraph, ReductionInfo,
                                     build_reachability_graph)
from repro.gtpn.simulation import (ConfidenceResult, SimulationResult,
                                   simulate, simulate_with_confidence)
from repro.gtpn.state import State, TickEngine
from repro.gtpn.structure import (check_invariant, incidence_matrix,
                                  invariant_value, is_connected,
                                  place_invariants,
                                  structural_deadlock_free_bound,
                                  to_networkx)

__all__ = [
    "AnalysisResult",
    "Context",
    "Net",
    "PackedLayout",
    "PackedSkeleton",
    "Place",
    "ReachabilityGraph",
    "ReductionInfo",
    "SimulationResult",
    "State",
    "SymmetryGroup",
    "TickEngine",
    "Transition",
    "activity_pair",
    "analyze",
    "ConfidenceResult",
    "build_reachability_graph",
    "compile_packed",
    "packed_build",
    "packed_retime",
    "check_invariant",
    "geometric_frequency",
    "incidence_matrix",
    "invariant_value",
    "is_connected",
    "littles_law_population",
    "littles_law_residence",
    "place_invariants",
    "simulate",
    "simulate_with_confidence",
    "stationary_distribution",
    "structural_deadlock_free_bound",
    "to_networkx",
    "transition_matrix",
]
