"""Modeling helpers: geometric delays and queueing identities.

Section 6.6.1 of the thesis replaces large constant delays by
geometrically distributed delays with the same mean (Figure 6.7): a
constant delay of *m* ticks becomes a pair of conflicting delay-1
transitions, one "exit" with frequency ``1/m`` and one "loop" with
frequency ``1 - 1/m``.  The throughput of the surrounding net is
unchanged because the performance measure of interest is a mean.

This module provides that construction plus the Little's-law helpers
used by the iterative solution of the split non-local models
(section 6.6.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.errors import ModelError
from repro.gtpn.net import Context, Net, Place, Transition


def geometric_frequency(mean: float) -> float:
    """Exit frequency of the geometric approximation of a *mean* delay."""
    if mean < 1.0:
        raise ModelError(f"mean delay must be >= 1 tick, got {mean!r}")
    return 1.0 / mean


def activity_pair(net: Net, name: str, mean_delay: float, *,
                  inputs: Iterable[Place] | Mapping[Place, int],
                  outputs: Iterable[Place] | Mapping[Place, int],
                  holds: Iterable[Place] = (),
                  resource: str | None = None,
                  occupancy: str | None = None,
                  gate: Callable[[Context], bool] | None = None,
                  ) -> tuple[Transition, Transition]:
    """Model an activity of geometric mean duration *mean_delay* ticks.

    Creates the thesis's standard two-transition pattern:

    * ``<name>`` — the *exit* transition, frequency ``1/mean_delay``,
      consuming ``inputs`` (+ ``holds``) and producing ``outputs``
      (+ ``holds``),
    * ``<name>.loop`` — the *loop* transition, frequency
      ``1 - 1/mean_delay``, consuming and reproducing ``inputs`` and
      ``holds`` unchanged.

    ``holds`` lists resource places (Host, MP, IoIn, ...) that the
    activity occupies for its whole duration and releases afterwards.
    ``gate`` optionally inhibits the whole pair (both frequencies
    evaluate to zero) in states where it returns False — the library
    form of the thesis's state-dependent frequency expressions.

    ``occupancy`` names an extra resource measuring the mean number of
    in-progress executions of this activity (exit + loop in-flight
    time), used for Little's-law population measurements in the split
    non-local models.

    A ``mean_delay`` of exactly 1 produces only the exit transition
    (the loop frequency would be zero).
    """
    p_exit = geometric_frequency(mean_delay)
    holds = list(holds)
    in_arcs = _merge_arcs(inputs, holds)
    out_arcs = _merge_arcs(outputs, holds)
    extra = (occupancy,) if occupancy else ()

    exit_label = f"1/{mean_delay:g}"
    loop_label = f"1 - 1/{mean_delay:g}"
    if gate is None:
        exit_freq: float | Callable = p_exit
        loop_freq: float | Callable = 1.0 - p_exit
    else:
        def exit_freq(ctx: Context, _p=p_exit, _g=gate) -> float:
            return _p if _g(ctx) else 0.0

        def loop_freq(ctx: Context, _p=p_exit, _g=gate) -> float:
            return (1.0 - _p) if _g(ctx) else 0.0

        # thesis notation: <gate> -> frequency, 0
        exit_label = f"<gate> -> {exit_label}, 0"
        loop_label = f"<gate> -> {loop_label}, 0"

    exit_t = net.transition(name, delay=1, frequency=exit_freq,
                            resource=resource, extra_resources=extra,
                            inputs=in_arcs, outputs=out_arcs,
                            frequency_label=exit_label)
    if p_exit >= 1.0:
        return exit_t, exit_t
    loop_t = net.transition(f"{name}.loop", delay=1, frequency=loop_freq,
                            extra_resources=extra,
                            inputs=in_arcs, outputs=in_arcs,
                            frequency_label=loop_label)
    return exit_t, loop_t


def _merge_arcs(spec, holds: list[Place]) -> dict[Place, int]:
    arcs: dict[Place, int] = {}
    items = spec.items() if isinstance(spec, Mapping) else \
        [(p, 1) for p in spec]
    for p, n in items:
        arcs[p] = arcs.get(p, 0) + n
    for p in holds:
        arcs[p] = arcs.get(p, 0) + 1
    return arcs


def littles_law_population(arrival_rate: float, residence_time: float,
                           ) -> float:
    """N = lambda * T (Little's result, used for the server model)."""
    return arrival_rate * residence_time


def littles_law_residence(population: float, arrival_rate: float) -> float:
    """T = N / lambda (used to turn throughput into cycle time)."""
    if arrival_rate <= 0:
        raise ModelError("arrival rate must be positive")
    return population / arrival_rate
