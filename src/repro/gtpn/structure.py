"""Structural analysis of GTPNs: incidence matrix, invariants, graphs.

Classical Petri-net structure theory applied to the architecture
models, useful both for debugging nets and for asserting model
sanity in tests:

* the **incidence matrix** C (places x transitions, outputs minus
  inputs),
* **P-invariants** (left null space of C): weightings of places whose
  token count every firing conserves — e.g. the Host token of the
  architecture models, or Clients + all client-cycle stages,
* conversion to a :mod:`networkx` bipartite digraph for connectivity
  and cycle analysis.

The loop transitions of the geometric-delay pairs have equal input
and output arcs, so they contribute zero columns and never break an
invariant.
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
import numpy as np

from repro.errors import ModelError
from repro.gtpn.net import Net


def incidence_matrix(net: Net) -> np.ndarray:
    """C[p, t] = outputs(t -> p) - inputs(p -> t)."""
    matrix = np.zeros((len(net.places), len(net.transitions)),
                      dtype=np.int64)
    for t in net.transitions:
        for p, n in t.inputs.items():
            matrix[p, t.index] -= n
        for p, n in t.outputs.items():
            matrix[p, t.index] += n
    return matrix


def place_invariants(net: Net) -> list[dict[str, int]]:
    """A basis of non-negative integer P-invariants (best effort).

    Computes the rational left null space of the incidence matrix and
    rescales each basis vector to integers.  Vectors with mixed signs
    are returned as-is (they are still invariants, just not
    semiflows).  Returns a list of {place name: weight} dicts with
    zero-weight places omitted.
    """
    matrix = incidence_matrix(net)
    null_basis = _rational_left_null_space(matrix)
    invariants = []
    for vector in null_basis:
        scale = _common_denominator(vector)
        integral = [int(value * scale) for value in vector]
        if all(weight <= 0 for weight in integral):
            integral = [-weight for weight in integral]
        invariants.append({net.places[i].name: weight
                           for i, weight in enumerate(integral)
                           if weight != 0})
    return invariants


def invariant_value(net: Net, weights: dict[str, int]) -> int:
    """The weighted token sum of *weights* at the initial marking."""
    total = 0
    for name, weight in weights.items():
        total += weight * net.get_place(name).initial_tokens
    return total


def check_invariant(net: Net, weights: dict[str, int]) -> bool:
    """True when every transition conserves the weighted token sum.

    In-flight firings hold their input tokens, so the conservation
    statement for the executable semantics is: each *completed* firing
    leaves the sum unchanged.
    """
    for t in net.transitions:
        delta = 0
        for p, n in t.inputs.items():
            delta -= n * weights.get(net.places[p].name, 0)
        for p, n in t.outputs.items():
            delta += n * weights.get(net.places[p].name, 0)
        if delta != 0:
            return False
    return True


def to_networkx(net: Net) -> nx.DiGraph:
    """The net as a bipartite digraph (places and transitions).

    Node attributes: ``kind`` ("place"/"transition"), ``tokens`` for
    places, ``delay``/``resource`` for transitions (state-dependent
    attributes are tagged ``"dynamic"``).  Edge attribute ``weight``
    is the arc multiplicity.
    """
    graph = nx.DiGraph(name=net.name)
    for place in net.places:
        graph.add_node(f"p:{place.name}", kind="place",
                       tokens=place.initial_tokens)
    for t in net.transitions:
        delay = "dynamic" if callable(t.delay) else t.delay
        graph.add_node(f"t:{t.name}", kind="transition", delay=delay,
                       resource=t.resource)
        for p, n in t.inputs.items():
            graph.add_edge(f"p:{net.places[p].name}", f"t:{t.name}",
                           weight=n)
        for p, n in t.outputs.items():
            graph.add_edge(f"t:{t.name}", f"p:{net.places[p].name}",
                           weight=n)
    return graph


def is_connected(net: Net) -> bool:
    """Weak connectivity of the net graph (a sanity check: the
    architecture models are single connected systems)."""
    graph = to_networkx(net)
    if graph.number_of_nodes() == 0:
        raise ModelError("empty net")
    return nx.is_weakly_connected(graph)


def structural_deadlock_free_bound(net: Net) -> bool:
    """Necessary condition for liveness: every transition lies on a
    directed cycle through the net graph (token flow can return).

    The closed conversation cycles of the architecture models satisfy
    this; a net failing it will eventually drain some place.
    """
    graph = to_networkx(net)
    condensed = nx.condensation(graph)
    # a transition on no cycle sits in a singleton SCC with in+out
    for t in net.transitions:
        node = f"t:{t.name}"
        scc_index = condensed.graph["mapping"][node]
        members = condensed.nodes[scc_index]["members"]
        if len(members) == 1 and not (graph.has_edge(node, node)):
            return False
    return True


# ----------------------------------------------------------------------
# exact rational linear algebra (small matrices)
# ----------------------------------------------------------------------

def _rational_left_null_space(matrix: np.ndarray) -> list[list[Fraction]]:
    """Basis of {x : x @ matrix = 0} over the rationals."""
    rows, cols = matrix.shape
    # work on matrix^T x^T = 0: reduce matrix^T (cols x rows)
    m = [[Fraction(int(matrix[r, c])) for r in range(rows)]
         for c in range(cols)]
    # Gauss-Jordan elimination
    pivot_cols: list[int] = []
    row_index = 0
    for col in range(rows):
        pivot = None
        for r in range(row_index, len(m)):
            if m[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        m[row_index], m[pivot] = m[pivot], m[row_index]
        scale = m[row_index][col]
        m[row_index] = [value / scale for value in m[row_index]]
        for r in range(len(m)):
            if r != row_index and m[r][col] != 0:
                factor = m[r][col]
                m[r] = [a - factor * b
                        for a, b in zip(m[r], m[row_index])]
        pivot_cols.append(col)
        row_index += 1
    free_cols = [c for c in range(rows) if c not in pivot_cols]
    basis = []
    for free in free_cols:
        vector = [Fraction(0)] * rows
        vector[free] = Fraction(1)
        for r, pivot_col in enumerate(pivot_cols):
            vector[pivot_col] = -m[r][free]
        basis.append(vector)
    return basis


def _common_denominator(vector: list[Fraction]) -> int:
    denominator = 1
    for value in vector:
        denominator = np.lcm(denominator, value.denominator)
    return int(denominator)
