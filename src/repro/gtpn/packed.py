"""Array-native GTPN engine: packed states, batched expansion, lumping.

This module is the scaling path of the exact analyzer.  The object
engine (:mod:`repro.gtpn.state`) walks one ``State`` at a time through
Python dicts; here the same semantics run over numpy arrays:

* **Packed states** — a state is one ``int32`` row: the marking in the
  first ``n_places`` columns, then one column per ``(transition,
  remaining_ticks)`` slot of every static-delay transition, holding the
  count of in-flight firings at that countdown.  Rows are hash-consed
  through :class:`_Interner` (per-wave ``np.unique`` + a byte-keyed id
  table), so state identity is a row compare, not a tuple hash.
* **Batched expansion** — the BFS frontier advances a whole wave of
  states per step.  The settle rounds of a tick run vectorized: one
  enabledness test per round for every (item, class member) pair, a
  mixed-radix expansion of the per-class choice cross product
  (class 0 is the slowest-varying digit, exactly the object engine's
  ``_cartesian`` order), and sentinel-row bookkeeping so inactive
  classes cost a no-op row instead of a Python branch.
* **Direct CSR assembly** — branch probabilities are recorded as
  *programs* of normalized-frequency factors (the packed analogue of
  the sweep skeleton) and evaluated once, at the end, straight into the
  data array of a ``scipy.sparse.csr_matrix``; no per-state dict is
  ever built.

Bit-reproducibility contract: every floating-point accumulation —
factor normalization, per-round products, branch dedup sums, row and
expected-starts accumulation — replays the object engine's operation
order (Python left folds, first-seen branch order, additive/
multiplicative identity padding), so an unreduced packed build is
**bit-identical** to ``build_reachability_graph``'s object walk, and a
:func:`packed_retime` re-evaluation is bit-identical to a fresh
:func:`packed_build` by construction (same arrays through the same
:func:`_evaluate`).

On top sit the opt-in reductions (``analyze(..., reduction=...)``):

* ``lump`` — client symmetry lumping.  Successor rows are
  canonicalized by sorting the column blocks of every declared
  :class:`~repro.gtpn.net.SymmetryGroup` member, folding states that
  differ only by a replica permutation onto one representative.  The
  quotient is exact (strong lumpability) because every declared swap is
  a validated net automorphism; per-member measures are recovered by
  orbit averaging in :mod:`repro.gtpn.analysis`.
* ``elim`` — transient elimination.  Immediate (delay-0) firings are
  already folded into ticks by the settle semantics, so the embedded
  chain has no classical vanishing markings; what remains removable are
  the transient states of the initial settling, dropped by slicing the
  chain to its single closed communicating class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro import obs
from repro.errors import AnalysisError, StateSpaceLimitError
from repro.gtpn.net import Net
from repro.gtpn.state import MAX_IMMEDIATE_ROUNDS, State

#: Hard caps keeping the packed encodings honest; a net exceeding one
#: falls back to the object engine (``compile_packed`` returns None).
MAX_PACKED_WIDTH = 4096         # marking + slot columns per state row
MAX_CLASS_MEMBERS = 40          # positive-frequency members per class
                                # (the factor-key mask is 40 bits)

#: Sources expanded per wave: bounds the working-set of one batched
#: settle (items × members × places) while keeping per-wave numpy
#: call overhead amortized over thousands of states.
WAVE_CHUNK = 8192


class SkeletonMismatch(Exception):
    """A new timing alters branch resolution; replay is invalid.

    Internal control flow only: callers catch it and fall back to a
    full build (which also refreshes the cached skeleton).  Raised by
    both the object-path :func:`repro.gtpn.sweep.retime` and
    :func:`packed_retime`.
    """


# ----------------------------------------------------------------------
# packed state layout
# ----------------------------------------------------------------------

@dataclass
class PackedLayout:
    """Mapping between :class:`State` objects and packed int32 rows.

    Row layout: ``[marking (n_places cols) | slots]`` where the slots
    enumerate ``(transition, remaining)`` pairs for every transition of
    static delay >= 1, transition-major with ``remaining`` ascending
    ``1..delay`` — the same ordering as a sorted ``State.inflight``
    tuple, so unpacking needs no sort.
    """

    n_places: int
    n_transitions: int
    slot_t: np.ndarray          # (n_slots,) transition index per slot
    slot_r: np.ndarray          # (n_slots,) remaining ticks per slot
    slot_base: np.ndarray       # (n_transitions,) local index of the
                                # (t, 1) slot, -1 for immediates

    @property
    def n_slots(self) -> int:
        return len(self.slot_t)

    @property
    def width(self) -> int:
        return self.n_places + self.n_slots

    def pack(self, state: State) -> np.ndarray:
        row = np.zeros(self.width, dtype=np.int32)
        row[:self.n_places] = state.marking
        for t_idx, remaining in state.inflight:
            base = self.slot_base[t_idx]
            if base < 0 or remaining < 1 or \
                    not (self.slot_t[base + remaining - 1] == t_idx):
                raise AnalysisError(
                    f"state has in-flight ({t_idx}, {remaining}) with no "
                    "packed slot; layout does not cover this net")
            row[self.n_places + base + remaining - 1] += 1
        return row

    def unpack(self, row: np.ndarray) -> State:
        marking = tuple(int(x) for x in row[:self.n_places])
        inflight = []
        slots = row[self.n_places:]
        for k in np.flatnonzero(slots):
            entry = (int(self.slot_t[k]), int(self.slot_r[k]))
            inflight.extend([entry] * int(slots[k]))
        return State(marking=marking, inflight=tuple(inflight))

    def unpack_all(self, table: np.ndarray) -> list[State]:
        return [self.unpack(row) for row in table]


class PackedNet:
    """Compiled arrays for batched execution of one static net.

    Built by :func:`compile_packed`; not pickled (rebuilt per process
    from the net).  All ``*_ext`` arrays carry a sentinel row/column at
    index ``n_transitions`` (a no-op transition) so inactive conflict
    classes apply as zero-cost vector rows.
    """

    def __init__(self, net: Net):
        self.net = net
        n_p = self.n_places = len(net.places)
        n_t = self.n_transitions = len(net.transitions)
        self.delays = np.array([int(t.delay) for t in net.transitions],
                               dtype=np.int64)
        self.freqs = np.array([float(t.frequency)
                               for t in net.transitions], dtype=np.float64)

        # slots: transition-major, remaining ascending
        slot_t, slot_r = [], []
        slot_base = np.full(n_t, -1, dtype=np.int64)
        for t in range(n_t):
            if self.delays[t] >= 1:
                slot_base[t] = len(slot_t)
                for r in range(1, int(self.delays[t]) + 1):
                    slot_t.append(t)
                    slot_r.append(r)
        self.layout = PackedLayout(
            n_places=n_p, n_transitions=n_t,
            slot_t=np.array(slot_t, dtype=np.int64),
            slot_r=np.array(slot_r, dtype=np.int64),
            slot_base=slot_base)
        width = self.layout.width

        # arc matrices with the sentinel no-op row
        self.in_mat = np.zeros((n_t + 1, n_p), dtype=np.int32)
        self.out_imm = np.zeros((n_t + 1, n_p), dtype=np.int32)
        for t in net.transitions:
            for p, n in t.inputs.items():
                self.in_mat[t.index, p] = n
            if self.delays[t.index] == 0:
                for p, n in t.outputs.items():
                    self.out_imm[t.index, p] = n
        #: one-gather settle delta: immediate outputs minus inputs
        self.settle_delta = self.out_imm - self.in_mat

        # advance phase: slots at remaining == 1 complete and deposit
        complete_cols, complete_t = [], []
        for k in range(self.layout.n_slots):
            if self.layout.slot_r[k] == 1:
                complete_cols.append(n_p + k)
                complete_t.append(int(self.layout.slot_t[k]))
        self.complete_cols = np.array(complete_cols, dtype=np.int64)
        self.complete_out = np.zeros((len(complete_t), n_p),
                                     dtype=np.int32)
        for row, t_idx in enumerate(complete_t):
            for p, n in net.transitions[t_idx].outputs.items():
                self.complete_out[row, p] = n
        # countdown: slot (t, r) receives the count of (t, r + 1)
        shift_src, shift_dst = [], []
        for k in range(self.layout.n_slots):
            if self.layout.slot_r[k] >= 2:
                shift_src.append(n_p + k)
                shift_dst.append(n_p + k - 1)
        self.shift_src = np.array(shift_src, dtype=np.int64)
        self.shift_dst = np.array(shift_dst, dtype=np.int64)

        # a started firing of t lands in slot (t, delay): these gather
        # a successor's deposited in-flight counts from its start counts
        self.dep_ts = np.array(
            [t for t in range(n_t) if self.delays[t] >= 1],
            dtype=np.int64)
        self.dep_cols = np.array(
            [n_p + slot_base[t] + self.delays[t] - 1
             for t in self.dep_ts], dtype=np.int64)

        # conflict classes, restricted to positive-frequency members
        # (zero-frequency transitions never join a weighted choice)
        self.classes: list[tuple[int, ...]] = []
        self.cls_index: list[int] = []
        members_flat: list[int] = []
        class_offsets: list[int] = []
        member_bit: list[int] = []
        member_class_start: list[int] = []
        class_of_member: list[int] = []
        for ci, cls in enumerate(net.conflict_classes()):
            positive = tuple(t for t in cls if self.freqs[t] > 0)
            if not positive:
                continue
            start = len(members_flat)
            class_offsets.append(start)
            self.classes.append(positive)
            self.cls_index.append(ci)
            for rank, t in enumerate(positive):
                members_flat.append(t)
                member_bit.append(1 << rank)
                member_class_start.append(start)
                class_of_member.append(len(self.classes) - 1)
        self.members_flat = np.array(members_flat, dtype=np.int64)
        self.class_offsets = np.array(class_offsets, dtype=np.int64)
        self.member_bit = np.array(member_bit, dtype=np.int64)
        self.member_class_start = np.array(member_class_start,
                                           dtype=np.int64)
        self.class_of_member = np.array(class_of_member, dtype=np.int64)
        self.cls_ids64 = np.array(self.cls_index, dtype=np.int64)
        self.n_cls = len(self.classes)
        self.in_req = self.in_mat[self.members_flat] \
            if len(members_flat) else np.zeros((0, n_p), dtype=np.int32)
        # sparse form of the enabledness test: one (place, requirement)
        # triple per nonzero of in_req, a dummy always-true triple for
        # members with no inputs so every reduceat segment is non-empty
        trip_place: list[int] = []
        trip_req: list[int] = []
        trip_offsets: list[int] = []
        for m in range(len(members_flat)):
            trip_offsets.append(len(trip_place))
            places = np.nonzero(self.in_req[m])[0]
            if len(places):
                trip_place.extend(int(p) for p in places)
                trip_req.extend(int(r) for r in self.in_req[m, places])
            else:
                trip_place.append(0)
                trip_req.append(0)
        self.trip_place = np.array(trip_place, dtype=np.int64)
        self.trip_req = np.array(trip_req, dtype=np.int32)
        self.trip_offsets = np.array(trip_offsets, dtype=np.int64)

        # slot counts -> per-transition in-flight counts
        self.slot_to_t = np.zeros((self.layout.n_slots, n_t))
        for k in range(self.layout.n_slots):
            self.slot_to_t[k, self.layout.slot_t[k]] = 1.0

        # symmetry lumping blocks (filled by compile_packed on demand)
        self.sym_blocks: list[np.ndarray] = []

    def build_sym_blocks(self) -> None:
        """Column blocks for canonicalization, one per symmetry group."""
        self.sym_blocks = []
        for group in self.net.symmetries:
            cols_per_member = []
            for p_idx, t_idx in group.members:
                cols = [int(p) for p in p_idx]
                for t in t_idx:
                    base = self.layout.slot_base[t]
                    if base >= 0:
                        cols.extend(self.n_places + base + r
                                    for r in range(int(self.delays[t])))
                cols_per_member.append(cols)
            self.sym_blocks.append(np.array(cols_per_member,
                                            dtype=np.int64))


def compile_packed(net: Net, reduction: str = "none",
                   ) -> PackedNet | None:
    """Compile *net* for the packed engine, or ``None`` to fall back.

    A net compiles when every delay and frequency is static (the packed
    factor encoding has no context snapshots), no static frequency is
    negative (the object engine owns that error path), and the packed
    row / factor-mask caps hold.
    """
    for t in net.transitions:
        if callable(t.delay) or callable(t.frequency):
            return None
        if float(t.frequency) < 0:
            return None
    pnet = PackedNet(net)
    if pnet.layout.width > MAX_PACKED_WIDTH:
        return None
    if any(len(members) > MAX_CLASS_MEMBERS for members in pnet.classes):
        return None
    if "lump" in reduction and net.symmetries:
        pnet.build_sym_blocks()
    return pnet


# ----------------------------------------------------------------------
# hash-consed row interning
# ----------------------------------------------------------------------

def _row_view(arr: np.ndarray) -> np.ndarray:
    """1-D void view of a 2-D array: one comparable scalar per row."""
    arr = np.ascontiguousarray(arr)
    return arr.view(np.dtype((np.void,
                              arr.dtype.itemsize * arr.shape[1]))).ravel()


#: Fibonacci-style mixing constant for the row hash (deterministic
#: across runs and platforms; wraparound is numpy's defined uint64
#: behaviour).
_HASH_MULT = 0x9E3779B97F4A7C15
_hash_weights = np.array([], dtype=np.uint64)


def _row_hashes(arr: np.ndarray) -> np.ndarray:
    """One deterministic 64-bit hash per row.

    A weighted column sum (odd fixed weights, wrapping uint64): one
    vectorized pass instead of a fold per column.  Linear, so weaker
    than a mixing fold — but every caller verifies hash groups against
    row content and falls back to the exact byte-sort path, so a
    collision can cost speed, never correctness.
    """
    global _hash_weights
    a = np.ascontiguousarray(arr)
    a = a.view(np.uint32 if a.dtype.itemsize == 4 else np.uint64)
    w = a.shape[1]
    if len(_hash_weights) < w:
        acc, weights = 1, []
        for _ in range(max(w, 64)):
            acc = (acc * _HASH_MULT) % (1 << 64)
            weights.append(acc | 1)
        _hash_weights = np.array(weights, dtype=np.uint64)
    return a @ _hash_weights[:w]


def _unique_rows_exact(arr: np.ndarray,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Byte-sort row dedup: the always-correct (slower) path."""
    _, first, inverse = np.unique(_row_view(arr), return_index=True,
                                  return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(first), dtype=np.int64)
    rank[order] = np.arange(len(first))
    return first[order], rank[inverse]


def _unique_rows_first_seen(arr: np.ndarray,
                            hashes: np.ndarray | None = None,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """``(firsts, inverse)`` with uniques ranked in first-seen order.

    ``firsts[k]`` is the row index of the first occurrence of the k-th
    distinct row *in order of appearance*; ``inverse`` maps every row
    to its first-seen rank.  (``np.unique`` alone ranks lexically,
    which would scramble the object engine's accumulation order.)

    Dedups by 64-bit row hash — sorting scalars beats memcmp-sorting
    wide rows — then *verifies* every row equals its hash group's
    head, so a collision can only ever divert to the exact byte-sort
    path, never corrupt the grouping.  Pass *hashes* to reuse an
    already-computed ``_row_hashes(arr)``.
    """
    arr = np.ascontiguousarray(arr)
    h = _row_hashes(arr) if hashes is None else hashes
    _, first, inverse = np.unique(h, return_index=True,
                                  return_inverse=True)
    if not (arr == arr[first[inverse]]).all():
        return _unique_rows_exact(arr)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(first), dtype=np.int64)
    rank[order] = np.arange(len(first))
    return first[order], rank[inverse]


class _Interner:
    """Grow-doubling state table with hash-probed row identity.

    Lookup is a ``searchsorted`` against the sorted hashes of every
    interned row; each hash hit is then *verified* against the stored
    row bytes (and equal-hash runs scanned exhaustively), so a 64-bit
    collision only ever costs a scan, never a wrong id.  Fresh ids are
    assigned in first-seen order, matching the historical dict walk.
    """

    def __init__(self, width: int):
        self._table = np.empty((1024, max(width, 1)), dtype=np.int32)
        self._width = width
        self._hashes = np.empty(1024, dtype=np.uint64)
        self._sorted = np.empty(0, dtype=np.uint64)
        self._perm = np.empty(0, dtype=np.int64)
        self.n = 0

    def intern(self, rows: np.ndarray) -> np.ndarray:
        """Ids for *rows*, assigning fresh ids in first-seen order."""
        rows = np.ascontiguousarray(rows, dtype=np.int32)
        h = _row_hashes(rows)
        left = np.searchsorted(self._sorted, h, side="left")
        right = np.searchsorted(self._sorted, h, side="right")
        ids = np.full(len(rows), -1, dtype=np.int64)
        single = (right - left) == 1
        if single.any():
            cand = self._perm[left[single]]
            hit = (self._table[cand] == rows[single]).all(axis=1)
            sel = np.nonzero(single)[0][hit]
            ids[sel] = cand[hit]
        for k in np.nonzero((right - left) > 1)[0]:
            for cid in self._perm[left[k]:right[k]]:
                if (self._table[cid] == rows[k]).all():
                    ids[k] = cid
                    break
        fresh = np.nonzero(ids < 0)[0]
        if len(fresh):
            # only the unseen rows need the in-batch first-seen dedup
            fr = np.ascontiguousarray(rows[fresh])
            fh = h[fresh]
            firsts, inv = _unique_rows_first_seen(fr, fh)
            uniq = np.ascontiguousarray(fr[firsts])
            uh = fh[firsts]
            start, count = self.n, len(firsts)
            while start + count > len(self._table):
                grown = np.empty((len(self._table) * 2, self._width),
                                 dtype=np.int32)
                grown[:start] = self._table[:start]
                self._table = grown
                grown_h = np.empty(len(self._table), dtype=np.uint64)
                grown_h[:start] = self._hashes[:start]
                self._hashes = grown_h
            new_ids = start + np.arange(count, dtype=np.int64)
            self._table[start:start + count] = uniq
            self._hashes[start:start + count] = uh
            ids[fresh] = new_ids[inv]
            self.n = start + count
            order = np.argsort(uh, kind="stable")
            pos = np.searchsorted(self._sorted, uh[order])
            self._sorted = np.insert(self._sorted, pos, uh[order])
            self._perm = np.insert(self._perm, pos, new_ids[order])
        return ids

    def table(self) -> np.ndarray:
        return self._table[:self.n].copy()

    def rows_from(self, start: int) -> np.ndarray:
        """View of the rows interned at ids ``start..n`` (no copy)."""
        return self._table[start:self.n]


# ----------------------------------------------------------------------
# factor programs and their one-shot evaluation
# ----------------------------------------------------------------------

@dataclass
class _EvalData:
    """Everything :func:`_evaluate` needs; shared by build and retime.

    Factor keys pack ``(class_index << 48) | (enabled_mask << 8) |
    digit`` where the mask runs over the class's positive-frequency
    members and ``digit`` ranks the chosen member among the enabled
    ones.  Decoded here into gather-ready index arrays: ``f_members``
    rows pad with ``n_transitions`` (frequency 0.0, the additive
    identity of the left-fold total), ``prog_fids`` pads with the
    sentinel factor (value 1.0, the multiplicative identity), so padded
    vector folds reproduce the object engine's variable-length Python
    folds bit for bit.
    """

    f_chosen: np.ndarray        # (F,) transition index per factor
    f_members: np.ndarray       # (F, K) enabled members, padded n_t
    prog_fids: np.ndarray       # (n_progs, R, C) factor ids, padded F
    item_pid: np.ndarray        # per work item, its program
    item_branch: np.ndarray     # per work item, its deduped branch
    n_branches: int
    b_src: np.ndarray           # (n_branches,) source state id
    b_entry: np.ndarray         # (n_branches,) CSR entry index
    s_branch: np.ndarray        # sparse starts: branch index,
    s_t: np.ndarray             # transition, count
    s_cnt: np.ndarray
    i_item_pid: np.ndarray      # initial-distribution items/branches
    i_item_branch: np.ndarray
    n_i_branches: int
    i_dst: np.ndarray           # (n_i_branches,) state id


def _evaluate(ev: _EvalData, freqs: np.ndarray, n_states: int,
              n_transitions: int, n_entries: int,
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Factor values -> branch probabilities -> (data, starts, initial).

    Replays the object engine's float order exactly: per-factor totals
    are left folds over enabled members, per-item probabilities are
    per-round products folded round by round, and every ``np.add.at``
    accumulates in the same first-seen order the dict-based build used.
    Build and retime both call this — their outputs are bit-identical
    by construction.
    """
    freqs_ext = np.append(freqs, 0.0)
    n_factors = len(ev.f_chosen)
    total = np.zeros(n_factors)
    for k in range(ev.f_members.shape[1]):
        total = total + freqs_ext[ev.f_members[:, k]]
    fvals_ext = np.append(
        freqs_ext[ev.f_chosen] / total if n_factors else
        np.empty(0), 1.0)

    n_progs, n_rounds, n_cols = ev.prog_fids.shape
    prog_values = np.ones(n_progs)
    for r in range(n_rounds):
        round_p = fvals_ext[ev.prog_fids[:, r, 0]]
        for c in range(1, n_cols):
            round_p = round_p * fvals_ext[ev.prog_fids[:, r, c]]
        prog_values = round_p if r == 0 else prog_values * round_p

    branch_vals = np.zeros(ev.n_branches)
    np.add.at(branch_vals, ev.item_branch, prog_values[ev.item_pid])
    data = np.zeros(n_entries)
    np.add.at(data, ev.b_entry, branch_vals)
    starts_matrix = np.zeros((n_states, n_transitions))
    np.add.at(starts_matrix, (ev.b_src[ev.s_branch], ev.s_t),
              branch_vals[ev.s_branch] * ev.s_cnt)
    init_branch_vals = np.zeros(ev.n_i_branches)
    np.add.at(init_branch_vals, ev.i_item_branch,
              prog_values[ev.i_item_pid])
    init_vec = np.zeros(n_states)
    np.add.at(init_vec, ev.i_dst, init_branch_vals)
    return data, starts_matrix, init_vec


# ----------------------------------------------------------------------
# the packed skeleton (cached per structure, shared across retimes)
# ----------------------------------------------------------------------

@dataclass
class PackedSkeleton:
    """Timing-independent bones of a packed build.

    Stores the interned state table, the CSR sparsity pattern, and the
    factor/program bookkeeping; :func:`packed_retime` re-evaluates the
    probabilities for new static timings in-place on this structure.
    Shared (cached, possibly across processes): treat every field as
    read-only.
    """

    structure: str              # structure fingerprint
    kind: str                   # "packed:<reduction>"
    n_places: int
    n_transitions: int
    static_delays: tuple
    freq_positive: tuple        # per transition: frequency > 0
    layout: PackedLayout
    table: np.ndarray           # (n_full, width) canonical state rows
    indptr: np.ndarray
    indices: np.ndarray
    ev: _EvalData
    inflight_matrix: np.ndarray
    closed_classes: int | None  # None until first demanded
    kept: np.ndarray | None     # elim slice, None when not reduced
    reduction: str              # requested mode
    lumped: bool
    place_orbits: tuple
    transition_orbits: tuple
    folded_states: int

    @property
    def full_state_count(self) -> int:
        return len(self.table)

    @property
    def state_count(self) -> int:
        return len(self.kept) if self.kept is not None \
            else len(self.table)

    def closed_class_count(self) -> int:
        """Closed communicating classes of the chain (lazy, cached).

        The sparsity pattern (hence the reachability structure) is
        timing-invariant while the frequency support holds, so the
        class count and the transient slice are skeleton facts — but
        they are solve-side facts, not build-side ones (the object
        engine computes them at solve time too), so they are deferred
        until a solver or the transient elimination asks.
        """
        if self.closed_classes is None:
            n_states = self.full_state_count
            pattern = sp.csr_matrix(
                (np.ones(len(self.indices)), self.indices, self.indptr),
                shape=(n_states, n_states))
            n_comp, labels = connected_components(
                pattern, directed=True, connection="strong")
            if n_comp == 1:
                self.closed_classes = 1
            else:
                coo = pattern.tocoo()
                leaving = labels[coo.row] != labels[coo.col]
                open_components = set(labels[coo.row[leaving]])
                self.closed_classes = n_comp - len(open_components)
                if "elim" in self.reduction \
                        and self.closed_classes == 1:
                    closed_labels = set(range(n_comp)) - open_components
                    kept = np.flatnonzero(
                        np.isin(labels, list(closed_labels)))
                    if len(kept) < n_states:
                        self.kept = kept
        return self.closed_classes


def _lump_canonicalize(pnet: PackedNet, rows: np.ndarray,
                       ) -> tuple[np.ndarray, int]:
    """Fold symmetric states: sort every group's member column blocks.

    Sorting the replica blocks picks one representative per orbit of
    the full interchange group; the result of applying the implied
    permutation is itself a reachable state because every declared swap
    is a validated net automorphism.  Returns the canonical rows and
    how many were re-labelled.
    """
    rows = rows.copy()
    changed = np.zeros(len(rows), dtype=bool)
    for cols in pnet.sym_blocks:
        sub = rows[:, cols]                     # (n, members, width)
        keys = np.moveaxis(sub, 2, 0)[::-1]     # first column = primary
        order = np.lexsort(keys)                # (n, members)
        canon = np.take_along_axis(sub, order[:, :, None], axis=1)
        changed |= (canon != sub).any(axis=(1, 2))
        rows[:, cols] = canon
    return rows, int(changed.sum())


# ----------------------------------------------------------------------
# the batched builder
# ----------------------------------------------------------------------

class _Bookkeeper:
    """Accumulates per-wave branch/program records for `_EvalData`."""

    def __init__(self) -> None:
        self.b_src: list[np.ndarray] = []
        self.b_dst: list[np.ndarray] = []
        self.s_branch: list[np.ndarray] = []
        self.s_t: list[np.ndarray] = []
        self.s_cnt: list[np.ndarray] = []
        self.item_branch: list[np.ndarray] = []
        self.item_pid: list[np.ndarray] = []
        self.n_branches = 0
        self.i_dst: np.ndarray | None = None
        self.i_item_branch: np.ndarray | None = None
        self.i_item_pid: np.ndarray | None = None
        self.n_i_branches = 0
        self.prog_rows: np.ndarray | None = None

    def intern_progs(self, prog_flat: np.ndarray,
                     n_cls: int) -> np.ndarray:
        """Program ids for the build's padded factor-key rows.

        Programs stay in their padded row form — a ``-1`` key maps to
        the sentinel factor (value 1.0) at evaluation, and multiplying
        by exactly 1.0 preserves every bit of the product — so ids are
        just first-seen row ranks; no per-row Python decode.
        """
        n_items = len(prog_flat)
        if prog_flat.shape[1] == 0:
            self.prog_rows = np.zeros((min(n_items, 1), 0),
                                      dtype=np.int64)
            return np.zeros(n_items, dtype=np.int64)
        firsts, inverse = _unique_rows_first_seen(prog_flat)
        self.prog_rows = np.ascontiguousarray(prog_flat[firsts])
        return inverse


def _settle_markings(pnet: PackedNet, markings: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """Run settle rounds for a batch of markings, vectorized.

    The settle phase never reads or writes the in-flight slots (a
    delayed firing started mid-settle deposits nothing until later
    ticks), so it is a function of the marking alone — which is what
    lets :class:`_SettleMemo` run it once per distinct marking.

    Returns the quiescent ``(markings, starts, src, prog_flat)`` with
    items restored to source-major order (each source's items
    round-major within it), matching the object engine's per-state
    ``done`` enumeration.
    """
    n_p, n_t = pnet.n_places, pnet.n_transitions
    n_cls = pnet.n_cls
    work = np.ascontiguousarray(markings, dtype=np.int32).copy()
    src = np.arange(len(work), dtype=np.int64)
    starts = np.zeros((len(work), n_t + 1), dtype=np.int32)
    prog = np.zeros((len(work), 0), dtype=np.int64)
    done_work: list[np.ndarray] = []
    done_starts: list[np.ndarray] = []
    done_src: list[np.ndarray] = []
    done_prog: list[np.ndarray] = []
    rounds = 0
    while len(work):
        rounds += 1
        if rounds > MAX_IMMEDIATE_ROUNDS:
            raise AnalysisError(
                f"net {pnet.net.name!r}: settle rounds did not reach "
                f"quiescence in {MAX_IMMEDIATE_ROUNDS} rounds "
                "(unbounded zero-time loop?)")
        if n_cls == 0:
            alive = np.zeros(len(work), dtype=bool)
            enb = np.zeros((len(work), 0), dtype=np.int32)
            cnt = np.zeros((len(work), 0), dtype=np.int64)
        else:
            ok = (work[:, pnet.trip_place] >= pnet.trip_req[None, :]) \
                .astype(np.int32)
            enb = np.minimum.reduceat(ok, pnet.trip_offsets, axis=1)
            cnt = np.add.reduceat(enb, pnet.class_offsets,
                                  axis=1).astype(np.int64)
            alive = cnt.any(axis=1)
        if not alive.all():
            quiet = ~alive
            done_work.append(work[quiet])
            done_starts.append(starts[quiet, :n_t])
            done_src.append(src[quiet])
            done_prog.append(prog[quiet])
            work, starts, src, prog = (work[alive], starts[alive],
                                       src[alive], prog[alive])
            enb, cnt = enb[alive], cnt[alive]
        if not len(work):
            break

        # mixed-radix expansion of the per-class cross product:
        # class 0 is the slowest-varying digit (``_cartesian`` order)
        c1 = np.maximum(cnt, 1)
        combos = c1.prod(axis=1)
        rep = np.repeat(np.arange(len(work)), combos)
        n_items = len(rep)
        offsets = np.cumsum(combos) - combos
        rank = np.arange(n_items, dtype=np.int64) \
            - np.repeat(offsets, combos)
        rev_cp = np.cumprod(c1[:, ::-1], axis=1)
        strides = np.concatenate(
            [rev_cp[:, -2::-1],
             np.ones((len(work), 1), dtype=np.int64)], axis=1)
        digit = (rank[:, None] // strides[rep]) % c1[rep]

        # the digit-th enabled member of each class, via prefix ranks
        enb_rep = enb[rep]
        cnt_rep = cnt[rep]
        prefix = np.cumsum(enb_rep, axis=1) - enb_rep     # exclusive
        rank_in_class = prefix - prefix[:, pnet.member_class_start]
        hot = (enb_rep == 1) \
            & (rank_in_class == digit[:, pnet.class_of_member])
        chosen = np.add.reduceat(
            hot * (pnet.members_flat + 1)[None, :],
            pnet.class_offsets, axis=1) - 1
        chosen_t = np.where(chosen >= 0, chosen, n_t)

        # factor keys: (class << 48) | (enabled mask << 8) | digit
        mask = np.add.reduceat(enb_rep * pnet.member_bit[None, :],
                               pnet.class_offsets, axis=1)
        keys = np.where(cnt_rep > 0,
                        (pnet.cls_ids64[None, :] << 48)
                        | (mask << 8) | digit,
                        np.int64(-1))

        # apply every class's choice: inputs out, immediate outputs in
        # (delayed outputs wait for completion in later ticks); record
        # the started firings — the sentinel row of in_mat/out_imm and
        # the scratch starts column swallow inactive classes
        work = work[rep]
        work += pnet.settle_delta[chosen_t, :].sum(axis=1,
                                                   dtype=np.int32)
        starts = starts[rep]
        # one fancy-index add per class: a class chooses at most one
        # transition per item, so indices are duplicate-free per row
        # (inactive classes hit the scratch sentinel column)
        rows_idx = np.arange(n_items)
        for c in range(chosen_t.shape[1]):
            starts[rows_idx, chosen_t[:, c]] += 1
        prog = np.concatenate([prog[rep], keys], axis=1)
        src = src[rep]

    total_width = max((p.shape[1] for p in done_prog), default=0)
    d_prog = np.concatenate([
        np.pad(p, ((0, 0), (0, total_width - p.shape[1])),
               constant_values=-1) for p in done_prog]) \
        if done_prog else np.zeros((0, 0), dtype=np.int64)
    d_work = np.concatenate(done_work) if done_work \
        else np.zeros((0, n_p), dtype=np.int32)
    d_starts = np.concatenate(done_starts) if done_starts \
        else np.zeros((0, n_t), dtype=np.int32)
    d_src = np.concatenate(done_src) if done_src \
        else np.zeros(0, dtype=np.int64)
    # back to source-major order (stable: keeps round-major within a
    # source), matching the object engine's per-state done list
    order = np.argsort(d_src, kind="stable")
    return d_work[order], d_starts[order], d_src[order], d_prog[order]


class _SettleMemo:
    """Settle-once cache: post-advance marking -> quiescent outcomes.

    The reachable set distinguishes states by marking *and* in-flight
    slots, but the settle outcome is a function of the marking alone —
    typically orders of magnitude fewer distinct values.  Each new
    marking is settled once (batched with the wave's other new
    markings) and its done items appended to flat result arrays;
    ``lookup`` returns per-marking ``[lo, hi)`` windows into them.
    """

    def __init__(self, pnet: PackedNet, books: "_Bookkeeper"):
        self._pnet = pnet
        self._books = books
        self._mark_ids = _Interner(pnet.n_places)
        self._starts_ids = _Interner(pnet.n_transitions)
        self._prog_batches: list[np.ndarray] = []
        self._n_items = 0
        n_p, n_t = pnet.n_places, pnet.n_transitions
        self.marks = np.zeros((0, n_p), dtype=np.int32)
        self.starts = np.zeros((0, n_t), dtype=np.int32)
        self.pids: np.ndarray | None = None
        #: content id of each item's starts row — equal id iff equal
        #: start counts, which lets branch dedup key on a scalar
        self.sids = np.zeros(0, dtype=np.int64)
        self._lo = np.zeros(0, dtype=np.int64)
        self._hi = np.zeros(0, dtype=np.int64)

    def lookup(self, markings: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray]:
        known = self._mark_ids.n
        mids = self._mark_ids.intern(markings)
        n_new = self._mark_ids.n - known
        if n_new:
            # the interner appended the unseen markings in first-seen
            # order; settle exactly that batch
            d_mark, d_starts, d_src, d_prog = _settle_markings(
                self._pnet, self._mark_ids.rows_from(known))
            self._prog_batches.append(d_prog)
            sids = self._starts_ids.intern(d_starts)
            base = self._n_items
            counts = np.bincount(d_src, minlength=n_new)
            ends = base + np.cumsum(counts)
            self._lo = np.concatenate([self._lo, ends - counts])
            self._hi = np.concatenate([self._hi, ends])
            self.marks = np.concatenate([self.marks, d_mark])
            self.starts = np.concatenate([self.starts, d_starts])
            self.sids = np.concatenate([self.sids, sids])
            self._n_items = int(ends[-1]) if len(ends) else base
        return self._lo[mids], self._hi[mids]

    def finalize_pids(self) -> np.ndarray:
        """Intern every batch's factor-key rows in one call.

        Deferred to the end of the build: program ids are only *read*
        once the wave loop is done, and a single padded batch amortizes
        the row-dedup/decode overhead.  Batch concatenation preserves
        item order, so ids are assigned in exactly the order the
        incremental per-batch interning would have used.
        """
        if self.pids is None:
            n_cols = max((b.shape[1] for b in self._prog_batches),
                         default=0)
            batches = [
                b if b.shape[1] == n_cols else
                np.pad(b, ((0, 0), (0, n_cols - b.shape[1])),
                       constant_values=-1)
                for b in self._prog_batches]
            rows = np.concatenate(batches) if batches \
                else np.zeros((0, 0), dtype=np.int64)
            self.pids = self._books.intern_progs(rows, self._pnet.n_cls)
        return self.pids


def _unique_scalars_first_seen(key: np.ndarray,
                               ) -> tuple[np.ndarray, np.ndarray]:
    """Scalar-key counterpart of :func:`_unique_rows_first_seen`."""
    _, first, inverse = np.unique(key, return_index=True,
                                  return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(first), dtype=np.int64)
    rank[order] = np.arange(len(first))
    return first[order], rank[inverse]


def _dedup_branches(dst: np.ndarray, src: np.ndarray,
                    sids: np.ndarray,
                    ) -> tuple[np.ndarray, np.ndarray]:
    """First-seen branch dedup by ``(src, successor, starts)``.

    The object engine merges settle outcomes with identical successor
    *and* start counts before accumulating rows; replicating the merge
    (and its order) keeps every downstream float identical.  The
    starts row is represented by the memo's content id (*sids* —
    equal id iff equal counts), so the usual case dedups on one
    injective int64 key per item.
    """
    if not len(src):
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    m_dst = int(dst.max()) + 1
    m_sid = int(sids.max()) + 1
    if (int(src.max()) + 1) * m_dst * m_sid < (1 << 62):
        return _unique_scalars_first_seen(
            (src * m_dst + dst) * m_sid + sids)
    return _unique_rows_first_seen(
        np.stack([src, dst, sids], axis=1))


def packed_build(net: Net, pnet: PackedNet | None = None, *,
                 max_states: int, structure: str = "",
                 reduction: str = "none",
                 ) -> tuple["object", PackedSkeleton]:
    """Breadth-first build of the embedded chain, a wave at a time.

    Returns ``(graph, skeleton)``; the graph is bit-identical to the
    object engine's (reduction off), the skeleton re-times under new
    static frequencies via :func:`packed_retime`.
    """
    if pnet is None:
        pnet = compile_packed(net, reduction)
        if pnet is None:
            raise AnalysisError(
                f"net {net.name!r} does not compile for the packed "
                "engine (state-dependent attributes?)")
    net.validate()
    n_p, n_t = pnet.n_places, pnet.n_transitions
    width = pnet.layout.width
    lumping = bool(pnet.sym_blocks)
    interner = _Interner(width)
    books = _Bookkeeper()
    folded_states = 0

    def intern_successors(rows: np.ndarray, explored: int) -> np.ndarray:
        nonlocal folded_states
        if lumping:
            rows, changed = _lump_canonicalize(pnet, rows)
            folded_states += changed
            if changed:
                obs.add("gtpn.lumped", changed)
        ids = interner.intern(rows)
        if interner.n > max_states:
            raise StateSpaceLimitError(net.name, interner.n,
                                       interner.n - explored, max_states)
        return ids

    memo = _SettleMemo(pnet, books)

    def expand(adv: np.ndarray, explored: int,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Settle a batch of *distinct* advanced rows through the memo.

        *adv* holds post-advance full-width rows; the memo settles
        each distinct marking once.  A successor's packed row is fully
        determined by the (settle item, source slots) pair — item
        marking plus the source's in-flight slots plus the deposits of
        delayed firings started during the settle — so only one
        representative row per distinct pair is materialized and
        interned; every other item maps through the pair key.
        Returns ``(dst, rep, gidx)`` in row-major, round-major item
        order, *rep* indexing into *adv*.
        """
        lo, hi = memo.lookup(adv[:, :n_p])
        k = hi - lo
        total = int(k.sum())
        rep = np.repeat(np.arange(len(adv)), k)
        offsets = np.cumsum(k) - k
        gidx = lo[rep] + np.arange(total, dtype=np.int64) \
            - offsets[rep]
        _, slot_inv = _unique_rows_first_seen(adv[:, n_p:])
        pfirst, pinv = _unique_scalars_first_seen(
            gidx * np.int64(len(adv) + 1) + slot_inv[rep])
        rows = adv[rep[pfirst]]
        g_rep = gidx[pfirst]
        rows[:, :n_p] = memo.marks[g_rep]
        # a delayed firing started mid-settle lands in slot (t, delay)
        rows[:, pnet.dep_cols] += \
            memo.starts[g_rep[:, None], pnet.dep_ts[None, :]]
        return intern_successors(rows, explored)[pinv], rep, gidx

    def expand_wave(adv: np.ndarray, base: int, explored: int,
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand a wave, deduping identical advanced rows first.

        Distinct states frequently advance to the same full row (the
        completions deposit erases where the tokens came from); every
        such group shares its entire expansion.  Replicating the
        deduped item streams back per source preserves the object
        engine's source-major enumeration — and its successor
        first-seen order, because the distinct rows are ranked by
        their first source, so a successor's first appearance comes at
        the same source either way.
        """
        a_first, a_inv = _unique_rows_first_seen(adv)
        if len(a_first) == len(adv):
            dst, rep, gidx = expand(adv, explored)
            return dst, base + rep, gidx
        dst_u, rep_u, gidx_u = expand(
            np.ascontiguousarray(adv[a_first]), explored)
        ku = np.bincount(rep_u, minlength=len(a_first))
        u_off = np.cumsum(ku) - ku
        counts = ku[a_inv]
        rep_s = np.repeat(np.arange(len(adv)), counts)
        s_off = np.cumsum(counts) - counts
        idx = u_off[a_inv[rep_s]] \
            + np.arange(len(rep_s), dtype=np.int64) - s_off[rep_s]
        return dst_u[idx], base + rep_s, gidx_u[idx]

    # initial settle: the pseudo-source feeding the time-zero
    # distribution (no starts are recorded, matching the object build)
    init_adv = np.zeros((1, width), dtype=np.int32)
    init_adv[0, :n_p] = net.initial_marking
    dst, src, gidx = expand_wave(init_adv, 0, 0)
    firsts, item_branch = _dedup_branches(dst, src, memo.sids[gidx])
    books.i_dst = dst[firsts]
    books.i_item_branch = item_branch
    i_gidx = gidx
    books.n_i_branches = len(firsts)
    wave_gidx: list[np.ndarray] = []

    explored = 0
    while explored < interner.n:
        hi = min(interner.n, explored + WAVE_CHUNK)
        wave = interner._table[explored:hi]
        n_src = hi - explored
        obs.add("gtpn.frontier", n_src)
        # advance: deposit completions, count down the rest
        adv = np.zeros((n_src, width), dtype=np.int32)
        adv[:, :n_p] = wave[:, :n_p] \
            + wave[:, pnet.complete_cols] @ pnet.complete_out
        adv[:, pnet.shift_dst] = wave[:, pnet.shift_src]
        dst, src, gidx = expand_wave(adv, explored, hi)
        explored = hi
        firsts, item_branch = _dedup_branches(dst, src,
                                              memo.sids[gidx])
        b_starts = memo.starts[gidx[firsts]]
        s_b, s_t = np.nonzero(b_starts)
        books.b_src.append(src[firsts])
        books.b_dst.append(dst[firsts])
        books.s_branch.append(s_b + books.n_branches)
        books.s_t.append(s_t)
        books.s_cnt.append(b_starts[s_b, s_t].astype(np.int64))
        books.item_branch.append(item_branch + books.n_branches)
        wave_gidx.append(gidx)
        books.n_branches += len(firsts)
    pids = memo.finalize_pids()
    books.i_item_pid = pids[i_gidx]
    books.item_pid = [pids[g] for g in wave_gidx]
    skeleton = _finalize_skeleton(net, pnet, interner, books,
                                  structure, reduction)
    skeleton.folded_states = folded_states
    graph = _materialize(skeleton, net, pnet.freqs)
    return graph, skeleton


def _finalize_skeleton(net: Net, pnet: PackedNet, interner: _Interner,
                       books: _Bookkeeper, structure: str,
                       reduction: str) -> PackedSkeleton:
    n_states, n_t = interner.n, pnet.n_transitions

    # factor table straight from the padded program rows: a row-major
    # scan skipping -1 visits keys in exactly the order the canonical
    # per-round walk would, so first-seen factor ids are unchanged
    rows = books.prog_rows if books.prog_rows is not None \
        else np.zeros((0, 0), dtype=np.int64)
    flat = rows.reshape(-1)
    real = flat != -1
    keys = flat[real]
    if len(keys):
        kfirsts, kinv = _unique_scalars_first_seen(keys)
        ukeys = keys[kfirsts].tolist()
    else:
        kinv = np.zeros(0, dtype=np.int64)
        ukeys = []
    n_factors = len(ukeys)
    f_chosen = np.zeros(n_factors, dtype=np.int64)
    members_len = 0
    decoded = []
    for key in ukeys:
        ci = key >> 48
        mask = (key >> 8) & ((1 << MAX_CLASS_MEMBERS) - 1)
        digit = key & 0xff
        members = pnet.classes[pnet.cls_index.index(ci)]
        enabled = [m for k, m in enumerate(members) if (mask >> k) & 1]
        f_chosen[len(decoded)] = enabled[digit]
        decoded.append(enabled)
        members_len = max(members_len, len(enabled))
    f_members = np.full((n_factors, max(members_len, 1)), n_t,
                        dtype=np.int64)
    for fid, enabled in enumerate(decoded):
        f_members[fid, :len(enabled)] = enabled

    # padded -1 keys become the sentinel factor (1.0): multiplying by
    # exactly 1.0 is bit-exact, so no per-round compaction is needed
    fid_flat = np.full(len(flat), n_factors, dtype=np.int64)
    fid_flat[real] = kinv
    n_cols = rows.shape[1]
    n_cls = max(pnet.n_cls, 1)
    if n_cols:
        prog_fids = fid_flat.reshape(len(rows), n_cols // n_cls, n_cls)
    else:
        prog_fids = np.full((len(rows), 1, 1), n_factors,
                            dtype=np.int64)

    b_src = np.concatenate(books.b_src) if books.b_src \
        else np.zeros(0, dtype=np.int64)
    b_dst = np.concatenate(books.b_dst) if books.b_dst \
        else np.zeros(0, dtype=np.int64)
    # entry ids sorted by (src, dst) give the CSR pattern directly;
    # branch streams are already source-major so `inverse` respects
    # the object engine's per-row accumulation order
    ekey = b_src * np.int64(n_states + 1) + b_dst
    entries, b_entry = np.unique(ekey, return_inverse=True)
    e_src = entries // (n_states + 1)
    indices = (entries % (n_states + 1)).astype(np.int64)
    indptr = np.cumsum(np.bincount(e_src + 1,
                                   minlength=n_states + 1)
                       .astype(np.int64))

    ev = _EvalData(
        f_chosen=f_chosen, f_members=f_members, prog_fids=prog_fids,
        item_pid=np.concatenate(books.item_pid) if books.item_pid
        else np.zeros(0, dtype=np.int64),
        item_branch=np.concatenate(books.item_branch)
        if books.item_branch else np.zeros(0, dtype=np.int64),
        n_branches=books.n_branches,
        b_src=b_src, b_entry=b_entry,
        s_branch=np.concatenate(books.s_branch) if books.s_branch
        else np.zeros(0, dtype=np.int64),
        s_t=np.concatenate(books.s_t) if books.s_t
        else np.zeros(0, dtype=np.int64),
        s_cnt=np.concatenate(books.s_cnt) if books.s_cnt
        else np.zeros(0, dtype=np.int64),
        i_item_pid=books.i_item_pid, i_item_branch=books.i_item_branch,
        n_i_branches=books.n_i_branches, i_dst=books.i_dst)

    table = interner.table()
    inflight_matrix = table[:, pnet.n_places:].astype(float) \
        @ pnet.slot_to_t

    place_orbits: tuple = ()
    transition_orbits: tuple = ()
    if pnet.sym_blocks:
        place_orbits = tuple(
            orbit for g in net.symmetries for orbit in g.place_orbits())
        transition_orbits = tuple(
            orbit for g in net.symmetries
            for orbit in g.transition_orbits())

    skeleton = PackedSkeleton(
        structure=structure, kind=f"packed:{reduction}",
        n_places=pnet.n_places, n_transitions=n_t,
        static_delays=tuple(int(d) for d in pnet.delays),
        freq_positive=tuple(bool(f > 0) for f in pnet.freqs),
        layout=pnet.layout, table=table, indptr=indptr,
        indices=indices, ev=ev, inflight_matrix=inflight_matrix,
        closed_classes=None, kept=None, reduction=reduction,
        lumped=bool(pnet.sym_blocks), place_orbits=place_orbits,
        transition_orbits=transition_orbits, folded_states=0)
    return skeleton


def _materialize(skeleton: PackedSkeleton, net: Net,
                 freqs: np.ndarray):
    """Evaluate probabilities on a skeleton and assemble the graph."""
    from repro.gtpn.reachability import (ReachabilityGraph,
                                         ReductionInfo)
    n_states = skeleton.full_state_count
    n_t = skeleton.n_transitions
    data, starts_matrix, init_vec = _evaluate(
        skeleton.ev, freqs, n_states, n_t, len(skeleton.indices))
    matrix = sp.csr_matrix((data, skeleton.indices, skeleton.indptr),
                           shape=(n_states, n_states), copy=False)
    _check_stochastic_csr(net, matrix)

    table = skeleton.table
    inflight_matrix = skeleton.inflight_matrix
    transient_removed = 0
    if "elim" in skeleton.reduction:
        skeleton.closed_class_count()   # may populate the elim slice
    if skeleton.kept is not None:
        kept = skeleton.kept
        transient_removed = n_states - len(kept)
        # rows of the closed class have no leaving probability mass,
        # so the sliced rows still sum to one exactly
        matrix = matrix[kept][:, kept]
        starts_matrix = starts_matrix[kept]
        table = table[kept]
        inflight_matrix = inflight_matrix[kept]
        init_kept = init_vec[kept]
        mass = init_kept.sum()
        init_vec = init_kept / mass if mass > 0 else \
            np.full(len(kept), 1.0 / len(kept))

    reduction = None
    if skeleton.reduction != "none":
        reduction = ReductionInfo(
            requested=skeleton.reduction, lumped=skeleton.lumped,
            place_orbits=skeleton.place_orbits,
            transition_orbits=skeleton.transition_orbits,
            folded_states=skeleton.folded_states,
            pre_elim_states=n_states,
            transient_removed=transient_removed)
    return ReachabilityGraph(
        net=net, matrix=matrix, starts_matrix=starts_matrix,
        init_vec=init_vec, inflight_matrix=inflight_matrix,
        packed_table=table, packed_layout=skeleton.layout,
        reduction=reduction)


def packed_retime(skeleton: PackedSkeleton, net: Net, *,
                  max_states: int):
    """Re-evaluate a packed skeleton under *net*'s static timings.

    Bit-identical to a fresh :func:`packed_build` of *net* (both end in
    the same :func:`_evaluate` over the same arrays).  Raises
    :class:`SkeletonMismatch` when the skeleton does not apply; the
    caller falls back to a full build.
    """
    if (len(net.places) != skeleton.n_places
            or len(net.transitions) != skeleton.n_transitions):
        raise SkeletonMismatch("net shape differs")
    if skeleton.full_state_count > max_states:
        raise SkeletonMismatch("skeleton exceeds max_states")
    net.validate()
    for t in net.transitions:
        if callable(t.delay) or callable(t.frequency):
            raise SkeletonMismatch("attributes became state-dependent")
    delays = tuple(int(t.delay) for t in net.transitions)
    if delays != skeleton.static_delays:
        raise SkeletonMismatch("static delays differ")
    freqs = np.array([float(t.frequency) for t in net.transitions])
    if (freqs < 0).any():
        raise SkeletonMismatch("negative frequency")
    if tuple(bool(f > 0) for f in freqs) != skeleton.freq_positive:
        raise SkeletonMismatch("frequency support changed")
    return _materialize(skeleton, net, freqs)


def _check_stochastic_csr(net: Net, matrix: sp.csr_matrix) -> None:
    """CSR analogue of ``reachability._check_stochastic``."""
    empty = np.flatnonzero(np.diff(matrix.indptr) == 0)
    if len(empty):
        raise AnalysisError(
            f"net {net.name!r}: state {int(empty[0])} is absorbing "
            "with no successors; the embedded chain is not well formed")
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    bad = np.flatnonzero(np.abs(sums - 1.0) > 1e-9)
    if len(bad):
        i = int(bad[0])
        raise AnalysisError(
            f"net {net.name!r}: outgoing probabilities of state {i} "
            f"sum to {sums[i]!r}, expected 1.0")
