"""Exact GTPN analysis: resource usage and firing rates.

This is the Python counterpart of the GTPN analyzer used in chapter 6:
it builds the reachable states, solves the embedded Markov process and
returns exact steady-state estimates of resource usage.

The two output measures are:

* ``resource_usage(name)`` — the mean number of concurrent in-flight
  firings of transitions tagged with resource *name* ("the mean number
  of usages (over time) of each resource in steady state").  For a
  delay-1 transition this equals its firing rate per tick, which is how
  the models read off message throughput (resource ``lambda``).
* ``firing_rate(transition)`` — expected firing starts per tick, which
  is defined for immediate transitions as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import obs
from repro.gtpn.markov import stationary_distribution
from repro.gtpn.net import Net
from repro.gtpn.reachability import (DEFAULT_MAX_STATES, ReachabilityGraph,
                                     build_reachability_graph)
from repro.perf.cache import (AnalysisCache, cache_enabled,
                              fingerprint_net, get_cache)


@dataclass
class AnalysisResult:
    """Steady-state estimates for one GTPN."""

    net: Net
    graph: ReachabilityGraph
    pi: np.ndarray

    @property
    def state_count(self) -> int:
        return self.graph.state_count

    @cached_property
    def _mean_inflight(self) -> np.ndarray:
        """Per-transition mean number of concurrent in-flight firings.

        Object-walk graphs sum state by state (not as pi @ matrix):
        that accumulation order is part of the reproducibility contract
        for the committed baselines — a BLAS reduction shifts the last
        bits.  Packed graphs use the vector product (deterministic per
        build, and both build and retime go through it, so sweep
        bit-identity holds); lumped graphs then average each declared
        transition orbit, which recovers the exact per-member value
        because canonicalization only permutes members within a state.
        """
        if self.graph.is_packed:
            total = self.pi @ self.graph.inflight_matrix
        else:
            total = np.zeros(len(self.net.transitions))
            for i, weight in enumerate(self.pi):
                if weight > 0:
                    total += weight * self.graph.inflight_counts[i]
        return self._fold_orbits(total, places=False)

    @cached_property
    def _mean_starts(self) -> np.ndarray:
        """Per-transition expected firing starts per tick."""
        if self.graph.is_packed:
            total = self.pi @ self.graph.starts_matrix
        else:
            total = np.zeros(len(self.net.transitions))
            for i, weight in enumerate(self.pi):
                if weight > 0:
                    total += weight * self.graph.expected_starts[i]
        return self._fold_orbits(total, places=False)

    def _fold_orbits(self, vec: np.ndarray, *, places: bool) -> np.ndarray:
        """Average *vec* over each symmetry orbit of a lumped graph.

        Lumping preserves orbit sums exactly but scrambles which member
        carries which share; the members are interchangeable, so the
        orbit mean is each member's exact steady-state value.
        """
        info = self.graph.reduction
        if info is None or not info.lumped:
            return vec
        orbits = info.place_orbits if places else info.transition_orbits
        out = vec.copy()
        for orbit in orbits:
            total = 0.0
            for idx in orbit:
                total += vec[idx]
            out[list(orbit)] = total / len(orbit)
        return out

    def resource_usage(self, resource: str) -> float:
        """Mean steady-state usage of *resource* (see module docstring)."""
        usage = 0.0
        for t in self.net.transitions:
            if resource in t.all_resources:
                usage += self._mean_inflight[t.index]
                if t.immediate:
                    # immediate firings take zero time; count their rate
                    usage += self._mean_starts[t.index]
        return float(usage)

    def firing_rate(self, transition: str) -> float:
        """Expected firing starts of *transition* per tick."""
        return float(self._mean_starts[self.net.transition_index(transition)])

    @cached_property
    def _mean_marking(self) -> np.ndarray:
        """Per-place mean token count (packed graphs only)."""
        n_places = self.graph.packed_layout.n_places
        marking = self.graph.packed_table[:, :n_places].astype(float)
        return self._fold_orbits(self.pi @ marking, places=True)

    def mean_tokens(self, place: str) -> float:
        """Steady-state mean number of tokens in *place*."""
        index = self.net.place_index(place)
        if self.graph.is_packed:
            return float(self._mean_marking[index])
        return float(sum(weight * self.graph.states[i].marking[index]
                         for i, weight in enumerate(self.pi) if weight > 0))

    def throughput(self, resource: str = "lambda") -> float:
        """Alias for :meth:`resource_usage` on the conventional name."""
        return self.resource_usage(resource)

    def busy_fraction(self, place: str) -> float:
        """Steady-state busy fraction of the resource pool *place*.

        The architecture nets model a processor as a place whose
        initial tokens are its servers; an activity holding the place
        removes the token for its whole duration, so the mean token
        deficit over the initial population is exactly the processor's
        utilization — directly comparable to the kernel simulator's
        per-processor busy fractions.
        """
        from repro.errors import AnalysisError
        index = self.net.place_index(place)
        tokens = self.net.places[index].initial_tokens
        if tokens <= 0:
            raise AnalysisError(
                f"place {place!r} holds no initial tokens; busy "
                "fraction is only defined for resource pools")
        return 1.0 - self.mean_tokens(place) / tokens


def analyze(net: Net, *, method: str = "auto",
            max_states: int = DEFAULT_MAX_STATES,
            cache: AnalysisCache | None = None,
            reduction: str | None = None) -> AnalysisResult:
    """Build the reachability graph of *net* and solve it exactly.

    Solves are memoized through the content-addressed analysis cache
    (:mod:`repro.perf.cache`) under the split ``(structure, timing,
    method, reduction)`` key: a full hit returns the stored graph and
    stationary vector re-bound to *net*, skipping both state-space
    exploration and the Markov solve, while a structure-only hit
    re-times the cached reachability skeleton (:mod:`repro.gtpn.sweep`)
    and re-solves just the linear system — bit-identical to a
    from-scratch build.  Pass ``cache`` to use a private store; the
    global cache honours ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` and
    the CLI flags.  Cached payloads are shared — treat results as
    read-only.

    ``reduction`` selects opt-in state-space reduction (``"lump"``,
    ``"elim"``, ``"lump+elim"``); ``None`` resolves the configured mode
    (CLI ``--reduction`` > ``REPRO_REDUCTION`` > ``"none"``).  The
    default exact path is untouched: with ``"none"`` the packed and
    object engines produce bit-identical graphs.
    """
    from repro import config
    if reduction is None:
        reduction = config.reduction()
    else:
        reduction = config.normalize_reduction(reduction)
    with obs.span("gtpn.analyze", net=net.name, method=method) as root:
        store = cache if cache is not None else (
            get_cache() if cache_enabled() else None)
        key = None
        closed = None
        if store is not None:
            fingerprint = fingerprint_net(net)
            if fingerprint is not None:
                key = (fingerprint.structure, fingerprint.timing,
                       method, reduction)
                payload = store.get(key)
                if payload is not None:
                    net.validate()      # keep error behaviour of a solve
                    root.set(outcome="cache-hit")
                    return _rebind(net, payload)
        if key is not None:
            # share the reachability build across every net with this
            # structure (sweeps re-time the cached skeleton; a timing
            # change that alters branch resolution rebuilds)
            from repro.gtpn.sweep import acquire_graph
            with obs.span("gtpn.build"):
                graph, closed = acquire_graph(net, fingerprint.structure,
                                              max_states, store,
                                              reduction=reduction)
        else:
            with obs.span("gtpn.build"):
                graph = build_reachability_graph(net,
                                                 max_states=max_states,
                                                 reduction=reduction)
        with obs.span("gtpn.solve", states=graph.state_count):
            pi = stationary_distribution(graph, method=method,
                                         closed_classes=closed)
        result = AnalysisResult(net=net, graph=graph, pi=pi)
        if key is not None:
            store.put(key, _payload(result))
        root.set(outcome="solved", states=graph.state_count)
        return result


def _payload(result: AnalysisResult) -> dict:
    """Cacheable view of a result: everything except the net binding.

    Names live only on the net, so a payload computed for one net
    re-binds cleanly to any net with the same fingerprint.  Packed
    graphs cache their array form (CSR matrix, packed state table);
    object-walk graphs keep the historical dict form, so existing
    on-disk cache entries stay readable.
    """
    graph = result.graph
    if graph.is_packed:
        return {
            "packed": True,
            "matrix": graph.matrix,
            "starts_matrix": graph.starts_matrix,
            "init_vec": graph.init_vec,
            "inflight_matrix": graph.inflight_matrix,
            "table": graph.packed_table,
            "layout": graph.packed_layout,
            "reduction": graph.reduction,
            "pi": result.pi,
        }
    return {
        "states": graph.states,
        "probabilities": graph.probabilities,
        "initial": graph.initial,
        "expected_starts": graph.expected_starts,
        "inflight_counts": graph.inflight_counts,
        "pi": result.pi,
    }


def _rebind(net: Net, payload: dict) -> AnalysisResult:
    if payload.get("packed"):
        graph = ReachabilityGraph(
            net=net,
            matrix=payload["matrix"],
            starts_matrix=payload["starts_matrix"],
            init_vec=payload["init_vec"],
            inflight_matrix=payload["inflight_matrix"],
            packed_table=payload["table"],
            packed_layout=payload["layout"],
            reduction=payload["reduction"])
    else:
        graph = ReachabilityGraph(
            net=net,
            states=payload["states"],
            probabilities=payload["probabilities"],
            initial=payload["initial"],
            expected_starts=payload["expected_starts"],
            inflight_counts=payload["inflight_counts"])
    return AnalysisResult(net=net, graph=graph, pi=payload["pi"])
