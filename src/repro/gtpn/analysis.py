"""Exact GTPN analysis: resource usage and firing rates.

This is the Python counterpart of the GTPN analyzer used in chapter 6:
it builds the reachable states, solves the embedded Markov process and
returns exact steady-state estimates of resource usage.

The two output measures are:

* ``resource_usage(name)`` — the mean number of concurrent in-flight
  firings of transitions tagged with resource *name* ("the mean number
  of usages (over time) of each resource in steady state").  For a
  delay-1 transition this equals its firing rate per tick, which is how
  the models read off message throughput (resource ``lambda``).
* ``firing_rate(transition)`` — expected firing starts per tick, which
  is defined for immediate transitions as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.gtpn.markov import stationary_distribution
from repro.gtpn.net import Net
from repro.gtpn.reachability import (DEFAULT_MAX_STATES, ReachabilityGraph,
                                     build_reachability_graph)


@dataclass
class AnalysisResult:
    """Steady-state estimates for one GTPN."""

    net: Net
    graph: ReachabilityGraph
    pi: np.ndarray

    @property
    def state_count(self) -> int:
        return self.graph.state_count

    @cached_property
    def _mean_inflight(self) -> np.ndarray:
        """Per-transition mean number of concurrent in-flight firings."""
        total = np.zeros(len(self.net.transitions))
        for i, weight in enumerate(self.pi):
            if weight > 0:
                total += weight * self.graph.inflight_counts[i]
        return total

    @cached_property
    def _mean_starts(self) -> np.ndarray:
        """Per-transition expected firing starts per tick."""
        total = np.zeros(len(self.net.transitions))
        for i, weight in enumerate(self.pi):
            if weight > 0:
                total += weight * self.graph.expected_starts[i]
        return total

    def resource_usage(self, resource: str) -> float:
        """Mean steady-state usage of *resource* (see module docstring)."""
        usage = 0.0
        for t in self.net.transitions:
            if resource in t.all_resources:
                usage += self._mean_inflight[t.index]
                if t.immediate:
                    # immediate firings take zero time; count their rate
                    usage += self._mean_starts[t.index]
        return float(usage)

    def firing_rate(self, transition: str) -> float:
        """Expected firing starts of *transition* per tick."""
        return float(self._mean_starts[self.net.transition_index(transition)])

    def mean_tokens(self, place: str) -> float:
        """Steady-state mean number of tokens in *place*."""
        index = self.net.place_index(place)
        return float(sum(weight * self.graph.states[i].marking[index]
                         for i, weight in enumerate(self.pi) if weight > 0))

    def throughput(self, resource: str = "lambda") -> float:
        """Alias for :meth:`resource_usage` on the conventional name."""
        return self.resource_usage(resource)


def analyze(net: Net, *, method: str = "auto",
            max_states: int = DEFAULT_MAX_STATES) -> AnalysisResult:
    """Build the reachability graph of *net* and solve it exactly."""
    graph = build_reachability_graph(net, max_states=max_states)
    pi = stationary_distribution(graph, method=method)
    return AnalysisResult(net=net, graph=graph, pi=pi)
