"""Exact GTPN analysis: resource usage and firing rates.

This is the Python counterpart of the GTPN analyzer used in chapter 6:
it builds the reachable states, solves the embedded Markov process and
returns exact steady-state estimates of resource usage.

The two output measures are:

* ``resource_usage(name)`` — the mean number of concurrent in-flight
  firings of transitions tagged with resource *name* ("the mean number
  of usages (over time) of each resource in steady state").  For a
  delay-1 transition this equals its firing rate per tick, which is how
  the models read off message throughput (resource ``lambda``).
* ``firing_rate(transition)`` — expected firing starts per tick, which
  is defined for immediate transitions as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import obs
from repro.gtpn.markov import stationary_distribution
from repro.gtpn.net import Net
from repro.gtpn.reachability import (DEFAULT_MAX_STATES, ReachabilityGraph,
                                     build_reachability_graph)
from repro.perf.cache import (AnalysisCache, cache_enabled,
                              fingerprint_net, get_cache)


@dataclass
class AnalysisResult:
    """Steady-state estimates for one GTPN."""

    net: Net
    graph: ReachabilityGraph
    pi: np.ndarray

    @property
    def state_count(self) -> int:
        return self.graph.state_count

    @cached_property
    def _mean_inflight(self) -> np.ndarray:
        """Per-transition mean number of concurrent in-flight firings.

        Summed state by state (not as pi @ matrix): the accumulation
        order is part of the reproducibility contract — a BLAS
        reduction shifts the last bits, and solved figures promise
        bit-identical values at any job count and cache state.
        """
        total = np.zeros(len(self.net.transitions))
        for i, weight in enumerate(self.pi):
            if weight > 0:
                total += weight * self.graph.inflight_counts[i]
        return total

    @cached_property
    def _mean_starts(self) -> np.ndarray:
        """Per-transition expected firing starts per tick."""
        total = np.zeros(len(self.net.transitions))
        for i, weight in enumerate(self.pi):
            if weight > 0:
                total += weight * self.graph.expected_starts[i]
        return total

    def resource_usage(self, resource: str) -> float:
        """Mean steady-state usage of *resource* (see module docstring)."""
        usage = 0.0
        for t in self.net.transitions:
            if resource in t.all_resources:
                usage += self._mean_inflight[t.index]
                if t.immediate:
                    # immediate firings take zero time; count their rate
                    usage += self._mean_starts[t.index]
        return float(usage)

    def firing_rate(self, transition: str) -> float:
        """Expected firing starts of *transition* per tick."""
        return float(self._mean_starts[self.net.transition_index(transition)])

    def mean_tokens(self, place: str) -> float:
        """Steady-state mean number of tokens in *place*."""
        index = self.net.place_index(place)
        return float(sum(weight * self.graph.states[i].marking[index]
                         for i, weight in enumerate(self.pi) if weight > 0))

    def throughput(self, resource: str = "lambda") -> float:
        """Alias for :meth:`resource_usage` on the conventional name."""
        return self.resource_usage(resource)

    def busy_fraction(self, place: str) -> float:
        """Steady-state busy fraction of the resource pool *place*.

        The architecture nets model a processor as a place whose
        initial tokens are its servers; an activity holding the place
        removes the token for its whole duration, so the mean token
        deficit over the initial population is exactly the processor's
        utilization — directly comparable to the kernel simulator's
        per-processor busy fractions.
        """
        from repro.errors import AnalysisError
        index = self.net.place_index(place)
        tokens = self.net.places[index].initial_tokens
        if tokens <= 0:
            raise AnalysisError(
                f"place {place!r} holds no initial tokens; busy "
                "fraction is only defined for resource pools")
        return 1.0 - self.mean_tokens(place) / tokens


def analyze(net: Net, *, method: str = "auto",
            max_states: int = DEFAULT_MAX_STATES,
            cache: AnalysisCache | None = None) -> AnalysisResult:
    """Build the reachability graph of *net* and solve it exactly.

    Solves are memoized through the content-addressed analysis cache
    (:mod:`repro.perf.cache`) under the split ``(structure, timing,
    method)`` key: a full hit returns the stored graph and stationary
    vector re-bound to *net*, skipping both state-space exploration and
    the Markov solve, while a structure-only hit re-times the cached
    reachability skeleton (:mod:`repro.gtpn.sweep`) and re-solves just
    the linear system — bit-identical to a from-scratch build.  Pass
    ``cache`` to use a private store; the global cache honours
    ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` and the CLI flags.
    Cached payloads are shared — treat results as read-only.
    """
    with obs.span("gtpn.analyze", net=net.name, method=method) as root:
        store = cache if cache is not None else (
            get_cache() if cache_enabled() else None)
        key = None
        closed = None
        if store is not None:
            fingerprint = fingerprint_net(net)
            if fingerprint is not None:
                key = (fingerprint.structure, fingerprint.timing, method)
                payload = store.get(key)
                if payload is not None:
                    net.validate()      # keep error behaviour of a solve
                    root.set(outcome="cache-hit")
                    return _rebind(net, payload)
        if key is not None:
            # share the reachability build across every net with this
            # structure (sweeps re-time the cached skeleton; a timing
            # change that alters branch resolution rebuilds)
            from repro.gtpn.sweep import acquire_graph
            with obs.span("gtpn.build"):
                graph, closed = acquire_graph(net, fingerprint.structure,
                                              max_states, store)
        else:
            with obs.span("gtpn.build"):
                graph = build_reachability_graph(net,
                                                 max_states=max_states)
        with obs.span("gtpn.solve", states=graph.state_count):
            pi = stationary_distribution(graph, method=method,
                                         closed_classes=closed)
        result = AnalysisResult(net=net, graph=graph, pi=pi)
        if key is not None:
            store.put(key, _payload(result))
        root.set(outcome="solved", states=graph.state_count)
        return result


def _payload(result: AnalysisResult) -> dict:
    """Cacheable view of a result: everything except the net binding.

    Names live only on the net, so a payload computed for one net
    re-binds cleanly to any net with the same fingerprint.
    """
    graph = result.graph
    return {
        "states": graph.states,
        "probabilities": graph.probabilities,
        "initial": graph.initial,
        "expected_starts": graph.expected_starts,
        "inflight_counts": graph.inflight_counts,
        "pi": result.pi,
    }


def _rebind(net: Net, payload: dict) -> AnalysisResult:
    graph = ReachabilityGraph(
        net=net,
        states=payload["states"],
        probabilities=payload["probabilities"],
        initial=payload["initial"],
        expected_starts=payload["expected_starts"],
        inflight_counts=payload["inflight_counts"])
    return AnalysisResult(net=net, graph=graph, pi=payload["pi"])
