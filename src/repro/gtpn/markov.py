"""Stationary solution of the embedded Markov chain of a GTPN.

Solves pi P = pi, sum(pi) = 1 over the reachable state space.  The
architecture models of chapter 6 produce irreducible chains (every
conversation cycles forever), but the solver also copes with transient
initial states by falling back to power iteration when the direct
linear solve is ill-conditioned.

Chains with more than one closed communicating class are refused
(``AnalysisError``): their stationary distribution is not unique, so
any single solution would silently disagree with a simulated sample
path, which settles into exactly one of the closed classes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.csgraph import connected_components

from repro import obs
from repro.errors import AnalysisError
from repro.gtpn.reachability import ReachabilityGraph


def transition_matrix(graph: ReachabilityGraph) -> sp.csr_matrix:
    """The one-tick probability matrix P as a sparse CSR matrix.

    Packed graphs carry their CSR natively; object-walk graphs
    materialize (and cache) it from the row dicts on first access.
    """
    return graph.matrix


def stationary_distribution(graph: ReachabilityGraph,
                            method: str = "auto",
                            tol: float = 1e-12,
                            max_iterations: int = 2_000_000,
                            closed_classes: int | None = None,
                            ) -> np.ndarray:
    """Stationary distribution pi of the embedded chain.

    ``method`` is one of ``"auto"`` (direct solve with power-iteration
    fallback), ``"linear"`` or ``"power"``.  ``closed_classes`` lets a
    caller that already knows the chain's closed communicating class
    count (the sweep skeleton computes it once per structure) skip the
    strongly-connected-components pass; the reducibility refusal is
    identical either way.
    """
    matrix = transition_matrix(graph)
    if method not in ("auto", "linear", "power"):
        raise AnalysisError(f"unknown stationary method {method!r}")
    closed = _closed_class_count(matrix) if closed_classes is None \
        else closed_classes
    if closed > 1:
        raise AnalysisError(
            f"embedded chain is reducible ({closed} closed communicating "
            "classes); the stationary distribution is not unique")
    if method in ("auto", "linear"):
        solve = _solve_linear if matrix.shape[0] <= _DEFLATION_THRESHOLD \
            else _solve_linear_deflated
        try:
            pi = solve(matrix)
            if pi is not None:
                return pi
        except (np.linalg.LinAlgError, ValueError):
            # numerical failure of the direct solve: fall back to
            # power iteration on the auto path.  Anything else is a
            # defect and propagates — a bare except here once hid
            # real bugs behind silent (and slow) fallbacks.
            if method == "linear":
                raise
        if method == "linear":
            raise AnalysisError("direct stationary solve failed")
        obs.add("markov.solve_fallback")
    return _solve_power(matrix, graph, tol, max_iterations)


def _closed_class_count(matrix: sp.csr_matrix) -> int:
    """Number of closed communicating classes of the chain.

    A strongly connected component is closed when no edge leaves it;
    an ergodic chain (possibly with transient initial states) has
    exactly one.
    """
    n_components, labels = connected_components(
        matrix, directed=True, connection="strong")
    if n_components == 1:
        return 1
    coo = matrix.tocoo()
    leaving = (labels[coo.row] != labels[coo.col]) & (coo.data != 0)
    open_components = set(labels[coo.row[leaving]])
    return n_components - len(open_components)


# Above this many states the augmented-system direct solve switches to
# the deflated formulation: the dense normalization row causes
# catastrophic LU fill-in on large chains (tens of millions of
# factor nonzeros from a few-hundred-thousand-entry matrix).  Every
# chain in the validation grids sits far below the threshold, so the
# committed baseline keeps the historical solver bit for bit.
_DEFLATION_THRESHOLD = 10_000


def _solve_linear(matrix: sp.csr_matrix) -> np.ndarray | None:
    """Direct solve of (P^T - I) pi = 0 with a normalization row.

    The augmented system — balance equations with the redundant last
    one replaced by sum(pi) = 1 — is assembled directly in coordinate
    form (P^T entries off the last row, a -1 diagonal, and a dense
    last row of ones); duplicate coordinates sum on CSR conversion.
    This avoids the O(n^2) LIL round-trip of row-assigning into a
    converted matrix on large chains.
    """
    n = matrix.shape[0]
    coo = matrix.T.tocoo()
    keep = coo.row != n - 1
    data = np.concatenate([coo.data[keep],
                           -np.ones(n - 1),
                           np.ones(n)])
    rows = np.concatenate([coo.row[keep],
                           np.arange(n - 1),
                           np.full(n, n - 1)])
    cols = np.concatenate([coo.col[keep],
                           np.arange(n - 1),
                           np.arange(n)])
    a = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    b = np.zeros(n)
    b[n - 1] = 1.0
    pi = spla.spsolve(a, b)
    if not np.all(np.isfinite(pi)):
        return None
    pi = np.where(np.abs(pi) < 1e-14, 0.0, pi)
    if np.any(pi < -1e-9):
        return None
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0 or not np.isfinite(total):
        return None
    pi = pi / total
    # verify the fixed point (catches singular systems solved garbage)
    residual = np.abs(pi @ matrix - pi).max()
    if residual > 1e-8:
        return None
    return pi


def _solve_linear_deflated(matrix: sp.csr_matrix) -> np.ndarray | None:
    """Large-chain direct solve via deflation instead of a dense row.

    Pinning pi[n-1] = 1 and solving the order-(n-1) principal block of
    P^T - I keeps the system as sparse as the chain itself, where the
    augmented form's dense normalization row destroys the fill-reducing
    ordering.  An ILU-preconditioned GMRES attempt comes first (its
    factorization is an order of magnitude cheaper than a full LU);
    exactness is gated by the same fixed-point residual check as the
    small-chain path, with sparse LU on the deflated block as the
    in-function fallback and power iteration behind a ``None`` return.
    """
    n = matrix.shape[0]
    a = (matrix.T - sp.identity(n, format="csr", dtype=float)).tocsc()
    block = a[:n - 1, :n - 1]
    rhs = -np.asarray(a[:n - 1, [n - 1]].todense()).ravel()
    x = None
    try:
        ilu = spla.spilu(block, drop_tol=0.05, fill_factor=2.0)
        precond = spla.LinearOperator(block.shape, ilu.solve)
        x, info = spla.gmres(block, rhs, M=precond, rtol=1e-12,
                             atol=0.0, restart=50, maxiter=40)
        if info != 0:
            x = None
    except (RuntimeError, np.linalg.LinAlgError, ValueError,
            MemoryError):
        # spilu raises RuntimeError on an exactly singular factor;
        # the sparse LU below is the designed fallback for those.
        x = None
    if x is None:
        x = spla.spsolve(block, rhs)
    pi = np.concatenate([x, [1.0]])
    if not np.all(np.isfinite(pi)):
        return None
    total = pi.sum()
    if total <= 0 or not np.isfinite(total):
        return None
    pi = pi / total
    if np.any(pi < -1e-9):
        return None
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()
    residual = np.abs(pi @ matrix - pi).max()
    if residual > 1e-8:
        return None
    return pi


def _solve_power(matrix: sp.csr_matrix, graph: ReachabilityGraph,
                 tol: float, max_iterations: int) -> np.ndarray:
    """Power iteration from the initial distribution.

    Periodic chains are damped by averaging successive iterates
    (equivalent to the lazy chain (P + I) / 2, which has the same
    stationary distribution).
    """
    pi = np.array(graph.init_vec, dtype=float)
    for _ in range(max_iterations):
        nxt = 0.5 * (pi @ matrix) + 0.5 * pi
        delta = np.abs(nxt - pi).max()
        pi = nxt
        if delta < tol:
            break
    else:
        raise AnalysisError(
            f"power iteration did not converge in {max_iterations} "
            "iterations")
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise AnalysisError("power iteration produced a degenerate result")
    return pi / total
