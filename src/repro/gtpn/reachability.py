"""Reachability graph construction for GTPN analysis.

Builds the discrete-time Markov chain embedded at tick boundaries: one
state per reachable post-decision snapshot, with transition
probabilities from the exhaustive branch enumeration of
:class:`repro.gtpn.state.TickEngine`.

The analyzer in the thesis "takes a description of the petri net,
builds the reachable states for the net, solves the embedded Markov
process, and gives exact estimates for resource usage" (section 6.5);
this module implements the first of those steps.

Two engines share this front door.  Nets whose delays and frequencies
are all static compile for the array-native engine
(:mod:`repro.gtpn.packed`): packed int rows, batched frontier
expansion, direct CSR assembly — bit-identical probabilities to the
object walk, at array speed.  Nets with state-dependent (callable)
attributes run the original object walk below.  Either way the result
is one :class:`ReachabilityGraph`, which keeps both faces: the legacy
``states`` / ``probabilities`` / ``initial`` views materialize lazily
from the packed arrays (and vice versa), so existing callers and the
sparse solver both read their native representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import AnalysisError, StateSpaceLimitError
from repro.gtpn.net import Net
from repro.gtpn.state import ExhaustiveResolver, State, TickEngine

#: Default cap on explored states; architecture models stay well below.
DEFAULT_MAX_STATES = 200_000


@dataclass(frozen=True)
class ReductionInfo:
    """What state-space reduction produced a graph, and how much it cut.

    Attached to :class:`ReachabilityGraph` when ``reduction != "none"``
    was requested (even if nothing folded, so a caller can tell "lump
    did nothing" from "lump was off").  ``place_orbits`` /
    ``transition_orbits`` list the index groups whose per-member
    measures were folded together; :mod:`repro.gtpn.analysis` recovers
    exact per-member values by orbit averaging.
    """

    requested: str                  # canonical mode string
    lumped: bool                    # symmetry folding was active
    place_orbits: tuple = ()
    transition_orbits: tuple = ()
    folded_states: int = 0          # successor rows re-canonicalized
    pre_elim_states: int = 0        # states before transient removal
    transient_removed: int = 0


class ReachabilityGraph:
    """The embedded chain of a GTPN, in object and/or packed form.

    The legacy attributes keep their documented shapes:

    * ``states``: reachable post-decision states, index-aligned with
      the rows/columns of ``probabilities``.
    * ``probabilities``: sparse row dicts; ``probabilities[i][j]`` is
      the one-tick probability of moving from state i to state j.
    * ``initial``: probability distribution over states at time zero.
    * ``expected_starts[i]``: vector (length = number of transitions)
      of expected firings of each transition started during a tick
      spent in state i.
    * ``inflight_counts[i]``: vector of concurrent in-flight firings
      of each transition while the net sits in state i.

    A graph built by the packed engine natively holds ``matrix`` (CSR),
    ``init_vec``, ``starts_matrix``, ``inflight_matrix`` and the
    interned ``packed_table``; the attributes above are materialized on
    first access.  An object-walk graph holds the dict form and
    materializes the arrays on demand.  ``reduction`` carries a
    :class:`ReductionInfo` when a reduction was requested.
    """

    def __init__(self, net: Net, states=None, probabilities=None,
                 initial=None, expected_starts=None,
                 inflight_counts=None, *, matrix=None,
                 starts_matrix=None, init_vec=None,
                 inflight_matrix=None, packed_table=None,
                 packed_layout=None, reduction: ReductionInfo | None = None):
        self.net = net
        self._states = states
        self._probabilities = probabilities
        self._initial = initial
        self._expected_starts = expected_starts
        self._inflight_counts = inflight_counts
        self._matrix = matrix
        self._starts_matrix = starts_matrix
        self._init_vec = init_vec
        self._inflight_matrix = inflight_matrix
        self.packed_table = packed_table
        self.packed_layout = packed_layout
        self.reduction = reduction
        if states is None and packed_table is None:
            raise ValueError(
                "ReachabilityGraph needs either object states or a "
                "packed table")

    @property
    def is_packed(self) -> bool:
        return self.packed_table is not None

    @property
    def state_count(self) -> int:
        if self._states is not None:
            return len(self._states)
        return len(self.packed_table)

    # -- legacy object views, materialized lazily from the arrays ----

    @property
    def states(self) -> list[State]:
        if self._states is None:
            self._states = self.packed_layout.unpack_all(
                self.packed_table)
        return self._states

    @property
    def probabilities(self) -> list[dict[int, float]]:
        if self._probabilities is None:
            m = self._matrix
            indptr, indices, data = m.indptr, m.indices, m.data
            self._probabilities = [
                {int(indices[k]): float(data[k])
                 for k in range(indptr[i], indptr[i + 1])}
                for i in range(m.shape[0])]
        return self._probabilities

    @property
    def initial(self) -> dict[int, float]:
        if self._initial is None:
            self._initial = {int(i): float(self._init_vec[i])
                             for i in np.flatnonzero(self._init_vec)}
        return self._initial

    @property
    def expected_starts(self) -> list[np.ndarray]:
        if self._expected_starts is None:
            self._expected_starts = list(self._starts_matrix)
        return self._expected_starts

    @property
    def inflight_counts(self) -> list[np.ndarray]:
        if self._inflight_counts is None:
            self._inflight_counts = list(self._inflight_matrix)
        return self._inflight_counts

    # -- array views, materialized lazily from the object form -------

    @property
    def matrix(self) -> sp.csr_matrix:
        """The one-tick probability matrix P as a sparse CSR matrix."""
        if self._matrix is None:
            n = self.state_count
            data, rows, cols = [], [], []
            for i, row in enumerate(self._probabilities):
                for j, p in row.items():
                    rows.append(i)
                    cols.append(j)
                    data.append(p)
            self._matrix = sp.csr_matrix((data, (rows, cols)),
                                         shape=(n, n))
        return self._matrix

    @property
    def init_vec(self) -> np.ndarray:
        if self._init_vec is None:
            vec = np.zeros(self.state_count)
            for i, p in self._initial.items():
                vec[i] = p
            self._init_vec = vec
        return self._init_vec

    @property
    def starts_matrix(self) -> np.ndarray:
        if self._starts_matrix is None:
            self._starts_matrix = np.asarray(self._expected_starts,
                                             dtype=float)
        return self._starts_matrix

    @property
    def inflight_matrix(self) -> np.ndarray:
        if self._inflight_matrix is None:
            self._inflight_matrix = np.asarray(self._inflight_counts,
                                               dtype=float)
        return self._inflight_matrix


def build_reachability_graph(net: Net,
                             max_states: int = DEFAULT_MAX_STATES,
                             *, reduction: str | None = None,
                             ) -> ReachabilityGraph:
    """Explore every reachable state of *net* by breadth-first search.

    Routes static nets through the packed array engine (bit-identical
    to the object walk with ``reduction="none"``); nets with callable
    attributes use the object walk.  ``reduction=None`` resolves the
    configured mode (:func:`repro.config.reduction`); reductions other
    than ``"none"`` require the packed engine.
    """
    from repro import config
    from repro.gtpn import packed

    if reduction is None:
        reduction = config.reduction()
    else:
        reduction = config.normalize_reduction(reduction)
    pnet = packed.compile_packed(net, reduction)
    if pnet is not None:
        graph, _skeleton = packed.packed_build(
            net, pnet, max_states=max_states, reduction=reduction)
        return graph
    if reduction != "none":
        raise AnalysisError(
            f"net {net.name!r}: reduction {reduction!r} requires the "
            "packed engine, which needs static delays and frequencies "
            "(state-dependent attributes force the object walk)")
    return _build_object_graph(net, max_states)


def _build_object_graph(net: Net, max_states: int) -> ReachabilityGraph:
    """The original one-state-at-a-time object walk."""
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    n_transitions = len(net.transitions)

    index: dict[State, int] = {}
    states: list[State] = []
    rows: list[dict[int, float]] = []
    # per-state expected-start accumulators as plain lists: the vectors
    # are tiny (tens of transitions) and mostly zero per branch, so
    # scalar accumulation beats allocating an ndarray per state; the
    # batch converts to one (states x transitions) array at the end.
    start_rows: list[list[float]] = []
    explored = 0

    def intern(state: State) -> int:
        found = index.get(state)
        if found is None:
            found = len(states)
            index[state] = found
            states.append(state)
            rows.append({})
            start_rows.append([0.0] * n_transitions)
            if len(states) > max_states:
                raise StateSpaceLimitError(
                    net.name, len(states), len(states) - explored,
                    max_states)
        return found

    initial: dict[int, float] = {}
    for branch in engine.initial_branches(resolver):
        i = intern(branch.state)
        initial[i] = initial.get(i, 0.0) + branch.probability

    while explored < len(states):
        i = explored
        explored += 1
        row = rows[i]
        start_row = start_rows[i]
        for branch in engine.tick(states[i], resolver):
            j = intern(branch.state)
            prob = branch.probability
            row[j] = row.get(j, 0.0) + prob
            for t_idx, count in enumerate(branch.starts):
                if count:
                    start_row[t_idx] += prob * count

    n_states = len(states)
    starts_matrix = np.asarray(start_rows, dtype=float).reshape(
        n_states, n_transitions)
    inflight_matrix = np.zeros((n_states, n_transitions))
    for i, state in enumerate(states):
        for t_idx, _remaining in state.inflight:
            inflight_matrix[i, t_idx] += 1.0

    _check_stochastic(net, rows)
    return ReachabilityGraph(net=net, states=states, probabilities=rows,
                             initial=initial,
                             expected_starts=list(starts_matrix),
                             inflight_counts=list(inflight_matrix))


def _check_stochastic(net: Net, rows: list[dict[int, float]]) -> None:
    for i, row in enumerate(rows):
        if not row:
            raise AnalysisError(
                f"net {net.name!r}: state {i} is absorbing with no "
                "successors; the embedded chain is not well formed")
        total = sum(row.values())
        if abs(total - 1.0) > 1e-9:
            raise AnalysisError(
                f"net {net.name!r}: outgoing probabilities of state {i} "
                f"sum to {total!r}, expected 1.0")
