"""Reachability graph construction for GTPN analysis.

Builds the discrete-time Markov chain embedded at tick boundaries: one
state per reachable post-decision snapshot, with transition
probabilities from the exhaustive branch enumeration of
:class:`repro.gtpn.state.TickEngine`.

The analyzer in the thesis "takes a description of the petri net,
builds the reachable states for the net, solves the embedded Markov
process, and gives exact estimates for resource usage" (section 6.5);
this module implements the first of those steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError
from repro.gtpn.net import Net
from repro.gtpn.state import ExhaustiveResolver, State, TickEngine

#: Default cap on explored states; architecture models stay well below.
DEFAULT_MAX_STATES = 200_000


@dataclass
class ReachabilityGraph:
    """The embedded chain of a GTPN.

    Attributes:
        states: reachable post-decision states, index-aligned with the
            rows/columns of ``probabilities``.
        probabilities: sparse row dict: ``probabilities[i][j]`` is the
            one-tick probability of moving from state i to state j.
        initial: probability distribution over states at time zero.
        expected_starts: ``expected_starts[i]`` is a vector (length =
            number of transitions) of the expected number of firings of
            each transition started during a tick spent in state i.
        inflight_counts: ``inflight_counts[i]`` is a vector of the
            number of concurrent in-flight firings of each transition
            while the net sits in state i.
    """

    net: Net
    states: list[State]
    probabilities: list[dict[int, float]]
    initial: dict[int, float]
    expected_starts: list[np.ndarray]
    inflight_counts: list[np.ndarray] = field(default_factory=list)

    @property
    def state_count(self) -> int:
        return len(self.states)


def build_reachability_graph(net: Net,
                             max_states: int = DEFAULT_MAX_STATES,
                             ) -> ReachabilityGraph:
    """Explore every reachable state of *net* by breadth-first search."""
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    n_transitions = len(net.transitions)

    index: dict[State, int] = {}
    states: list[State] = []
    rows: list[dict[int, float]] = []
    # per-state expected-start accumulators as plain lists: the vectors
    # are tiny (tens of transitions) and mostly zero per branch, so
    # scalar accumulation beats allocating an ndarray per state; the
    # batch converts to one (states x transitions) array at the end.
    start_rows: list[list[float]] = []

    def intern(state: State) -> int:
        found = index.get(state)
        if found is None:
            found = len(states)
            index[state] = found
            states.append(state)
            rows.append({})
            start_rows.append([0.0] * n_transitions)
            if len(states) > max_states:
                raise AnalysisError(
                    f"net {net.name!r}: more than {max_states} reachable "
                    "states; increase max_states or simplify the model")
        return found

    initial: dict[int, float] = {}
    for branch in engine.initial_branches(resolver):
        i = intern(branch.state)
        initial[i] = initial.get(i, 0.0) + branch.probability

    explored = 0
    while explored < len(states):
        i = explored
        explored += 1
        row = rows[i]
        start_row = start_rows[i]
        for branch in engine.tick(states[i], resolver):
            j = intern(branch.state)
            prob = branch.probability
            row[j] = row.get(j, 0.0) + prob
            for t_idx, count in enumerate(branch.starts):
                if count:
                    start_row[t_idx] += prob * count

    n_states = len(states)
    starts_matrix = np.asarray(start_rows, dtype=float).reshape(
        n_states, n_transitions)
    inflight_matrix = np.zeros((n_states, n_transitions))
    for i, state in enumerate(states):
        for t_idx, _remaining in state.inflight:
            inflight_matrix[i, t_idx] += 1.0

    _check_stochastic(net, rows)
    return ReachabilityGraph(net=net, states=states, probabilities=rows,
                             initial=initial,
                             expected_starts=list(starts_matrix),
                             inflight_counts=list(inflight_matrix))


def _check_stochastic(net: Net, rows: list[dict[int, float]]) -> None:
    for i, row in enumerate(rows):
        if not row:
            raise AnalysisError(
                f"net {net.name!r}: state {i} is absorbing with no "
                "successors; the embedded chain is not well formed")
        total = sum(row.values())
        if abs(total - 1.0) > 1e-9:
            raise AnalysisError(
                f"net {net.name!r}: outgoing probabilities of state {i} "
                f"sum to {total!r}, expected 1.0")
