"""Generalized Timed Petri Net (GTPN) structure.

The GTPN formalism follows Holliday & Vernon, the modeling tool used in
chapter 6 of the thesis.  A net is a multigraph of *places* and
*transitions*; each transition carries an attribute vector of

``(delay, frequency, resource)``

where *delay* is a deterministic, non-negative integer firing duration,
*frequency* governs the probabilistic resolution of conflicts between
transitions that share input places, and *resource* names an output
measure that is "in use" while the transition is firing.

Both delay and frequency may be state-dependent: instead of a constant
they may be callables receiving a :class:`Context` (a read view of the
current marking and the set of currently-firing transitions).  This
mirrors the paper's frequency expressions such as::

    (NetIntr = 0) & !T6 & !T7  ->  1/853.2, 0

which in this library is written::

    lambda ctx: 1 / 853.2 if ctx.tokens("NetIntr") == 0
                and not ctx.firing("T6") and not ctx.firing("T7") else 0.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence, Union

from repro.errors import ModelError

#: A delay attribute: a constant number of ticks or a state-dependent rule.
DelaySpec = Union[int, Callable[["Context"], int]]

#: A frequency attribute: a constant weight or a state-dependent rule.
FrequencySpec = Union[float, int, Callable[["Context"], float]]


class Context:
    """Read-only view of a net state handed to state-dependent attributes.

    ``tokens(place)`` returns the current marking of a place and
    ``firing(transition)`` reports whether a transition is currently in
    flight (has started firing and not yet deposited its outputs).
    """

    __slots__ = ("_net", "_marking", "_inflight")

    def __init__(self, net: "Net", marking: Sequence[int],
                 inflight_counts: Sequence[int]):
        self._net = net
        self._marking = marking
        self._inflight = inflight_counts

    def tokens(self, place: Union[str, "Place"]) -> int:
        """Number of tokens currently in *place*."""
        index = place.index if isinstance(place, Place) else \
            self._net.place_index(place)
        return self._marking[index]

    def firing(self, transition: Union[str, "Transition"]) -> bool:
        """True if *transition* is currently firing (in flight)."""
        index = transition.index if isinstance(transition, Transition) else \
            self._net.transition_index(transition)
        return self._inflight[index] > 0

    def firing_count(self, transition: Union[str, "Transition"]) -> int:
        """Number of concurrent in-flight firings of *transition*."""
        index = transition.index if isinstance(transition, Transition) else \
            self._net.transition_index(transition)
        return self._inflight[index]


@dataclass(frozen=True)
class Place:
    """A GTPN place (drawn as a circle in the thesis figures)."""

    name: str
    index: int
    initial_tokens: int = 0

    def __repr__(self) -> str:
        return f"Place({self.name!r}, tokens={self.initial_tokens})"


@dataclass
class Transition:
    """A GTPN transition with its attribute vector.

    ``inputs`` and ``outputs`` map place index -> arc multiplicity.
    """

    name: str
    index: int
    delay: DelaySpec
    frequency: FrequencySpec
    resource: str | None
    inputs: dict[int, int] = field(default_factory=dict)
    outputs: dict[int, int] = field(default_factory=dict)
    #: additional output-measure names this transition contributes to
    #: (a transition may count toward several resources, e.g. both the
    #: throughput measure and an occupancy measure for Little's law).
    extra_resources: tuple[str, ...] = ()
    #: human-readable rendering of the frequency attribute, in the
    #: thesis's notation (e.g. "1/544.7" or "(NetIntr = 0) & !T6 & !T7
    #: -> 1/853.2, 0"); used when reproducing the transition tables.
    frequency_label: str = ""

    @property
    def all_resources(self) -> tuple[str, ...]:
        if self.resource is None:
            return self.extra_resources
        return (self.resource, *self.extra_resources)

    @property
    def immediate(self) -> bool:
        """True when the delay is the constant zero (fires in zero time)."""
        return self.delay == 0

    def eval_delay(self, ctx: Context) -> int:
        value = self.delay(ctx) if callable(self.delay) else self.delay
        if not isinstance(value, int) or value < 0:
            raise ModelError(
                f"transition {self.name}: delay must be a non-negative "
                f"integer, got {value!r}")
        return value

    def eval_frequency(self, ctx: Context) -> float:
        value = self.frequency(ctx) if callable(self.frequency) \
            else self.frequency
        value = float(value)
        if value < 0:
            raise ModelError(
                f"transition {self.name}: frequency must be >= 0, "
                f"got {value!r}")
        return value

    def enabled(self, marking: Sequence[int]) -> bool:
        """True when every input place holds enough tokens."""
        return all(marking[p] >= need for p, need in self.inputs.items())

    def __repr__(self) -> str:
        return f"Transition({self.name!r})"


@dataclass(frozen=True)
class SymmetryGroup:
    """A validated block of interchangeable subnets.

    ``members[i]`` is ``(place_indices, transition_indices)`` of the
    i-th replica; aligned positions across members correspond under the
    net automorphism that swaps any two replicas.  Declared through
    :meth:`Net.declare_symmetry`, consumed by the symmetry-lumping
    reduction of the packed engine (:mod:`repro.gtpn.packed`).
    """

    members: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]

    @property
    def size(self) -> int:
        return len(self.members)

    def place_orbits(self) -> list[tuple[int, ...]]:
        """Aligned place indices across members, one orbit per position."""
        return [tuple(m[0][j] for m in self.members)
                for j in range(len(self.members[0][0]))]

    def transition_orbits(self) -> list[tuple[int, ...]]:
        return [tuple(m[1][j] for m in self.members)
                for j in range(len(self.members[0][1]))]


class Net:
    """A GTPN under construction and its derived structure.

    Build nets with :meth:`place` and :meth:`transition`; the derived
    conflict classes (used by the firing semantics, see
    :mod:`repro.gtpn.reachability`) are computed lazily and cached.
    """

    def __init__(self, name: str = "gtpn"):
        self.name = name
        self.places: list[Place] = []
        self.transitions: list[Transition] = []
        self.symmetries: list[SymmetryGroup] = []
        self._place_by_name: dict[str, Place] = {}
        self._transition_by_name: dict[str, Transition] = {}
        self._conflict_classes: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def place(self, name: str, tokens: int = 0) -> Place:
        """Add a place holding *tokens* initially."""
        if name in self._place_by_name:
            raise ModelError(f"duplicate place name {name!r}")
        if tokens < 0:
            raise ModelError(f"place {name!r}: negative initial tokens")
        p = Place(name=name, index=len(self.places), initial_tokens=tokens)
        self.places.append(p)
        self._place_by_name[name] = p
        self._conflict_classes = None
        return p

    def transition(self, name: str, *,
                   delay: DelaySpec,
                   frequency: FrequencySpec = 1.0,
                   resource: str | None = None,
                   extra_resources: Iterable[str] = (),
                   inputs: Iterable[Place] | Mapping[Place, int] = (),
                   outputs: Iterable[Place] | Mapping[Place, int] = (),
                   frequency_label: str = "",
                   ) -> Transition:
        """Add a transition.

        ``inputs``/``outputs`` accept either an iterable of places
        (repeat a place for arc multiplicity > 1, matching the
        multigraph definition in the thesis) or an explicit
        place -> multiplicity mapping.
        """
        if name in self._transition_by_name:
            raise ModelError(f"duplicate transition name {name!r}")
        if not frequency_label and not callable(frequency):
            frequency_label = f"{float(frequency):g}"
        t = Transition(name=name, index=len(self.transitions),
                       delay=delay, frequency=frequency, resource=resource,
                       inputs=self._arc_dict(inputs, name),
                       outputs=self._arc_dict(outputs, name),
                       extra_resources=tuple(extra_resources),
                       frequency_label=frequency_label)
        if not callable(delay) and (not isinstance(delay, int) or delay < 0):
            raise ModelError(
                f"transition {name!r}: delay must be a non-negative integer")
        self.transitions.append(t)
        self._transition_by_name[name] = t
        self._conflict_classes = None
        return t

    def _arc_dict(self, spec, tname: str) -> dict[int, int]:
        arcs: dict[int, int] = {}
        if isinstance(spec, Mapping):
            items = [(p, n) for p, n in spec.items()]
        else:
            items = [(p, 1) for p in spec]
        for p, n in items:
            if not isinstance(p, Place):
                raise ModelError(
                    f"transition {tname!r}: arc endpoint {p!r} is not a "
                    "Place")
            if n <= 0:
                raise ModelError(
                    f"transition {tname!r}: arc multiplicity must be >= 1")
            arcs[p.index] = arcs.get(p.index, 0) + n
        return arcs

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def place_index(self, name: str) -> int:
        try:
            return self._place_by_name[name].index
        except KeyError:
            raise ModelError(f"unknown place {name!r}") from None

    def transition_index(self, name: str) -> int:
        try:
            return self._transition_by_name[name].index
        except KeyError:
            raise ModelError(f"unknown transition {name!r}") from None

    def get_place(self, name: str) -> Place:
        return self.places[self.place_index(name)]

    def has_place(self, name: str) -> bool:
        return name in self._place_by_name

    def has_transition(self, name: str) -> bool:
        return name in self._transition_by_name

    def get_transition(self, name: str) -> Transition:
        return self.transitions[self.transition_index(name)]

    @property
    def initial_marking(self) -> tuple[int, ...]:
        return tuple(p.initial_tokens for p in self.places)

    @property
    def resources(self) -> list[str]:
        """Distinct resource names, in first-use order."""
        seen: dict[str, None] = {}
        for t in self.transitions:
            for name in t.all_resources:
                seen.setdefault(name, None)
        return list(seen)

    # ------------------------------------------------------------------
    # conflict classes
    # ------------------------------------------------------------------
    def conflict_classes(self) -> list[list[int]]:
        """Partition transition indices by transitive input-place sharing.

        Two transitions conflict when they share an input place; the
        transitive closure of that relation partitions the transitions
        into classes.  The firing semantics resolves the choice of which
        transition starts firing *within* a class by normalized
        frequencies; distinct classes proceed independently.  This is
        the documented subset of GTPN semantics used throughout the
        architecture models (see DESIGN.md).
        """
        if self._conflict_classes is None:
            parent = list(range(len(self.transitions)))

            def find(x: int) -> int:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            def union(a: int, b: int) -> None:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[rb] = ra

            by_place: dict[int, list[int]] = {}
            for t in self.transitions:
                for p in t.inputs:
                    by_place.setdefault(p, []).append(t.index)
            for members in by_place.values():
                for other in members[1:]:
                    union(members[0], other)
            classes: dict[int, list[int]] = {}
            for t in self.transitions:
                classes.setdefault(find(t.index), []).append(t.index)
            self._conflict_classes = sorted(classes.values())
        return self._conflict_classes

    # ------------------------------------------------------------------
    # symmetry
    # ------------------------------------------------------------------
    def declare_symmetry(self, members: Sequence[tuple[Sequence, Sequence]],
                         ) -> SymmetryGroup:
        """Declare ≥ 2 interchangeable subnets (replicated clients).

        ``members`` lists, per replica, ``(places, transitions)`` (as
        objects or names), aligned so position *j* of one replica
        corresponds to position *j* of every other.  The declaration is
        validated: swapping any replica with the first must be a net
        automorphism (equal mapped arcs, equal static delay/frequency,
        equal initial tokens), which suffices for full interchange
        symmetry because transpositions generate the symmetric group.
        The symmetry-lumping reduction folds states that differ only by
        a replica permutation onto one representative, which is exact
        (strong lumpability) precisely because of this property.
        """
        if len(members) < 2:
            raise ModelError("a symmetry group needs at least 2 members")
        resolved: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        for places, transitions in members:
            p_idx = tuple(p.index if isinstance(p, Place)
                          else self.place_index(p) for p in places)
            t_idx = tuple(t.index if isinstance(t, Transition)
                          else self.transition_index(t)
                          for t in transitions)
            resolved.append((p_idx, t_idx))
        n_p, n_t = len(resolved[0][0]), len(resolved[0][1])
        if any(len(p) != n_p or len(t) != n_t for p, t in resolved):
            raise ModelError(
                "symmetry members must have aligned place/transition "
                "lists of equal length")
        claimed_p = [p for pl, _ in resolved for p in pl]
        claimed_t = [t for _, tl in resolved for t in tl]
        prior_p = {p for g in self.symmetries
                   for pl, _ in g.members for p in pl}
        prior_t = {t for g in self.symmetries
                   for _, tl in g.members for t in tl}
        if (len(set(claimed_p)) != len(claimed_p)
                or len(set(claimed_t)) != len(claimed_t)
                or set(claimed_p) & prior_p or set(claimed_t) & prior_t):
            raise ModelError(
                "symmetry members must not overlap each other or a "
                "previously declared group")
        for t in claimed_t:
            tr = self.transitions[t]
            if callable(tr.delay) or callable(tr.frequency):
                raise ModelError(
                    f"transition {tr.name!r}: state-dependent attributes "
                    "cannot be part of a symmetry group (lumping needs "
                    "static, provably equal attributes)")
        group = SymmetryGroup(members=tuple(resolved))
        for k in range(1, len(resolved)):
            self._check_swap_automorphism(group, k)
        self.symmetries.append(group)
        return group

    def _check_swap_automorphism(self, group: SymmetryGroup,
                                 k: int) -> None:
        """Verify that swapping member 0 with member *k* preserves the net."""
        p_perm = list(range(len(self.places)))
        t_perm = list(range(len(self.transitions)))
        (p0, t0), (pk, tk) = group.members[0], group.members[k]
        for a, b in zip(p0, pk):
            p_perm[a], p_perm[b] = b, a
        for a, b in zip(t0, tk):
            t_perm[a], t_perm[b] = b, a
        for a, b in zip(p0, pk):
            if (self.places[a].initial_tokens
                    != self.places[b].initial_tokens):
                raise ModelError(
                    f"places {self.places[a].name!r} and "
                    f"{self.places[b].name!r} differ in initial tokens; "
                    "not a symmetry")
        for t in self.transitions:
            image = self.transitions[t_perm[t.index]]
            if (callable(t.delay) or callable(t.frequency)
                    or callable(image.delay) or callable(image.frequency)):
                # callables inside groups are rejected earlier; a shared
                # transition mapping to itself keeps identical objects
                same_attrs = (t.delay is image.delay
                              and t.frequency is image.frequency)
            else:
                same_attrs = (t.delay == image.delay
                              and float(t.frequency)
                              == float(image.frequency))
            if not same_attrs:
                raise ModelError(
                    f"transitions {t.name!r} and {image.name!r} differ "
                    "in delay/frequency; not a symmetry")
            mapped_in = {p_perm[p]: n for p, n in t.inputs.items()}
            mapped_out = {p_perm[p]: n for p, n in t.outputs.items()}
            if mapped_in != image.inputs or mapped_out != image.outputs:
                raise ModelError(
                    f"swapping symmetry member 0 with member {k} does "
                    f"not preserve the arcs of transition {t.name!r}; "
                    "not a net automorphism")

    def validate(self) -> None:
        """Raise :class:`ModelError` for structurally broken nets."""
        for t in self.transitions:
            if not t.inputs:
                raise ModelError(
                    f"transition {t.name!r} has no input places; it would "
                    "fire unboundedly")

    def __repr__(self) -> str:
        return (f"Net({self.name!r}, places={len(self.places)}, "
                f"transitions={len(self.transitions)})")
