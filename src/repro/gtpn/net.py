"""Generalized Timed Petri Net (GTPN) structure.

The GTPN formalism follows Holliday & Vernon, the modeling tool used in
chapter 6 of the thesis.  A net is a multigraph of *places* and
*transitions*; each transition carries an attribute vector of

``(delay, frequency, resource)``

where *delay* is a deterministic, non-negative integer firing duration,
*frequency* governs the probabilistic resolution of conflicts between
transitions that share input places, and *resource* names an output
measure that is "in use" while the transition is firing.

Both delay and frequency may be state-dependent: instead of a constant
they may be callables receiving a :class:`Context` (a read view of the
current marking and the set of currently-firing transitions).  This
mirrors the paper's frequency expressions such as::

    (NetIntr = 0) & !T6 & !T7  ->  1/853.2, 0

which in this library is written::

    lambda ctx: 1 / 853.2 if ctx.tokens("NetIntr") == 0
                and not ctx.firing("T6") and not ctx.firing("T7") else 0.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence, Union

from repro.errors import ModelError

#: A delay attribute: a constant number of ticks or a state-dependent rule.
DelaySpec = Union[int, Callable[["Context"], int]]

#: A frequency attribute: a constant weight or a state-dependent rule.
FrequencySpec = Union[float, int, Callable[["Context"], float]]


class Context:
    """Read-only view of a net state handed to state-dependent attributes.

    ``tokens(place)`` returns the current marking of a place and
    ``firing(transition)`` reports whether a transition is currently in
    flight (has started firing and not yet deposited its outputs).
    """

    __slots__ = ("_net", "_marking", "_inflight")

    def __init__(self, net: "Net", marking: Sequence[int],
                 inflight_counts: Sequence[int]):
        self._net = net
        self._marking = marking
        self._inflight = inflight_counts

    def tokens(self, place: Union[str, "Place"]) -> int:
        """Number of tokens currently in *place*."""
        index = place.index if isinstance(place, Place) else \
            self._net.place_index(place)
        return self._marking[index]

    def firing(self, transition: Union[str, "Transition"]) -> bool:
        """True if *transition* is currently firing (in flight)."""
        index = transition.index if isinstance(transition, Transition) else \
            self._net.transition_index(transition)
        return self._inflight[index] > 0

    def firing_count(self, transition: Union[str, "Transition"]) -> int:
        """Number of concurrent in-flight firings of *transition*."""
        index = transition.index if isinstance(transition, Transition) else \
            self._net.transition_index(transition)
        return self._inflight[index]


@dataclass(frozen=True)
class Place:
    """A GTPN place (drawn as a circle in the thesis figures)."""

    name: str
    index: int
    initial_tokens: int = 0

    def __repr__(self) -> str:
        return f"Place({self.name!r}, tokens={self.initial_tokens})"


@dataclass
class Transition:
    """A GTPN transition with its attribute vector.

    ``inputs`` and ``outputs`` map place index -> arc multiplicity.
    """

    name: str
    index: int
    delay: DelaySpec
    frequency: FrequencySpec
    resource: str | None
    inputs: dict[int, int] = field(default_factory=dict)
    outputs: dict[int, int] = field(default_factory=dict)
    #: additional output-measure names this transition contributes to
    #: (a transition may count toward several resources, e.g. both the
    #: throughput measure and an occupancy measure for Little's law).
    extra_resources: tuple[str, ...] = ()
    #: human-readable rendering of the frequency attribute, in the
    #: thesis's notation (e.g. "1/544.7" or "(NetIntr = 0) & !T6 & !T7
    #: -> 1/853.2, 0"); used when reproducing the transition tables.
    frequency_label: str = ""

    @property
    def all_resources(self) -> tuple[str, ...]:
        if self.resource is None:
            return self.extra_resources
        return (self.resource, *self.extra_resources)

    @property
    def immediate(self) -> bool:
        """True when the delay is the constant zero (fires in zero time)."""
        return self.delay == 0

    def eval_delay(self, ctx: Context) -> int:
        value = self.delay(ctx) if callable(self.delay) else self.delay
        if not isinstance(value, int) or value < 0:
            raise ModelError(
                f"transition {self.name}: delay must be a non-negative "
                f"integer, got {value!r}")
        return value

    def eval_frequency(self, ctx: Context) -> float:
        value = self.frequency(ctx) if callable(self.frequency) \
            else self.frequency
        value = float(value)
        if value < 0:
            raise ModelError(
                f"transition {self.name}: frequency must be >= 0, "
                f"got {value!r}")
        return value

    def enabled(self, marking: Sequence[int]) -> bool:
        """True when every input place holds enough tokens."""
        return all(marking[p] >= need for p, need in self.inputs.items())

    def __repr__(self) -> str:
        return f"Transition({self.name!r})"


class Net:
    """A GTPN under construction and its derived structure.

    Build nets with :meth:`place` and :meth:`transition`; the derived
    conflict classes (used by the firing semantics, see
    :mod:`repro.gtpn.reachability`) are computed lazily and cached.
    """

    def __init__(self, name: str = "gtpn"):
        self.name = name
        self.places: list[Place] = []
        self.transitions: list[Transition] = []
        self._place_by_name: dict[str, Place] = {}
        self._transition_by_name: dict[str, Transition] = {}
        self._conflict_classes: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def place(self, name: str, tokens: int = 0) -> Place:
        """Add a place holding *tokens* initially."""
        if name in self._place_by_name:
            raise ModelError(f"duplicate place name {name!r}")
        if tokens < 0:
            raise ModelError(f"place {name!r}: negative initial tokens")
        p = Place(name=name, index=len(self.places), initial_tokens=tokens)
        self.places.append(p)
        self._place_by_name[name] = p
        self._conflict_classes = None
        return p

    def transition(self, name: str, *,
                   delay: DelaySpec,
                   frequency: FrequencySpec = 1.0,
                   resource: str | None = None,
                   extra_resources: Iterable[str] = (),
                   inputs: Iterable[Place] | Mapping[Place, int] = (),
                   outputs: Iterable[Place] | Mapping[Place, int] = (),
                   frequency_label: str = "",
                   ) -> Transition:
        """Add a transition.

        ``inputs``/``outputs`` accept either an iterable of places
        (repeat a place for arc multiplicity > 1, matching the
        multigraph definition in the thesis) or an explicit
        place -> multiplicity mapping.
        """
        if name in self._transition_by_name:
            raise ModelError(f"duplicate transition name {name!r}")
        if not frequency_label and not callable(frequency):
            frequency_label = f"{float(frequency):g}"
        t = Transition(name=name, index=len(self.transitions),
                       delay=delay, frequency=frequency, resource=resource,
                       inputs=self._arc_dict(inputs, name),
                       outputs=self._arc_dict(outputs, name),
                       extra_resources=tuple(extra_resources),
                       frequency_label=frequency_label)
        if not callable(delay) and (not isinstance(delay, int) or delay < 0):
            raise ModelError(
                f"transition {name!r}: delay must be a non-negative integer")
        self.transitions.append(t)
        self._transition_by_name[name] = t
        self._conflict_classes = None
        return t

    def _arc_dict(self, spec, tname: str) -> dict[int, int]:
        arcs: dict[int, int] = {}
        if isinstance(spec, Mapping):
            items = [(p, n) for p, n in spec.items()]
        else:
            items = [(p, 1) for p in spec]
        for p, n in items:
            if not isinstance(p, Place):
                raise ModelError(
                    f"transition {tname!r}: arc endpoint {p!r} is not a "
                    "Place")
            if n <= 0:
                raise ModelError(
                    f"transition {tname!r}: arc multiplicity must be >= 1")
            arcs[p.index] = arcs.get(p.index, 0) + n
        return arcs

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def place_index(self, name: str) -> int:
        try:
            return self._place_by_name[name].index
        except KeyError:
            raise ModelError(f"unknown place {name!r}") from None

    def transition_index(self, name: str) -> int:
        try:
            return self._transition_by_name[name].index
        except KeyError:
            raise ModelError(f"unknown transition {name!r}") from None

    def get_place(self, name: str) -> Place:
        return self.places[self.place_index(name)]

    def has_place(self, name: str) -> bool:
        return name in self._place_by_name

    def has_transition(self, name: str) -> bool:
        return name in self._transition_by_name

    def get_transition(self, name: str) -> Transition:
        return self.transitions[self.transition_index(name)]

    @property
    def initial_marking(self) -> tuple[int, ...]:
        return tuple(p.initial_tokens for p in self.places)

    @property
    def resources(self) -> list[str]:
        """Distinct resource names, in first-use order."""
        seen: dict[str, None] = {}
        for t in self.transitions:
            for name in t.all_resources:
                seen.setdefault(name, None)
        return list(seen)

    # ------------------------------------------------------------------
    # conflict classes
    # ------------------------------------------------------------------
    def conflict_classes(self) -> list[list[int]]:
        """Partition transition indices by transitive input-place sharing.

        Two transitions conflict when they share an input place; the
        transitive closure of that relation partitions the transitions
        into classes.  The firing semantics resolves the choice of which
        transition starts firing *within* a class by normalized
        frequencies; distinct classes proceed independently.  This is
        the documented subset of GTPN semantics used throughout the
        architecture models (see DESIGN.md).
        """
        if self._conflict_classes is None:
            parent = list(range(len(self.transitions)))

            def find(x: int) -> int:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            def union(a: int, b: int) -> None:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[rb] = ra

            by_place: dict[int, list[int]] = {}
            for t in self.transitions:
                for p in t.inputs:
                    by_place.setdefault(p, []).append(t.index)
            for members in by_place.values():
                for other in members[1:]:
                    union(members[0], other)
            classes: dict[int, list[int]] = {}
            for t in self.transitions:
                classes.setdefault(find(t.index), []).append(t.index)
            self._conflict_classes = sorted(classes.values())
        return self._conflict_classes

    def validate(self) -> None:
        """Raise :class:`ModelError` for structurally broken nets."""
        for t in self.transitions:
            if not t.inputs:
                raise ModelError(
                    f"transition {t.name!r} has no input places; it would "
                    "fire unboundedly")

    def __repr__(self) -> str:
        return (f"Net({self.name!r}, places={len(self.places)}, "
                f"transitions={len(self.transitions)})")
