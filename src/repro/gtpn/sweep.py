"""Structure-sharing sweep analysis: build the graph once, re-time it.

Chapter 6 evaluates each architecture by re-solving the *same* GTPN
over grids of component timings (Tables 6.4-6.23).  The state space of
such a sweep is invariant: timing enters the models only through
frequency weights (the delay-1 geometric activity pairs of
``approximations.activity_pair``), so every grid point shares one
reachability graph and only the branch probabilities of the embedded
Markov chain change.

This module exploits that.  A traced reachability build records, next
to the ordinary graph, a :class:`SweepSkeleton`: for every branch
probability the exact *program* of normalized-frequency factors whose
products and sums produced it.  Re-timing a skeleton under a new net
re-evaluates only those factors and replays the programs **in the same
floating-point operation order** as a from-scratch build, so a re-timed
graph is bit-identical to the one `analyze` would have built — the
reproducibility contract (identical figure values at any cache state
or job count) survives.

Replay is only valid while the new timings keep the *support* of every
choice unchanged.  Each factor therefore records which enabled
transitions had positive frequency; if a new timing flips any of those
signs (or changes a state-dependent delay), replay raises
:class:`SkeletonMismatch` and the caller falls back to a full build.
Static-delay changes also force a rebuild: remaining-tick counters are
part of the states themselves.

Entry points:

* :func:`sweep_analyze` — analyze a whole parameter grid, building the
  skeleton once per structure and re-timing per point; fans out over
  :func:`repro.perf.backends.map_sweep` when worker processes pay off.
* :class:`SweepSolver` — the underlying per-structure solver, with
  per-stage timing stats (build / re-time / solve) for the benchmarks.
* :func:`acquire_graph` — used by :func:`repro.gtpn.analyze` so even
  single-point analyses share skeletons through the analysis cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro import obs
from repro.errors import AnalysisError, StateSpaceLimitError
from repro.gtpn.net import Context, Net
from repro.gtpn.packed import (SkeletonMismatch, compile_packed,
                               packed_build, packed_retime)
from repro.gtpn.reachability import (DEFAULT_MAX_STATES,
                                     ReachabilityGraph, _check_stochastic)
from repro.gtpn.state import ExhaustiveResolver, State, TickEngine
from repro.obs.clock import perf_now
from repro.perf.cache import cache_enabled, fingerprint_net, get_cache

__all__ = [
    "SkeletonMismatch", "SweepSkeleton", "SweepSolver", "SweepStats",
    "acquire_graph", "retime", "sweep_analyze", "traced_build",
]

_USE_GLOBAL = object()      # sentinel: "global cache when enabled"


# ----------------------------------------------------------------------
# the skeleton and its tracer
# ----------------------------------------------------------------------

@dataclass
class SweepSkeleton:
    """Everything timing-independent about one net structure.

    ``factors`` entries are ``(chosen, enabled, mask, ctx)``: one
    conflict-class selection — *chosen* transition out of the *enabled*
    members whose positive-frequency pattern was *mask*, evaluated
    under context snapshot *ctx* (``(marking, inflight_counts)``, or
    ``None`` when every member's frequency is static).  ``chosen is
    None`` marks a class whose enabled members all had zero frequency
    (selects nothing; replay re-verifies the zeros).

    ``progs`` entries are factor-id programs: a tuple of settle rounds,
    each a tuple of factor ids, multiplied exactly as the engine
    multiplied them.  ``state_branches[i]`` lists, per successor branch
    of state *i*, ``(j, starts_nonzero, prog_ids)`` — the prog values
    sum (in order) to the branch probability.

    Skeletons are shared (cached, possibly across processes): treat
    every field as read-only.
    """

    structure: str                      # structure fingerprint
    n_places: int
    n_transitions: int
    static_delays: tuple                # per transition: int | None
    factors: list
    delay_checks: list                  # (t_idx, marking, counts, expected)
    progs: list
    states: list                        # list[State]
    state_branches: list
    initial_branches: list              # [(i, prog_ids)]
    inflight_matrix: np.ndarray
    closed_classes: int

    @property
    def state_count(self) -> int:
        return len(self.states)

    # the lazily-built CSR replay plan (`retime`) is a per-process
    # derived structure: strip it from pickles so cached skeletons stay
    # compact and old cache entries stay loadable
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_csr_plan", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class _Tracer:
    """Records factor/program structure during a traced build.

    Duck-typed against the hooks in :class:`repro.gtpn.state.TickEngine`
    (``factor_token`` / ``factor`` / ``null_class`` / ``delay_check`` /
    ``prog``); the engine stashes per-settle branch programs in
    ``branch_progs``.
    """

    def __init__(self) -> None:
        self.factors: list = []
        self._factor_ids: dict = {}
        self.delay_checks: list = []
        self._delay_seen: set = set()
        self.progs: list = []
        self._prog_ids: dict = {}
        self.branch_progs: list = []

    def factor_token(self, enabled, mask, ctx_key):
        return (enabled, mask, ctx_key)

    def factor(self, token, chosen) -> int:
        enabled, mask, ctx_key = token
        key = (chosen, enabled, mask, ctx_key)
        fid = self._factor_ids.get(key)
        if fid is None:
            fid = self._factor_ids[key] = len(self.factors)
            self.factors.append(key)
        return fid

    def null_class(self, enabled, mask, ctx_key) -> None:
        key = (None, enabled, mask, ctx_key)
        if key not in self._factor_ids:
            self._factor_ids[key] = len(self.factors)
            self.factors.append(key)

    def delay_check(self, t_idx, marking, counts, value) -> None:
        key = (t_idx, marking, counts)
        if key not in self._delay_seen:
            self._delay_seen.add(key)
            self.delay_checks.append((t_idx, marking, counts, value))

    def prog(self, rounds) -> int:
        pid = self._prog_ids.get(rounds)
        if pid is None:
            pid = self._prog_ids[rounds] = len(self.progs)
            self.progs.append(rounds)
        return pid


# ----------------------------------------------------------------------
# traced build
# ----------------------------------------------------------------------

def traced_build(net: Net, *, max_states: int = DEFAULT_MAX_STATES,
                 structure: str | None = None,
                 ) -> tuple[ReachabilityGraph, SweepSkeleton]:
    """Full BFS exactly as ``build_reachability_graph``, plus a skeleton.

    The returned graph is bit-identical to an untraced build (the trace
    only observes; every float operation is unchanged).
    """
    if structure is None:
        fingerprint = fingerprint_net(net)
        structure = fingerprint.structure if fingerprint else ""
    engine = TickEngine(net)
    resolver = ExhaustiveResolver()
    tracer = _Tracer()
    n_transitions = len(net.transitions)

    index: dict[State, int] = {}
    states: list[State] = []
    rows: list[dict[int, float]] = []
    start_rows: list[list[float]] = []
    state_branches: list = []
    explored = 0

    def intern(state: State) -> int:
        found = index.get(state)
        if found is None:
            found = len(states)
            index[state] = found
            states.append(state)
            rows.append({})
            start_rows.append([0.0] * n_transitions)
            state_branches.append(None)
            if len(states) > max_states:
                raise StateSpaceLimitError(
                    net.name, len(states), len(states) - explored,
                    max_states)
        return found

    initial: dict[int, float] = {}
    initial_records: list = []
    for branch, prog_ids in zip(engine.initial_branches(resolver, tracer),
                                tracer.branch_progs):
        i = intern(branch.state)
        initial[i] = initial.get(i, 0.0) + branch.probability
        initial_records.append((i, tuple(prog_ids)))

    while explored < len(states):
        i = explored
        explored += 1
        row = rows[i]
        start_row = start_rows[i]
        records: list = []
        for branch, prog_ids in zip(engine.tick(states[i], resolver,
                                                tracer),
                                    tracer.branch_progs):
            j = intern(branch.state)
            prob = branch.probability
            row[j] = row.get(j, 0.0) + prob
            starts_nz: list = []
            for t_idx, count in enumerate(branch.starts):
                if count:
                    start_row[t_idx] += prob * count
                    starts_nz.append((t_idx, count))
            records.append((j, tuple(starts_nz), tuple(prog_ids)))
        state_branches[i] = records

    n_states = len(states)
    starts_matrix = np.asarray(start_rows, dtype=float).reshape(
        n_states, n_transitions)
    inflight_matrix = np.zeros((n_states, n_transitions))
    for i, state in enumerate(states):
        for t_idx, _remaining in state.inflight:
            inflight_matrix[i, t_idx] += 1.0

    _check_stochastic(net, rows)
    graph = ReachabilityGraph(net=net, states=states, probabilities=rows,
                              initial=initial,
                              expected_starts=list(starts_matrix),
                              inflight_counts=list(inflight_matrix))
    from repro.gtpn.markov import _closed_class_count, transition_matrix
    skeleton = SweepSkeleton(
        structure=structure,
        n_places=len(net.places),
        n_transitions=n_transitions,
        static_delays=tuple(engine._static_delay),
        factors=tracer.factors,
        delay_checks=tracer.delay_checks,
        progs=tracer.progs,
        states=states,
        state_branches=state_branches,
        initial_branches=initial_records,
        inflight_matrix=inflight_matrix,
        closed_classes=_closed_class_count(transition_matrix(graph)))
    return graph, skeleton


# ----------------------------------------------------------------------
# re-timing replay
# ----------------------------------------------------------------------

def retime(skeleton: SweepSkeleton, net: Net, *,
           max_states: int = DEFAULT_MAX_STATES) -> ReachabilityGraph:
    """Rebuild the embedded chain of *net* from a shared skeleton.

    Raises :class:`SkeletonMismatch` when the skeleton does not apply
    (different shape, a static delay changed, a dynamic delay or a
    frequency-support pattern changed) — callers fall back to
    :func:`traced_build`, which reproduces full-analyze behaviour.
    """
    if (len(net.places) != skeleton.n_places
            or len(net.transitions) != skeleton.n_transitions):
        raise SkeletonMismatch("net shape differs")
    if skeleton.state_count > max_states:
        raise SkeletonMismatch("skeleton exceeds max_states")
    net.validate()
    transitions = net.transitions
    static_delay = tuple(
        None if callable(t.delay) else int(t.delay) for t in transitions)
    if static_delay != skeleton.static_delays:
        # remaining-tick counters live inside the states: a static
        # firing-time change moves the state space itself
        raise SkeletonMismatch("static delays differ")
    static_freq = [
        None if callable(t.frequency) else float(t.frequency)
        for t in transitions]

    for t_idx, marking, counts, expected in skeleton.delay_checks:
        ctx = Context(net, marking, counts)
        if transitions[t_idx].eval_delay(ctx) != expected:
            raise SkeletonMismatch("state-dependent delay changed")

    values = [0.0] * len(skeleton.factors)
    for fid, (chosen, enabled, mask, ctx_key) in enumerate(
            skeleton.factors):
        ctx = None
        freqs: list[float] = []
        for k, t_idx in enumerate(enabled):
            f = static_freq[t_idx]
            if f is None:
                if ctx is None:
                    ctx = Context(net, ctx_key[0], ctx_key[1])
                f = transitions[t_idx].eval_frequency(ctx)
            if (f > 0) != mask[k]:
                raise SkeletonMismatch("frequency support changed")
            freqs.append(f)
        if chosen is None:
            continue            # null class: the zeros were verified
        # same arithmetic as _select_per_class: positives in enabled
        # order, python sum from 0, chosen weight over the total
        total = sum(f for f in freqs if f > 0)
        values[fid] = freqs[enabled.index(chosen)] / total

    prog_values = [0.0] * len(skeleton.progs)
    for pid, rounds in enumerate(skeleton.progs):
        p = 1.0
        for fids in rounds:
            # one settle round: the engine folds class factors into the
            # round's branch probability left-to-right from 1.0 ...
            bp = 1.0
            for fid in fids:
                bp = bp * values[fid]
            # ... then multiplies it onto the work item's probability
            p = p * bp
        prog_values[pid] = p

    plan = getattr(skeleton, "_csr_plan", None)
    if plan is None:
        plan = _build_csr_plan(skeleton)
        skeleton._csr_plan = plan

    # replay the branch sums on the shared CSR pattern.  Padding the
    # prog-id matrix with a 0.0-valued sentinel and accumulating with
    # np.add.at (which applies additions one index at a time, in
    # order) reproduces the historical per-row dict accumulation bit
    # for bit — without rebuilding row dicts at every grid point.
    pv_ext = np.append(np.asarray(prog_values), 0.0)
    bv = pv_ext[plan.b_prog[:, 0]]
    for k in range(1, plan.b_prog.shape[1]):
        bv = bv + pv_ext[plan.b_prog[:, k]]
    n_states = skeleton.state_count
    data = np.zeros(len(plan.indices))
    np.add.at(data, plan.b_entry, bv)
    n_transitions = skeleton.n_transitions
    starts_matrix = np.zeros((n_states, n_transitions))
    np.add.at(starts_matrix, (plan.s_src, plan.s_t),
              bv[plan.s_branch] * plan.s_cnt)
    iv = pv_ext[plan.i_prog[:, 0]]
    for k in range(1, plan.i_prog.shape[1]):
        iv = iv + pv_ext[plan.i_prog[:, k]]
    init_vec = np.zeros(n_states)
    np.add.at(init_vec, plan.i_dst, iv)

    import scipy.sparse as sp
    from repro.gtpn.packed import _check_stochastic_csr
    matrix = sp.csr_matrix((data, plan.indices, plan.indptr),
                           shape=(n_states, n_states), copy=False)
    _check_stochastic_csr(net, matrix)
    return ReachabilityGraph(
        net=net, states=skeleton.states, matrix=matrix,
        starts_matrix=starts_matrix, init_vec=init_vec,
        inflight_counts=list(skeleton.inflight_matrix))


@dataclass
class _CsrPlan:
    """Frozen replay order of a skeleton's branch accumulations.

    Derived once per skeleton per process (see ``retime``): the CSR
    sparsity pattern plus, for every branch, its program ids (padded
    with a sentinel whose value is 0.0) and its entry index, in the
    exact record order the historical dict assembly used.
    """

    b_prog: np.ndarray      # (n_branches, K) prog ids, sentinel-padded
    b_entry: np.ndarray     # (n_branches,) CSR entry index
    s_branch: np.ndarray    # nonzero starts, in record order:
    s_src: np.ndarray       # branch, source state, transition, count
    s_t: np.ndarray
    s_cnt: np.ndarray
    i_dst: np.ndarray       # initial records: state and prog-id rows
    i_prog: np.ndarray
    indices: np.ndarray     # the shared CSR pattern
    indptr: np.ndarray


def _build_csr_plan(skeleton: SweepSkeleton) -> _CsrPlan:
    sentinel = len(skeleton.progs)
    n = skeleton.state_count

    def _prog_matrix(rows: list) -> np.ndarray:
        width = max((len(r) for r in rows), default=0)
        out = np.full((len(rows), max(width, 1)), sentinel,
                      dtype=np.int64)
        for k, r in enumerate(rows):
            out[k, :len(r)] = r
        return out

    b_src: list[int] = []
    b_dst: list[int] = []
    b_progs: list = []
    s_branch: list[int] = []
    s_src: list[int] = []
    s_t: list[int] = []
    s_cnt: list[int] = []
    for i, records in enumerate(skeleton.state_branches):
        for j, starts_nz, prog_ids in records:
            b = len(b_src)
            b_src.append(i)
            b_dst.append(j)
            b_progs.append(prog_ids)
            for t_idx, count in starts_nz:
                s_branch.append(b)
                s_src.append(i)
                s_t.append(t_idx)
                s_cnt.append(count)

    ekey = np.array(b_src, dtype=np.int64) * (n + 1) \
        + np.array(b_dst, dtype=np.int64)
    entries, b_entry = np.unique(ekey, return_inverse=True)
    indices = (entries % (n + 1)).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, entries // (n + 1) + 1, 1)
    indptr = np.cumsum(indptr)

    return _CsrPlan(
        b_prog=_prog_matrix(b_progs),
        b_entry=b_entry.astype(np.int64),
        s_branch=np.array(s_branch, dtype=np.int64),
        s_src=np.array(s_src, dtype=np.int64),
        s_t=np.array(s_t, dtype=np.int64),
        s_cnt=np.array(s_cnt, dtype=np.int64),
        i_dst=np.array([i for i, _ in skeleton.initial_branches],
                       dtype=np.int64),
        i_prog=_prog_matrix(
            [prog_ids for _, prog_ids in skeleton.initial_branches]),
        indices=indices, indptr=indptr)


def acquire_graph(net: Net, structure: str, max_states: int, store,
                  reduction: str = "none",
                  ) -> tuple[ReachabilityGraph, int]:
    """Graph for *net* through the skeleton tier of *store*.

    Returns ``(graph, closed_class_count)``.  Used by
    :func:`repro.gtpn.analyze` so plain per-point analyses share
    structure work with sweeps through the same cache.  Static nets
    ride the packed engine (and its skeleton kind); nets with callable
    attributes use the object skeleton, keeping its historical cache
    key.
    """
    pnet = compile_packed(net, reduction)
    if pnet is not None:
        kind = f"packed:{reduction}"
        skeleton = store.get_structure(structure, kind=kind)
        if skeleton is not None:
            try:
                graph = packed_retime(skeleton, net,
                                      max_states=max_states)
                return graph, skeleton.closed_class_count()
            except SkeletonMismatch:
                pass
        graph, skeleton = packed_build(net, pnet, max_states=max_states,
                                       structure=structure,
                                       reduction=reduction)
        store.put_structure(structure, skeleton, kind=kind)
        return graph, skeleton.closed_class_count()
    if reduction != "none":
        raise AnalysisError(
            f"net {net.name!r}: reduction {reduction!r} requires the "
            "packed engine, which needs static delays and frequencies "
            "(state-dependent attributes force the object walk)")
    skeleton = store.get_structure(structure)
    if skeleton is not None:
        try:
            graph = retime(skeleton, net, max_states=max_states)
            return graph, skeleton.closed_classes
        except SkeletonMismatch:
            pass
    graph, skeleton = traced_build(net, max_states=max_states,
                                   structure=structure)
    store.put_structure(structure, skeleton)
    return graph, skeleton.closed_classes


# ----------------------------------------------------------------------
# the sweep solver and grid entry point
# ----------------------------------------------------------------------

@dataclass
class SweepStats:
    """Per-stage accounting of a sweep (seconds and point counts)."""

    build_s: float = 0.0        # traced reachability builds
    retime_s: float = 0.0       # skeleton replays
    solve_s: float = 0.0        # stationary solves
    skeleton_builds: int = 0
    points_retimed: int = 0
    payload_hits: int = 0
    uncacheable: int = 0        # nets without a fingerprint
    mismatches: int = 0         # replays invalidated by a timing change
    csr_plans_built: int = 0    # object-skeleton CSR replay plans made
    csr_plan_reuses: int = 0    # retimes that reused an existing plan

    def as_dict(self) -> dict:
        return asdict(self)


class SweepSolver:
    """Analyze a stream of nets, sharing structure work across them.

    Keeps its own skeleton table (so structure sharing works even with
    the global cache disabled — a cold sweep is still one build plus
    N-1 replays) and optionally rides an :class:`AnalysisCache` for
    payload hits and cross-process skeleton sharing.  Results are
    bit-identical to per-point :func:`repro.gtpn.analyze`.
    """

    def __init__(self, *, method: str = "auto",
                 max_states: int = DEFAULT_MAX_STATES,
                 cache: Any = _USE_GLOBAL,
                 reduction: str | None = None):
        from repro import config
        from repro.gtpn import analysis as _analysis
        self._analysis = _analysis
        self.method = method
        self.max_states = max_states
        self.reduction = config.reduction() if reduction is None \
            else config.normalize_reduction(reduction)
        if cache is _USE_GLOBAL:
            cache = get_cache() if cache_enabled() else None
        self.cache = cache
        #: keyed ``(structure, kind)``: one structure can hold an
        #: object skeleton and packed skeletons per reduction mode
        self._skeletons: dict[tuple, Any] = {}
        self.stats = SweepStats()

    def analyze(self, net: Net):
        """Solve one net; identical contract to ``repro.gtpn.analyze``."""
        fingerprint = fingerprint_net(net)
        if fingerprint is None:
            # uncacheable attribute: behave exactly like plain analyze
            self.stats.uncacheable += 1
            started = perf_now()
            result = self._analysis.analyze(
                net, method=self.method, max_states=self.max_states,
                cache=self.cache, reduction=self.reduction)
            self.stats.build_s += perf_now() - started
            return result
        key = (fingerprint.structure, fingerprint.timing, self.method,
               self.reduction)
        if self.cache is not None:
            payload = self.cache.get(key)
            if payload is not None:
                net.validate()
                self.stats.payload_hits += 1
                return self._analysis._rebind(net, payload)
        graph, closed = self._graph_for(net, fingerprint.structure)
        started = perf_now()
        with obs.span("gtpn.solve", states=graph.state_count):
            pi = self._analysis.stationary_distribution(
                graph, method=self.method, closed_classes=closed)
        result = self._analysis.AnalysisResult(net=net, graph=graph,
                                               pi=pi)
        self.stats.solve_s += perf_now() - started
        if self.cache is not None:
            self.cache.put(key, self._analysis._payload(result))
        return result

    def _graph_for(self, net: Net, structure: str,
                   ) -> tuple[ReachabilityGraph, int]:
        pnet = compile_packed(net, self.reduction)
        if pnet is not None:
            return self._packed_graph_for(net, pnet, structure)
        if self.reduction != "none":
            raise AnalysisError(
                f"net {net.name!r}: reduction {self.reduction!r} "
                "requires the packed engine, which needs static delays "
                "and frequencies (state-dependent attributes force the "
                "object walk)")
        skel_key = (structure, "object")
        skeleton = self._skeletons.get(skel_key)
        if skeleton is None and self.cache is not None:
            skeleton = self.cache.get_structure(structure)
        if skeleton is not None:
            try:
                had_plan = getattr(skeleton, "_csr_plan", None) \
                    is not None
                started = perf_now()
                with obs.span("gtpn.retime"):
                    graph = retime(skeleton, net,
                                   max_states=self.max_states)
                self.stats.retime_s += perf_now() - started
                self.stats.points_retimed += 1
                if had_plan:
                    self.stats.csr_plan_reuses += 1
                else:
                    self.stats.csr_plans_built += 1
                self._skeletons[skel_key] = skeleton
                return graph, skeleton.closed_classes
            except SkeletonMismatch:
                self.stats.mismatches += 1
        started = perf_now()
        with obs.span("gtpn.build"):
            graph, skeleton = traced_build(net,
                                           max_states=self.max_states,
                                           structure=structure)
        self.stats.build_s += perf_now() - started
        self.stats.skeleton_builds += 1
        self._skeletons[skel_key] = skeleton
        if self.cache is not None:
            self.cache.put_structure(structure, skeleton)
        return graph, skeleton.closed_classes

    def _packed_graph_for(self, net: Net, pnet, structure: str,
                          ) -> tuple[ReachabilityGraph, int]:
        kind = f"packed:{self.reduction}"
        skel_key = (structure, kind)
        skeleton = self._skeletons.get(skel_key)
        if skeleton is None and self.cache is not None:
            skeleton = self.cache.get_structure(structure, kind=kind)
        if skeleton is not None:
            try:
                started = perf_now()
                with obs.span("gtpn.retime"):
                    graph = packed_retime(skeleton, net,
                                          max_states=self.max_states)
                self.stats.retime_s += perf_now() - started
                self.stats.points_retimed += 1
                self._skeletons[skel_key] = skeleton
                return graph, skeleton.closed_class_count()
            except SkeletonMismatch:
                self.stats.mismatches += 1
        started = perf_now()
        with obs.span("gtpn.build"):
            graph, skeleton = packed_build(
                net, pnet, max_states=self.max_states,
                structure=structure, reduction=self.reduction)
        self.stats.build_s += perf_now() - started
        self.stats.skeleton_builds += 1
        self._skeletons[skel_key] = skeleton
        if self.cache is not None:
            self.cache.put_structure(structure, skeleton, kind=kind)
        return graph, skeleton.closed_class_count()


#: per-worker-process solvers, keyed by (method, max_states,
#: reduction): skeleton reuse persists across the chunks a pooled
#: worker executes.
_WORKER_SOLVERS: dict = {}


def _worker_solver(method: str, max_states: int,
                   reduction: str = "none") -> SweepSolver:
    solver = _WORKER_SOLVERS.get((method, max_states, reduction))
    if solver is None:
        solver = SweepSolver(method=method, max_states=max_states,
                             reduction=reduction)
        _WORKER_SOLVERS[(method, max_states, reduction)] = solver
    return solver


def _sweep_task(build: Callable, point, star: bool, method: str,
                max_states: int, reduction: str = "none") -> dict:
    """One pooled grid point: build, solve, return the unbound payload.

    Runs in a worker process; nets and results do not pickle (closures,
    net back-references), so the worker ships the same net-free payload
    the analysis cache stores and the parent re-binds it.
    """
    net = build(*point) if star else build(point)
    result = _worker_solver(method, max_states, reduction).analyze(net)
    from repro.gtpn.analysis import _payload
    return _payload(result)


def sweep_analyze(build, grid: Iterable | None = None, *,
                  star: bool = True, method: str = "auto",
                  max_states: int = DEFAULT_MAX_STATES,
                  jobs: int | None = None, cache: Any = _USE_GLOBAL,
                  solver: SweepSolver | None = None,
                  oversubscribe: bool = False,
                  reduction: str | None = None) -> list:
    """Analyze a parameter grid, building each structure once.

    Two call shapes::

        sweep_analyze(nets)                  # iterable of built Nets
        sweep_analyze(build_fn, grid)        # builder + grid points

    With a builder, each grid point is ``build_fn(*point)`` (or
    ``build_fn(point)`` when ``star=False``) and the sweep may fan out
    over worker processes (``jobs`` / ``REPRO_JOBS``, subject to the
    pool's serial-fallback policy); workers return net-free payloads
    that are re-bound to parent-built nets, so results — and therefore
    figure and table values — are bit-identical to a serial run and to
    per-point :func:`repro.gtpn.analyze`.

    Pass ``solver`` to reuse a :class:`SweepSolver` (and read its
    per-stage stats afterwards); otherwise one is created with
    ``cache`` (default: the global analysis cache when enabled).
    """
    if solver is None:
        solver = SweepSolver(method=method, max_states=max_states,
                             cache=cache, reduction=reduction)
    if grid is None:
        return [solver.analyze(net) for net in build]
    points = list(grid)
    if not points:
        return []

    from repro.perf.backends import map_sweep, plan_jobs
    n_jobs, _reason = plan_jobs(len(points), jobs=jobs,
                                oversubscribe=oversubscribe)
    if n_jobs > 1:
        payloads = map_sweep(
            _sweep_task,
            [(build, point, star, method, max_states, solver.reduction)
             for point in points],
            jobs=jobs, star=True, oversubscribe=oversubscribe)
        results = []
        for point, payload in zip(points, payloads):
            net = build(*point) if star else build(point)
            net.validate()
            results.append(solver._analysis._rebind(net, payload))
        return results
    nets = (build(*point) if star else build(point) for point in points)
    return [solver.analyze(net) for net in nets]
