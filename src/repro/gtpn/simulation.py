"""Monte Carlo simulation of a GTPN.

Runs the same tick semantics as the exact analyzer but samples one
branch per tick.  Used to cross-validate the analyzer on small nets and
to handle models whose state space is too large for exact solution.

:func:`simulate_with_confidence` adds the standard batch-means output
analysis: the measurement horizon splits into batches whose means give
a Student-t confidence interval for the throughput.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.gtpn.net import Net
from repro.gtpn.state import SamplingResolver, TickEngine
from repro.seeding import resolve_seed

#: two-sided Student-t 97.5% quantiles for df = 1..30 (95% CIs).
_T_975 = (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
          2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
          2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
          2.060, 2.056, 2.052, 2.048, 2.045, 2.042)


@dataclass
class SimulationResult:
    """Time-averaged measurements over the simulated horizon."""

    net: Net
    ticks: int
    warmup: int
    _inflight_time: dict[int, float] = field(default_factory=dict)
    _starts: dict[int, int] = field(default_factory=dict)
    _place_time: dict[int, float] = field(default_factory=dict)

    def resource_usage(self, resource: str) -> float:
        """Mean concurrent usage of *resource* over the measured ticks."""
        usage = 0.0
        for t in self.net.transitions:
            if resource in t.all_resources:
                usage += self._inflight_time.get(t.index, 0.0)
                if t.immediate:
                    usage += self._starts.get(t.index, 0)
        return usage / self.ticks

    def firing_rate(self, transition: str) -> float:
        index = self.net.transition_index(transition)
        return self._starts.get(index, 0) / self.ticks

    def mean_tokens(self, place: str) -> float:
        index = self.net.place_index(place)
        return self._place_time.get(index, 0.0) / self.ticks

    def throughput(self, resource: str = "lambda") -> float:
        return self.resource_usage(resource)


@dataclass
class ConfidenceResult:
    """Batch-means estimate of a resource's usage."""

    resource: str
    mean: float
    half_width: float          # 95% confidence half-width
    batch_means: list[float]

    @property
    def interval(self) -> tuple[float, float]:
        return self.mean - self.half_width, self.mean + self.half_width

    def contains(self, value: float) -> bool:
        low, high = self.interval
        return low <= value <= high


def simulate_with_confidence(net: Net, *, resource: str = "lambda",
                             batches: int = 10, batch_ticks: int = 20_000,
                             warmup: int = 5_000,
                             seed: int | None = None) -> ConfidenceResult:
    """Batch-means 95% confidence interval for a resource usage.

    Runs ``batches`` consecutive batches of ``batch_ticks`` after the
    warmup; each batch's time-average usage is one observation.
    """
    if batches < 2:
        raise AnalysisError("need at least two batches")
    if not 1 <= batches - 1 <= len(_T_975):
        raise AnalysisError(f"at most {len(_T_975) + 1} batches")
    if batch_ticks <= 0:
        raise AnalysisError(
            f"batch_ticks must be positive, got {batch_ticks}")
    if warmup < 0:
        raise AnalysisError(f"warmup must be >= 0, got {warmup}")
    engine = TickEngine(net)
    resolver = SamplingResolver(random.Random(resolve_seed(seed)))
    branches = engine.initial_branches(resolver)
    state = branches[0].state

    interesting = {t.index for t in net.transitions
                   if resource in t.all_resources}
    if not interesting:
        raise AnalysisError(f"no transition carries resource "
                            f"{resource!r}")
    immediates = {t.index for t in net.transitions
                  if resource in t.all_resources and t.immediate}

    def advance(ticks_to_run: int, measure: bool) -> float:
        nonlocal state
        usage = 0.0
        for _ in range(ticks_to_run):
            if measure:
                for t_idx, _remaining in state.inflight:
                    if t_idx in interesting:
                        usage += 1.0
            branch = engine.tick(state, resolver)[0]
            if measure:
                for t_idx in immediates:
                    usage += branch.starts[t_idx]
            state = branch.state
        return usage / ticks_to_run if measure else 0.0

    advance(warmup, measure=False)
    batch_means = [advance(batch_ticks, measure=True)
                   for _ in range(batches)]
    mean = sum(batch_means) / batches
    variance = sum((b - mean) ** 2 for b in batch_means) / (batches - 1)
    half_width = _T_975[batches - 2] * math.sqrt(variance / batches)
    return ConfidenceResult(resource=resource, mean=mean,
                            half_width=half_width,
                            batch_means=batch_means)


def simulate(net: Net, *, ticks: int, warmup: int = 0,
             seed: int | None = None) -> SimulationResult:
    """Simulate *net* for ``warmup + ticks`` ticks; measure the tail."""
    if ticks <= 0:
        raise AnalysisError("ticks must be positive")
    if warmup < 0:
        # range(warmup + ticks) would silently shorten the measured
        # horizon while SimulationResult still divides by the full
        # ``ticks`` — every time-average would be biased low.
        raise AnalysisError(f"warmup must be >= 0, got {warmup}")
    engine = TickEngine(net)
    resolver = SamplingResolver(random.Random(resolve_seed(seed)))
    result = SimulationResult(net=net, ticks=ticks, warmup=warmup)

    branches = engine.initial_branches(resolver)
    state = branches[0].state
    for now in range(warmup + ticks):
        measured = now >= warmup
        if measured:
            for t_idx, _remaining in state.inflight:
                result._inflight_time[t_idx] = \
                    result._inflight_time.get(t_idx, 0.0) + 1.0
            for p_idx, count in enumerate(state.marking):
                if count:
                    result._place_time[p_idx] = \
                        result._place_time.get(p_idx, 0.0) + count
        branch = engine.tick(state, resolver)[0]
        if measured:
            for t_idx, count in enumerate(branch.starts):
                if count:
                    result._starts[t_idx] = \
                        result._starts.get(t_idx, 0) + count
        state = branch.state
    return result
