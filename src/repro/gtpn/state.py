"""GTPN execution semantics: states, ticks, and probabilistic branching.

A *state* is a post-decision snapshot of the net taken just after new
firings have been chosen for a tick:

* ``marking`` — tokens remaining in each place (inputs of in-flight
  firings already removed),
* ``inflight`` — a multiset of ``(transition, remaining_ticks)`` pairs
  for firings in progress.

One tick proceeds in two phases (DESIGN.md, "Firing semantics"):

1. **advance** — every in-flight firing counts down one tick; firings
   reaching zero deposit their output tokens.
2. **settle rounds** — repeatedly, every conflict class with enabled
   transitions (of positive frequency) selects one, with probability
   proportional to its frequency.  A selected *immediate* (delay-0)
   transition fires instantly, depositing its outputs within the same
   tick; a selected *timed* transition starts firing and goes in
   flight.  Rounds repeat until no class can select.

   Immediate and timed transitions resolve their conflicts *together*
   by frequency — the thesis's nets rely on this, e.g. the completion
   choice of the contention model (Table 6.3) pits a delay-0
   "continue" against a delay-1 "complete" with frequencies
   ``1 - 1/b`` and ``1/b``.  Repeating selection until exhaustion
   gives infinite-server behaviour when no resource place serializes a
   class (several clients independently waiting out a surrogate server
   delay) and processor sharing when one does (the single Host token
   of the architecture models).

The same engine drives both the exact analyzer (exploring every branch
with its probability) and the Monte Carlo simulator (sampling one
branch), via the :class:`Resolver` strategy.
"""

from __future__ import annotations

import random
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator, Sequence

from repro.errors import AnalysisError
from repro.gtpn.net import Context, Net

#: Safety cap on settle rounds within a single tick (guards unbounded
#: zero-time loops and runaway models).
MAX_IMMEDIATE_ROUNDS = 1000


@dataclass(frozen=True)
class State:
    """Canonical post-decision net state."""

    marking: tuple[int, ...]
    #: sorted tuple of (transition_index, remaining_ticks) with repeats
    #: for multiplicity.
    inflight: tuple[tuple[int, int], ...]

    def inflight_counts(self, n_transitions: int) -> list[int]:
        counts = [0] * n_transitions
        for t_idx, _remaining in self.inflight:
            counts[t_idx] += 1
        return counts


class Resolver:
    """Strategy deciding how probabilistic choices branch.

    ``choose`` receives weighted options and returns the branches to
    follow, each with the probability mass assigned to it.

    ``deterministic`` marks resolvers whose choices depend only on the
    options (not on hidden state such as an RNG); the engine memoizes
    tick successors only under deterministic resolvers.
    """

    deterministic = False

    def choose(self, options: Sequence[tuple[float, object]],
               ) -> list[tuple[float, object]]:
        raise NotImplementedError


class ExhaustiveResolver(Resolver):
    """Follow every branch with its exact probability (analyzer)."""

    deterministic = True

    def choose(self, options):
        return list(options)


class SamplingResolver(Resolver):
    """Sample a single branch (Monte Carlo simulator).

    Per-class cumulative weights are memoized across calls: the Monte
    Carlo inner loop revisits the same few weighted selections for the
    lifetime of a run, so the re-normalization that ``random.choices``
    performs on every call is paid once per distinct selection
    instead.  Sampling draws through the same ``random() * total``
    + bisect scheme as ``random.choices``, so seeded runs reproduce
    the exact pre-optimization streams.
    """

    def __init__(self, rng: random.Random):
        self._rng = rng
        #: options-tuple -> (cum_weights, payloads)
        self._cum: dict[tuple, tuple[list[float], list]] = {}

    def choose(self, options):
        key = tuple(options)
        cached = self._cum.get(key)
        if cached is None:
            cum = list(accumulate(p for p, _payload in options))
            payloads = [payload for _p, payload in options]
            cached = self._cum[key] = (cum, payloads)
        cum, payloads = cached
        pick = bisect(cum, self._rng.random() * cum[-1], 0,
                      len(cum) - 1)
        return [(1.0, payloads[pick])]


@dataclass
class Branch:
    """One outcome of executing a tick: a successor with probability.

    ``starts`` counts, per transition index, how many firings started
    during the tick (used to compute firing rates of immediate
    transitions, whose activity never shows up in ``inflight``).
    """

    probability: float
    state: State
    starts: tuple[int, ...]


class TickEngine:
    """Executes GTPN ticks over a fixed net."""

    def __init__(self, net: Net):
        net.validate()
        self.net = net
        self._classes = net.conflict_classes()
        # hot-path precomputation: arc lists, static delays/frequencies
        self._in_arcs = [tuple(t.inputs.items()) for t in net.transitions]
        self._out_arcs = [tuple(t.outputs.items())
                          for t in net.transitions]
        self._static_freq = [
            None if callable(t.frequency) else float(t.frequency)
            for t in net.transitions]
        self._static_delay = [
            None if callable(t.delay) else int(t.delay)
            for t in net.transitions]
        #: state -> successor branches, for deterministic resolvers
        #: (tick is a pure function of the state in that case).
        self._tick_memo: dict[State, tuple[Branch, ...]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def initial_branches(self, resolver: Resolver,
                         tracer=None) -> list[Branch]:
        """Settle the initial marking into post-decision states."""
        marking = list(self.net.initial_marking)
        return self._settle(marking, [], resolver, tracer)

    def tick(self, state: State, resolver: Resolver,
             tracer=None) -> list[Branch]:
        """Execute one tick from *state*, returning successor branches.

        Under a deterministic resolver the branch list is memoized per
        state; callers must treat the returned branches as read-only.
        A *tracer* (see :mod:`repro.gtpn.sweep`) records how each
        branch probability was assembled; traced ticks bypass the memo
        so every branch is observed.
        """
        if resolver.deterministic and tracer is None:
            cached = self._tick_memo.get(state)
            if cached is None:
                cached = tuple(self._tick(state, resolver))
                self._tick_memo[state] = cached
            return list(cached)
        return self._tick(state, resolver, tracer)

    def _tick(self, state: State, resolver: Resolver,
              tracer=None) -> list[Branch]:
        marking = list(state.marking)
        inflight: list[list[int]] = []
        for t_idx, remaining in state.inflight:
            if remaining <= 1:
                # firing completes: deposit outputs
                for p, n in self.net.transitions[t_idx].outputs.items():
                    marking[p] += n
            else:
                inflight.append([t_idx, remaining - 1])
        return self._settle(marking, inflight, resolver, tracer)

    # ------------------------------------------------------------------
    # phases 2 + 3
    # ------------------------------------------------------------------
    def _settle(self, marking: list[int], inflight: list[list[int]],
                resolver: Resolver, tracer=None) -> list[Branch]:
        n_t = len(self.net.transitions)
        work: list[tuple[float, list[int], list[list[int]], list[int]]]
        work = [(1.0, marking, inflight, [0] * n_t)]
        if tracer is None:
            work = self._run_settle_rounds(work, resolver)
            progs = None
        else:
            work, progs = self._run_settle_rounds(work, resolver, tracer)
            branch_progs: dict[tuple, list[int]] = {}
        branches: dict[tuple, Branch] = {}
        for item_idx, (prob, mk, fl, starts) in enumerate(work):
            state = State(marking=tuple(mk),
                          inflight=tuple(sorted(map(tuple, fl))))
            key = (state.marking, state.inflight, tuple(starts))
            if key in branches:
                branches[key].probability += prob
            else:
                branches[key] = Branch(probability=prob, state=state,
                                       starts=tuple(starts))
            if tracer is not None:
                branch_progs.setdefault(key, []).append(progs[item_idx])
        if tracer is not None:
            # aligned with the returned branch list (same first-seen
            # insertion order); each entry lists the program ids whose
            # values sum, in order, to that branch's probability.
            tracer.branch_progs = list(branch_progs.values())
        return list(branches.values())

    def _context(self, marking: Sequence[int],
                 inflight: Sequence[Sequence[int]]) -> Context:
        counts = [0] * len(self.net.transitions)
        for t_idx, _remaining in inflight:
            counts[t_idx] += 1
        return Context(self.net, marking, counts)

    def _run_settle_rounds(self, work, resolver: Resolver, tracer=None):
        done = []
        done_progs = [] if tracer is not None else None
        progs = [()] * len(work) if tracer is not None else None
        rounds = 0
        while work:
            rounds += 1
            if rounds > MAX_IMMEDIATE_ROUNDS:
                raise AnalysisError(
                    f"net {self.net.name!r}: settle rounds did not reach "
                    f"quiescence in {MAX_IMMEDIATE_ROUNDS} rounds "
                    "(unbounded zero-time loop?)")
            next_work = []
            next_progs = [] if tracer is not None else None
            for w_idx, (prob, mk, fl, starts) in enumerate(work):
                if tracer is None:
                    selections = self._select_per_class(mk, fl)
                    tokens = None
                else:
                    selections, tokens = self._select_per_class(
                        mk, fl, tracer)
                if not selections:
                    done.append((prob, mk, fl, starts))
                    if tracer is not None:
                        done_progs.append(tracer.prog(progs[w_idx]))
                    continue
                for branch_prob, chosen in _cartesian(selections, resolver):
                    new_mk = list(mk)
                    new_fl = [list(entry) for entry in fl]
                    new_starts = list(starts)
                    ctx = None
                    ctx_counts = None
                    for t_idx in chosen:
                        for p, n in self._in_arcs[t_idx]:
                            new_mk[p] -= n
                        delay = self._static_delay[t_idx]
                        if delay is None:
                            if ctx is None:
                                ctx = self._context(new_mk, new_fl)
                                if tracer is not None:
                                    # the context's in-flight counts are
                                    # snapshotted at creation and then
                                    # shared by every later dynamic
                                    # delay in this combo; the marking
                                    # view stays live.
                                    ctx_counts = tuple(ctx._inflight)
                            delay = self.net.transitions[t_idx] \
                                .eval_delay(ctx)
                            if tracer is not None:
                                tracer.delay_check(t_idx, tuple(new_mk),
                                                   ctx_counts, delay)
                        if delay == 0:
                            # immediate: outputs deposit within the tick
                            for p, n in self._out_arcs[t_idx]:
                                new_mk[p] += n
                        else:
                            new_fl.append([t_idx, delay])
                        new_starts[t_idx] += 1
                    next_work.append(
                        (prob * branch_prob, new_mk, new_fl, new_starts))
                    if tracer is not None:
                        fids = tuple(tracer.factor(tokens[k], chosen[k])
                                     for k in range(len(chosen)))
                        next_progs.append(progs[w_idx] + (fids,))
            work = next_work
            progs = next_progs
        if tracer is None:
            return done
        return done, done_progs

    def _select_per_class(self, marking, inflight, tracer=None):
        """For each conflict class, the weighted enabled choices.

        Returns a list with one entry per class that has at least one
        enabled transition of positive frequency; each entry is a list
        of ``(probability, transition_index)`` choices summing to one.
        Immediate and timed members of a class compete by frequency.

        With a *tracer*, also returns a parallel list of factor tokens
        (one per selection) and records classes whose enabled members
        all have zero frequency (those silently select nothing, which
        a re-timed replay must re-verify).
        """
        ctx = None
        ctx_key = None
        selections = []
        tokens = [] if tracer is not None else None
        in_arcs = self._in_arcs
        static_freq = self._static_freq
        for cls in self._classes:
            weighted = None
            if tracer is not None:
                enabled_members: list[int] = []
                mask: list[bool] = []
                class_dynamic = False
            for t_idx in cls:
                enabled = True
                for p, n in in_arcs[t_idx]:
                    if marking[p] < n:
                        enabled = False
                        break
                if not enabled:
                    continue
                freq = static_freq[t_idx]
                if freq is None:
                    if ctx is None:
                        ctx = self._context(marking, inflight)
                        if tracer is not None:
                            ctx_key = (tuple(marking),
                                       tuple(ctx._inflight))
                    if tracer is not None:
                        class_dynamic = True
                    freq = self.net.transitions[t_idx] \
                        .eval_frequency(ctx)
                if tracer is not None:
                    enabled_members.append(t_idx)
                    mask.append(freq > 0)
                if freq > 0:
                    if weighted is None:
                        weighted = []
                    weighted.append((freq, t_idx))
            if weighted:
                total = sum(f for f, _ in weighted)
                selections.append(
                    [(f / total, t_idx) for f, t_idx in weighted])
                if tracer is not None:
                    tokens.append(tracer.factor_token(
                        tuple(enabled_members), tuple(mask),
                        ctx_key if class_dynamic else None))
            elif tracer is not None and enabled_members:
                tracer.null_class(tuple(enabled_members), tuple(mask),
                                  ctx_key if class_dynamic else None)
        if tracer is None:
            return selections
        return selections, tokens


def _cartesian(selections, resolver: Resolver,
               ) -> Iterator[tuple[float, list[int]]]:
    """Cross-product of per-class choices, pruned through *resolver*.

    Only one transition per class is selected per round; the engine's
    outer loop re-runs selection until no class has enabled
    transitions, which yields multi-firing (infinite-server) behaviour
    where tokens allow it.
    """
    combos: list[tuple[float, list[int]]] = [(1.0, [])]
    for options in selections:
        chosen = resolver.choose(options)
        combos = [(p * cp, picks + [t_idx])
                  for p, picks in combos
                  for cp, t_idx in chosen]
    return iter(combos)
