"""Closed queueing-network analysis of the architectures (exact MVA).

An independent cross-check of the GTPN models: each conversation is a
customer cycling through Host / MP / DMA stations with demands from
the chapter 6 tables.
"""

from repro.analytic.architectures import (conversation_stations,
                                          mva_bottleneck,
                                          solve_architecture_mva)
from repro.analytic.mva import (MvaSolution, Station, StationKind,
                                asymptotic_bounds, solve_mva)

__all__ = [
    "MvaSolution",
    "Station",
    "StationKind",
    "asymptotic_bounds",
    "conversation_stations",
    "mva_bottleneck",
    "solve_architecture_mva",
    "solve_mva",
]
