"""Exact Mean Value Analysis for closed queueing networks.

A third, independent solution path for the conversation workload
(besides the GTPN analyzer and the kernel simulator): the node
architectures map naturally onto closed product-form queueing networks
— each conversation is a customer cycling through the Host, the
message coprocessor, and the DMA engines, with per-round-trip service
demands read off the chapter 6 action tables.

Classic exact MVA (Reiser & Lavenberg) for a single customer class::

    R_k(n) = D_k * (1 + Q_k(n-1))      queueing stations
    R_k(n) = D_k                        delay (infinite-server) stations
    X(n)   = n / (Z + sum_k R_k(n))
    Q_k(n) = X(n) * R_k(n)

The models agree with the GTPN solutions to within the distributional
differences (MVA assumes exponential service, the GTPN uses geometric
ticks) — tests pin the agreement band.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ModelError


class StationKind(enum.Enum):
    QUEUEING = "queueing"      # FCFS single server
    DELAY = "delay"            # infinite server (pure latency)


@dataclass(frozen=True)
class Station:
    """One service center with its per-cycle demand (microseconds)."""

    name: str
    demand: float
    kind: StationKind = StationKind.QUEUEING

    def __post_init__(self):
        if self.demand < 0:
            raise ModelError(f"station {self.name}: negative demand")


@dataclass
class MvaSolution:
    """Steady-state metrics at population *n*."""

    population: int
    throughput: float                     # cycles per microsecond
    cycle_time: float                     # microseconds
    residence_times: dict[str, float]
    queue_lengths: dict[str, float]
    utilizations: dict[str, float]

    def bottleneck(self) -> str:
        """The station with the highest utilization."""
        return max(self.utilizations, key=self.utilizations.get)


def solve_mva(stations: list[Station], population: int,
              think_time: float = 0.0) -> MvaSolution:
    """Exact MVA solution for *population* customers."""
    if population < 1:
        raise ModelError("population must be at least one")
    if think_time < 0:
        raise ModelError("think time must be non-negative")
    names = [s.name for s in stations]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate station names: {names}")
    if not stations:
        raise ModelError("need at least one station")

    queue = {s.name: 0.0 for s in stations}
    throughput = 0.0
    residence: dict[str, float] = {}
    for n in range(1, population + 1):
        residence = {}
        for s in stations:
            if s.kind is StationKind.DELAY:
                residence[s.name] = s.demand
            else:
                residence[s.name] = s.demand * (1.0 + queue[s.name])
        total = sum(residence.values())
        throughput = n / (think_time + total)
        queue = {name: throughput * r for name, r in residence.items()}

    utilizations = {
        s.name: (throughput * s.demand
                 if s.kind is StationKind.QUEUEING else 0.0)
        for s in stations}
    return MvaSolution(
        population=population, throughput=throughput,
        cycle_time=think_time + sum(residence.values()),
        residence_times=residence, queue_lengths=queue,
        utilizations=utilizations)


def asymptotic_bounds(stations: list[Station], population: int,
                      think_time: float = 0.0) -> tuple[float, float]:
    """(lower, upper) throughput bounds for *population* customers.

    Upper: min(1/D_max, N/(Z + sum D)).  Lower: N/(Z + N * sum D)
    (every visit queued behind everyone).  Exact MVA always lies
    between them.
    """
    if population < 1:
        raise ModelError("population must be at least one")
    total = sum(s.demand for s in stations)
    d_max = max((s.demand for s in stations
                 if s.kind is StationKind.QUEUEING), default=0.0)
    if total <= 0:
        raise ModelError("network with zero total demand")
    upper = population / (think_time + total)
    if d_max > 0:
        upper = min(upper, 1.0 / d_max)
    lower = population / (think_time + population * total)
    return lower, upper
