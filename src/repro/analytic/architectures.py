"""Queueing-network views of the four node architectures.

Maps each architecture/mode to the stations a conversation visits,
with per-round-trip service demands summed from the chapter 6 action
tables.  The resulting closed network solved by exact MVA provides an
independent cross-check of the GTPN models.
"""

from __future__ import annotations

from repro.analytic.mva import (MvaSolution, Station, StationKind,
                                solve_mva)
from repro.errors import ModelError
from repro.models.params import Architecture, Mode, action_table


def conversation_stations(architecture: Architecture, mode: Mode,
                          compute_time: float = 0.0) -> list[Station]:
    """Stations and demands of one conversation's cycle.

    Demands are the "contention" activity times summed per executing
    processor; the server compute time joins the Host demand (the
    server busy-loop runs on the host).  For non-local conversations
    the client node's and server node's processors are distinct
    stations, and the DMA engines appear as their own stations.
    """
    if compute_time < 0:
        raise ModelError("compute time must be non-negative")
    demands: dict[str, float] = {}
    for row in action_table(architecture, mode):
        if row.is_compute:
            continue
        station = _station_of(architecture, row.processor, row.number,
                              mode)
        demands[station] = demands.get(station, 0.0) + row.contention
    host_key = "host" if mode is Mode.LOCAL else "server.host"
    demands[host_key] = demands.get(host_key, 0.0) + compute_time
    return [Station(name=name, demand=demand)
            for name, demand in sorted(demands.items())]


#: Action numbers executing on the *client* node of a non-local
#: conversation.  Architecture I numbers its actions differently
#: (Table 6.6 vs Tables 6.11/6.16/6.21).
_CLIENT_SIDE_ACTIONS = {
    Architecture.I: {"1", "2", "6", "7"},
    Architecture.II: {"1", "2", "2a", "9", "9a", "10"},
    Architecture.III: {"1", "2", "2a", "9", "9a", "10"},
    Architecture.IV: {"1", "2", "2a", "9", "9a", "10"},
}


def _station_of(architecture: Architecture, processor: str,
                number: str, mode: Mode) -> str:
    prefix = ""
    if mode is Mode.NONLOCAL:
        client_side = number in _CLIENT_SIDE_ACTIONS[architecture]
        prefix = "client." if client_side else "server."
    name = {"Host": "host", "MP": "mp", "DMA": "dma"}[processor]
    if name == "dma":
        # each DMA action is one direction of one interface: its own
        # engine (IoOut / IoIn per node)
        return f"{prefix}dma.{number}"
    return f"{prefix}{name}"


def solve_architecture_mva(architecture: Architecture, mode: Mode,
                           conversations: int,
                           compute_time: float = 0.0) -> MvaSolution:
    """Exact MVA solution of one architecture's operating point."""
    stations = conversation_stations(architecture, mode, compute_time)
    return solve_mva(stations, conversations)


def mva_bottleneck(architecture: Architecture, mode: Mode,
                   compute_time: float = 0.0) -> str:
    """The saturating station at large populations."""
    stations = conversation_stations(architecture, mode, compute_time)
    return max(stations, key=lambda s: s.demand).name
