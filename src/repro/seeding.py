"""Process-wide default seed for every stochastic component.

Any run of the toolkit is reproducible from the command line: the
global ``--seed`` CLI flag (or the ``REPRO_SEED`` environment
variable) installs a default seed that every stochastic component —
the GTPN Monte Carlo simulator (:class:`repro.gtpn.state.\
SamplingResolver` via :mod:`repro.gtpn.simulation`), the kernel
conversation workloads, and the fault schedules of
:mod:`repro.faults` — consults when its caller did not pass an
explicit seed.

Resolution order (normalised in :mod:`repro.config` alongside the
other knobs):

1. an explicit ``seed=`` argument at the call site;
2. :func:`set_default_seed` (wired to the CLI ``--seed`` flag);
3. the ``REPRO_SEED`` environment variable;
4. the component's historical default (``0`` for the conversation
   workload and fault schedules, ``None`` — system entropy — for the
   Monte Carlo simulator), so behaviour without the flag is unchanged.
"""

from __future__ import annotations

from repro import config


def set_default_seed(seed: int | None) -> None:
    """Install the process-wide default seed (``None`` clears it)."""
    config.set_seed(seed)


def default_seed() -> int | None:
    """The configured default seed (explicit > ``REPRO_SEED`` > None)."""
    return config.seed()


def resolve_seed(explicit: int | None,
                 fallback: int | None = None) -> int | None:
    """Resolve the seed a component should use.

    ``explicit`` (a caller-supplied argument) wins; otherwise the
    process-wide default; otherwise *fallback*, which preserves each
    component's historical default behaviour.
    """
    if explicit is not None:
        return explicit
    configured = config.seed()
    if configured is not None:
        return configured
    return fallback
