"""Chaos harness: sweep fault intensity, measure graceful degradation.

Runs the chapter 6 conversation benchmark over an unreliable network
and reports how round-trip latency, throughput, and the completion
rate degrade as the packet loss rate rises, per architecture.  Every
run is deterministic given its seed, so a degradation curve is a
reproducible artifact like any thesis figure.

The sweep fans out over :func:`repro.perf.backends.map_sweep`, the same
persistent process pool the figure pipelines use (``--jobs`` /
``REPRO_JOBS``); results are identical at any job count.  Chaos points
are kernel-simulator runs, not GTPN solves, so the structure-sharing
sweep engine does not apply — but the pool's planning does: small
grids and single-CPU machines run serially, and the executed mode is
recorded in each artifact's notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.experiments.reporting import Figure, Series, Table
from repro.faults.plan import FaultPlan
from repro.faults.protocol import RetryPolicy
from repro.faults.schedule import NodeOutage, PacketFaultSpec
from repro.kernel.metrics import emit_busy_events
from repro.kernel.workload import build_conversation_system
from repro.models.params import Architecture, Mode
from repro.perf.backends import last_map_info, map_sweep
from repro.seeding import resolve_seed

#: Loss rates swept by the registered degradation experiment.
DEFAULT_LOSS_RATES = (0.0, 0.01, 0.02, 0.05)

DEFAULT_ARCHITECTURES = (Architecture.II, Architecture.III)

#: Retry policy used by the chaos experiments: tight enough that a
#: black-holed conversation fails within a sub-second run instead of
#: backing off past the horizon.
CHAOS_POLICY = RetryPolicy(initial_timeout_us=10_000.0, backoff=2.0,
                           max_retries=5,
                           conversation_timeout_us=500_000.0)

#: Protocol work-item labels charged to the IPC processor (MP).
_MP_PROTOCOL_LABELS = ("retransmit (MP)", "ack generation (MP)",
                       "ack cleanup (MP)", "duplicate discard (MP)")


@dataclass(frozen=True)
class ChaosResult:
    """Measured outcome of one chaos run."""

    architecture: Architecture
    mode: Mode
    loss_rate: float
    conversations: int
    mean_compute: float
    seed: int | None
    warmup_us: float
    measured_us: float
    completed: int
    failed: int
    mean_round_trip: float | None      # None when nothing completed
    p95_round_trip: float | None
    throughput_per_ms: float
    retransmissions: int
    acks_sent: int
    acks_received: int
    duplicates_suppressed: int
    giveups: int
    packets_offered: int
    packets_lost: int
    mp_protocol_time_us: float
    late_replies: int

    @property
    def completion_rate(self) -> float | None:
        total = self.completed + self.failed
        return self.completed / total if total else None


def run_chaos_experiment(architecture: Architecture = Architecture.II,
                         *, loss_rate: float = 0.0,
                         duplicate_rate: float = 0.0,
                         reorder_rate: float = 0.0,
                         jitter_us: float = 0.0,
                         outages: tuple[NodeOutage, ...] = (),
                         conversations: int = 2,
                         mean_compute: float = 0.0,
                         mode: Mode = Mode.NONLOCAL,
                         policy: RetryPolicy | None = None,
                         seed: int | None = None,
                         warmup_us: float = 100_000.0,
                         measure_us: float = 600_000.0) -> ChaosResult:
    """Run the conversation benchmark under an unreliable network."""
    policy = policy if policy is not None else CHAOS_POLICY
    plan = FaultPlan(
        spec=PacketFaultSpec(drop_rate=loss_rate,
                             duplicate_rate=duplicate_rate,
                             reorder_rate=reorder_rate,
                             jitter_us=jitter_us),
        outages=tuple(outages), policy=policy, seed=seed)
    system, meter = build_conversation_system(
        architecture, mode, conversations, mean_compute, seed,
        faults=plan)
    with obs.span("chaos.run", architecture=architecture.name,
                  loss_rate=loss_rate):
        system.run_for(warmup_us + measure_us)
    emit_busy_events(system)
    start, end = warmup_us, warmup_us + measure_us

    completed = len(meter.window(start, end))
    failed = len(meter.failure_window(start, end))
    mean_rt = meter.mean_round_trip(start, end) if completed else None
    p95 = meter.latency_percentile(start, end, 95) if completed \
        else None

    retransmissions = acks_sent = acks_received = 0
    duplicates = giveups = late = 0
    mp_time = 0.0
    for node in system.nodes.values():
        stats = getattr(node.transport, "stats", None)
        if stats is not None:
            retransmissions += stats.retransmissions
            acks_sent += stats.acks_sent
            acks_received += stats.acks_received
            duplicates += stats.duplicates_suppressed
            giveups += stats.giveups
        late += node.kernel.stats.late_replies
        by_label = node.processors.ipc.stats.busy_by_label
        mp_time += sum(by_label.get(label, 0.0)
                       for label in _MP_PROTOCOL_LABELS)
    net_stats = getattr(system.wire, "stats", None)

    return ChaosResult(
        architecture=architecture, mode=mode, loss_rate=loss_rate,
        conversations=conversations, mean_compute=mean_compute,
        seed=seed, warmup_us=warmup_us, measured_us=measure_us,
        completed=completed, failed=failed,
        mean_round_trip=mean_rt, p95_round_trip=p95,
        throughput_per_ms=completed / measure_us * 1e3,
        retransmissions=retransmissions, acks_sent=acks_sent,
        acks_received=acks_received,
        duplicates_suppressed=duplicates, giveups=giveups,
        packets_offered=net_stats.offered if net_stats else 0,
        packets_lost=net_stats.lost if net_stats else 0,
        mp_protocol_time_us=mp_time, late_replies=late)


def _sweep_point(architecture: Architecture, loss_rate: float,
                 conversations: int, mean_compute: float,
                 seed: int | None, warmup_us: float, measure_us: float,
                 policy: RetryPolicy) -> ChaosResult:
    """One picklable grid point for :func:`map_sweep`."""
    return run_chaos_experiment(
        architecture, loss_rate=loss_rate, conversations=conversations,
        mean_compute=mean_compute, policy=policy, seed=seed,
        warmup_us=warmup_us, measure_us=measure_us)


def _sweep(architectures, loss_rates, conversations, mean_compute,
           seed, warmup_us, measure_us, policy, jobs):
    points = [(arch, loss, conversations, mean_compute, seed,
               warmup_us, measure_us, policy)
              for arch in architectures for loss in loss_rates]
    return map_sweep(_sweep_point, points, jobs=jobs, star=True)


def _pool_note() -> str:
    """One line recording how the last sweep actually executed."""
    info = last_map_info()
    if info is None or info.mode == "serial":
        reason = info.reason if info is not None else "no sweep ran"
        return f"sweep ran serially ({reason})"
    return (f"sweep ran on {info.jobs_used} workers, chunk size "
            f"{info.chunk_size}")


def sweep_table(architectures=DEFAULT_ARCHITECTURES,
                loss_rates=DEFAULT_LOSS_RATES, *,
                conversations: int = 2, mean_compute: float = 0.0,
                seed: int | None = None,
                warmup_us: float = 100_000.0,
                measure_us: float = 600_000.0,
                policy: RetryPolicy | None = None,
                jobs: int | None = None) -> Table:
    """Full loss-rate x architecture sweep as a table."""
    policy = policy if policy is not None else CHAOS_POLICY
    # resolve the --seed / REPRO_SEED default here, in the parent, so
    # pool workers see the same explicit seed
    seed = resolve_seed(seed)
    results = _sweep(tuple(architectures), tuple(loss_rates),
                     conversations, mean_compute, seed, warmup_us,
                     measure_us, policy, jobs)
    rows = [[r.architecture.name, r.loss_rate, r.completed, r.failed,
             r.completion_rate, r.mean_round_trip, r.p95_round_trip,
             r.throughput_per_ms, r.retransmissions,
             r.duplicates_suppressed, r.giveups,
             r.mp_protocol_time_us]
            for r in results]
    return Table(
        experiment_id="chaos-sweep",
        title="Conversation degradation under packet loss",
        headers=["arch", "loss", "completed", "failed", "compl rate",
                 "mean rt (us)", "p95 rt (us)", "msgs/ms",
                 "retransmits", "dups suppressed", "giveups",
                 "MP protocol (us)"],
        rows=rows,
        notes=[f"n={conversations} non-local conversations, "
               f"X={mean_compute:g} us, seed={seed}, "
               f"measured {measure_us:g} us after {warmup_us:g} us "
               "warmup",
               "retry policy: initial timeout "
               f"{policy.initial_timeout_us:g} us, backoff "
               f"{policy.backoff:g}, budget {policy.max_retries}, "
               f"deadline {policy.conversation_timeout_us:g} us",
               _pool_note()])


def degradation_figure(architectures=DEFAULT_ARCHITECTURES,
                       loss_rates=DEFAULT_LOSS_RATES, *,
                       conversations: int = 2,
                       mean_compute: float = 0.0,
                       seed: int | None = None,
                       warmup_us: float = 100_000.0,
                       measure_us: float = 600_000.0,
                       policy: RetryPolicy | None = None,
                       jobs: int | None = None) -> Figure:
    """Round-trip inflation and completion rate vs packet loss.

    Latency inflation is relative to each architecture's zero-loss
    (or lowest swept loss) point, so the curves show degradation, not
    absolute cost.
    """
    policy = policy if policy is not None else CHAOS_POLICY
    architectures = tuple(architectures)
    loss_rates = tuple(loss_rates)
    seed = resolve_seed(seed)
    results = _sweep(architectures, loss_rates, conversations,
                     mean_compute, seed, warmup_us, measure_us,
                     policy, jobs)
    series = []
    it = iter(results)
    for arch in architectures:
        arch_results = [next(it) for _loss in loss_rates]
        baseline = next((r.mean_round_trip for r in arch_results
                         if r.mean_round_trip is not None), None)
        xs = [float(loss) for loss in loss_rates]
        inflation = [r.mean_round_trip / baseline
                     if r.mean_round_trip is not None and baseline
                     else None
                     for r in arch_results]
        completion = [r.completion_rate for r in arch_results]
        series.append(Series(f"arch {arch.name} rt inflation", xs,
                             inflation))
        series.append(Series(f"arch {arch.name} completion rate", xs,
                             completion))
    return Figure(
        experiment_id="chaos-degradation",
        title="Graceful Degradation under Packet Loss (chaos sweep)",
        x_label="packet loss rate",
        y_label="round-trip inflation (x) / completion rate",
        series=series,
        notes=["inflation = mean round trip / the architecture's "
               "lowest-loss mean round trip",
               f"n={conversations} non-local conversations, "
               f"seed={seed}; deterministic given the seed",
               _pool_note()])


def outage_recovery_table(architecture: Architecture = Architecture.II,
                          *, conversations: int = 2,
                          outage_start_us: float = 200_000.0,
                          outage_end_us: float = 400_000.0,
                          horizon_us: float = 800_000.0,
                          policy: RetryPolicy | None = None,
                          seed: int | None = None) -> Table:
    """Crash/recovery demo: the server node goes down and comes back.

    Conversations stall during the outage (requests and replies to
    the dead node are lost) and resume after recovery, carried across
    the window by the MP retransmission protocol.
    """
    policy = policy if policy is not None else CHAOS_POLICY
    plan = FaultPlan(outages=(NodeOutage("servers", outage_start_us,
                                         outage_end_us),),
                     policy=policy, seed=seed)
    system, meter = build_conversation_system(
        architecture, Mode.NONLOCAL, conversations, 0.0, seed,
        faults=plan)
    with obs.span("chaos.run", architecture=architecture.name,
                  outage=True):
        system.run_for(horizon_us)
    emit_busy_events(system)
    retransmissions = sum(node.transport.stats.retransmissions
                          for node in system.nodes.values())
    phases = [("before outage", 0.0, outage_start_us),
              ("during outage", outage_start_us, outage_end_us),
              ("after recovery", outage_end_us, horizon_us)]
    rows = []
    for name, start, end in phases:
        completed = len(meter.window(start, end))
        failed = len(meter.failure_window(start, end))
        mean_rt = meter.mean_round_trip(start, end) if completed \
            else None
        rows.append([name, completed, failed, mean_rt])
    return Table(
        experiment_id="chaos-outage",
        title="Node crash and recovery (MP retransmission carries "
              "conversations across)",
        headers=["phase", "completed", "failed", "mean rt (us)"],
        rows=rows,
        notes=[f"server node down on [{outage_start_us:g}, "
               f"{outage_end_us:g}) us; "
               f"{retransmissions} retransmissions over the whole "
               "run"])
