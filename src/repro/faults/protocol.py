"""The MP acknowledgement/retransmission protocol.

Related work puts reliability into the network interface itself (NIC-
level collective retransmission, distributed network processors that
own flow control); the thesis's message coprocessor sits in exactly
that position, so this protocol runs as extra MP work: sequence
numbers per destination, a positive ack per data packet, a
per-packet timeout with exponential backoff, a bounded retry budget,
and receiver-side duplicate suppression.

Every protocol action consumes *modelled* processor cycles, costed
with the same chapter 6 activity-time machinery as the kernel
proper — retransmissions are not free time:

========================  ===========================================
protocol action           charged as (Table 6.x activity)
========================  ===========================================
retransmit a request      ``process_send`` on the IPC processor,
                          then ``dma_out_request`` on the out-DMA
retransmit a reply        ``process_reply`` + ``dma_out_reply``
generate / re-send an ack ``cleanup_client`` on the IPC processor,
                          then ``dma_out_reply`` (an ack is a small
                          reply-direction control packet)
receive an ack            ``dma_in_reply`` on the in-DMA, then
                          ``cleanup_client`` on the IPC processor
discard a duplicate       ``cleanup_client`` on the IPC processor
========================  ===========================================

On architecture I the "IPC processor" is the host, so protocol work
steals host cycles there — consistent with the thesis's argument for
off-loading IPC onto the MP.

A client-side conversation deadline backs the per-packet retry
budget: when either trips, the kernel completes the conversation
with a :class:`~repro.kernel.transport.DeliveryFailure` instead of a
reply, so sustained 100% loss degrades into clean per-conversation
failures rather than hung tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.errors import KernelError
from repro.kernel.transport import Transport

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.kernel.messages import Message
    from repro.kernel.node import Node


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout, backoff, and budget of the retransmission protocol.

    ``conversation_timeout_us`` is the end-to-end client deadline; it
    covers loss patterns the sender-side budget cannot see (e.g. a
    reply retried forever on the far node).  Set it to 0 to disable.
    """

    initial_timeout_us: float = 20_000.0
    backoff: float = 2.0
    max_retries: int = 6
    conversation_timeout_us: float = 1_000_000.0

    def __post_init__(self):
        if self.initial_timeout_us <= 0:
            raise KernelError("initial_timeout_us must be positive")
        if self.backoff < 1.0:
            raise KernelError("backoff must be >= 1")
        if self.max_retries < 0:
            raise KernelError("max_retries must be >= 0")
        if self.conversation_timeout_us < 0:
            raise KernelError("negative conversation_timeout_us")

    def timeout_for(self, attempt: int) -> float:
        """Retransmission timeout after *attempt* transmissions."""
        return self.initial_timeout_us * self.backoff ** attempt


@dataclass
class ProtocolStats:
    """Per-node protocol counters."""

    data_packets: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    duplicates_suppressed: int = 0
    giveups: int = 0


@dataclass
class _Outstanding:
    """One unacknowledged data packet awaiting (re)transmission."""

    destination: str
    seq: int
    kind: str                            # "send" | "reply"
    deliver: Callable[[], None]
    on_giveup: Callable[[str], None] | None
    msg_id: int
    attempt: int = 0


class ReliableTransport(Transport):
    """Sequence numbers + acks + bounded retransmission on the MP."""

    reliable = True

    def __init__(self, node: "Node", policy: RetryPolicy | None = None):
        super().__init__(node)
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = ProtocolStats()
        self._next_seq: dict[str, int] = {}
        self._outstanding: dict[tuple[str, int], _Outstanding] = {}
        #: per-source set of sequence numbers already passed up
        self._delivered_seqs: dict[str, set[int]] = {}

    # ------------------------------------------------------------------
    # kernel-facing interface
    # ------------------------------------------------------------------
    def send_request(self, message: "Message",
                     target_node: "Node") -> None:
        self._send_data(
            kind="send", destination=target_node.name,
            deliver=lambda: target_node.kernel._arrive_request(message),
            msg_id=message.msg_id,
            on_giveup=lambda reason: self.node.kernel
            .fail_conversation(message, reason))

    def send_reply(self, message: "Message", payload: object,
                   origin: "Node") -> None:
        # no giveup callback: if the reply can never cross the wire,
        # the client's conversation deadline fails the conversation
        self._send_data(
            kind="reply", destination=origin.name,
            deliver=lambda: origin.kernel._arrive_reply(message,
                                                        payload),
            msg_id=message.msg_id, on_giveup=None)

    def watch_conversation(self, message: "Message") -> None:
        deadline = self.policy.conversation_timeout_us
        if deadline <= 0:
            return
        self.node.sim.after(
            deadline,
            lambda: self.node.kernel.fail_conversation(
                message,
                f"conversation deadline ({deadline:g} us) passed"))

    def on_conversation_failed(self, message: "Message") -> None:
        stale = [key for key, out in self._outstanding.items()
                 if out.msg_id == message.msg_id]
        for key in stale:
            del self._outstanding[key]

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def _send_data(self, kind: str, destination: str,
                   deliver: Callable[[], None], msg_id: int,
                   on_giveup: Callable[[str], None] | None) -> None:
        seq = self._next_seq.get(destination, 0)
        self._next_seq[destination] = seq + 1
        out = _Outstanding(destination=destination, seq=seq, kind=kind,
                           deliver=deliver, on_giveup=on_giveup,
                           msg_id=msg_id)
        self._outstanding[(destination, seq)] = out
        self.stats.data_packets += 1
        obs.add("transport.data_packet")
        self._transmit(out)

    def _transmit(self, out: _Outstanding) -> None:
        attempt = out.attempt
        sim = self.node.sim
        wire = self.node.system.wire
        peer = self.node.system.node(out.destination).transport
        costs = self.node.costs(local=False)
        if out.kind == "send":
            dma_cost, dma_label = costs.dma_out_request, \
                "DMA out (request)"
        else:
            dma_cost, dma_label = costs.dma_out_reply, \
                "DMA out (reply)"
        if attempt > 0:
            dma_label = "DMA out (retransmit)"

        def put_on_wire():
            wire.transmit(
                self.node.name, out.destination, out.kind,
                lambda: peer.receive_data(self.node.name, out.seq,
                                          out.kind, out.deliver))
            sim.after(self.policy.timeout_for(attempt),
                      lambda: self._timeout(out, attempt))

        self.node.processors.net_out.submit(dma_cost, put_on_wire,
                                            label=dma_label)

    def _timeout(self, out: _Outstanding, attempt: int) -> None:
        current = self._outstanding.get((out.destination, out.seq))
        if current is not out or out.attempt != attempt:
            return                     # acked, abandoned, or superseded
        if out.attempt >= self.policy.max_retries:
            del self._outstanding[(out.destination, out.seq)]
            self.stats.giveups += 1
            obs.add("transport.giveup")
            if out.on_giveup is not None:
                out.on_giveup(
                    f"retry budget exhausted: {attempt + 1} "
                    f"transmissions to {out.destination} unacked")
            return
        out.attempt += 1
        self.stats.retransmissions += 1
        obs.add("transport.retransmission")
        costs = self.node.costs(local=False)
        mp_cost = costs.process_send if out.kind == "send" \
            else costs.process_reply
        self.node.processors.ipc.submit(
            mp_cost, lambda: self._transmit(out),
            label="retransmit (MP)")

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def receive_data(self, source: str, seq: int, kind: str,
                     deliver: Callable[[], None]) -> None:
        """A data packet arrived on the wire for this node."""
        costs = self.node.costs(local=False)
        seen = self._delivered_seqs.setdefault(source, set())
        if seq in seen:
            # duplicate: discard, but re-ack — the first ack may have
            # been the packet that was lost
            self.stats.duplicates_suppressed += 1
            obs.add("transport.duplicate_suppressed")
            self.node.processors.ipc.submit(
                costs.cleanup_client,
                lambda: self._send_ack(source, seq),
                label="duplicate discard (MP)", urgent=True)
            return
        seen.add(seq)
        self.node.processors.ipc.submit(
            costs.cleanup_client,
            lambda: self._send_ack(source, seq),
            label="ack generation (MP)", urgent=True)
        deliver()

    def _send_ack(self, source: str, seq: int) -> None:
        wire = self.node.system.wire
        peer = self.node.system.node(source).transport
        costs = self.node.costs(local=False)
        self.stats.acks_sent += 1
        obs.add("transport.ack_sent")
        self.node.processors.net_out.submit(
            costs.dma_out_reply,
            lambda: wire.transmit(
                self.node.name, source, "ack",
                lambda: peer._ack_arrived(self.node.name, seq)),
            label="DMA out (ack)")

    # ------------------------------------------------------------------
    # ack arrival (back on the sender)
    # ------------------------------------------------------------------
    def _ack_arrived(self, from_node: str, seq: int) -> None:
        costs = self.node.costs(local=False)
        self.node.processors.net_in.submit(
            costs.dma_in_reply,
            lambda: self.node.processors.ipc.submit(
                costs.cleanup_client,
                lambda: self._acked(from_node, seq),
                label="ack cleanup (MP)", urgent=True),
            label="DMA in (ack)")

    def _acked(self, destination: str, seq: int) -> None:
        out = self._outstanding.pop((destination, seq), None)
        if out is not None:
            self.stats.acks_received += 1
            obs.add("transport.ack_received")
