"""Deterministic, seeded fault schedules for the inter-node network.

A :class:`FaultSchedule` is the single source of randomness for fault
injection: it draws one :class:`PacketFate` per packet offered to the
wire, in transmission order, from one seeded stream.  Because the
discrete-event simulator itself is deterministic, the same seed and
workload always produce the same faults at the same simulation times
— any chaos run is replayable from its seed.

Node crash/recovery is modelled as fail-stop communication outages
(:class:`NodeOutage` windows): while a node is down, every packet to
or from it is lost; its local state survives (warm restart).  The
processors of a crashed node are deliberately left running — the
thesis's nodes own no inter-node state besides messages, so a crash
is indistinguishable from a network partition at the wire, which is
exactly where this package injects it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import KernelError
from repro.seeding import resolve_seed


@dataclass(frozen=True)
class PacketFaultSpec:
    """Per-packet fault intensities (all probabilities in [0, 1]).

    ``jitter_us`` adds uniform extra latency to every packet;
    ``reorder_window_us`` is the extra delay a reordered packet
    suffers (letting later packets overtake it on the constant-
    latency ring); ``duplicate_gap_us`` separates a duplicate from
    its original.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    jitter_us: float = 0.0
    reorder_window_us: float = 2_000.0
    duplicate_gap_us: float = 250.0

    def __post_init__(self):
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise KernelError(
                    f"{name} must be in [0, 1], got {rate}")
        for name in ("jitter_us", "reorder_window_us",
                     "duplicate_gap_us"):
            value = getattr(self, name)
            if value < 0:
                raise KernelError(f"negative {name}: {value}")

    @property
    def is_zero(self) -> bool:
        """True when this spec can never perturb a packet."""
        return (self.drop_rate == 0.0 and self.duplicate_rate == 0.0
                and self.reorder_rate == 0.0 and self.jitter_us == 0.0)


@dataclass(frozen=True)
class NodeOutage:
    """One crash/recovery window: *node* is down on [start, end)."""

    node: str
    start_us: float
    end_us: float

    def __post_init__(self):
        if self.start_us < 0:
            raise KernelError(
                f"outage of {self.node!r} starts before t=0")
        if self.end_us <= self.start_us:
            raise KernelError(
                f"outage of {self.node!r} ends at {self.end_us} "
                f"before it starts at {self.start_us}")

    def covers(self, time: float) -> bool:
        return self.start_us <= time < self.end_us


@dataclass(frozen=True)
class PacketFate:
    """What the schedule decided for one offered packet."""

    dropped: bool = False
    extra_delay_us: float = 0.0
    reordered: bool = False
    duplicated: bool = False
    duplicate_delay_us: float = 0.0


#: The fate of a packet on a fault-free schedule.
_CLEAN = PacketFate()


class FaultSchedule:
    """Seeded source of per-packet fates and node outage windows."""

    def __init__(self, spec: PacketFaultSpec = PacketFaultSpec(),
                 outages: tuple[NodeOutage, ...] = (),
                 seed: int | None = None):
        self.spec = spec
        self.outages = tuple(outages)
        for outage in self.outages:
            if not isinstance(outage, NodeOutage):
                raise KernelError(
                    f"outages must be NodeOutage, got {outage!r}")
        self.seed = resolve_seed(seed, fallback=0)
        self._rng = random.Random(self.seed)
        self.fates_drawn = 0

    @property
    def can_fault(self) -> bool:
        """False iff this schedule is the reliable ring in disguise."""
        return not self.spec.is_zero or bool(self.outages)

    def is_down(self, node: str, time: float) -> bool:
        """Whether *node* is inside a crash window at *time*."""
        return any(o.node == node and o.covers(time)
                   for o in self.outages)

    def draw(self, source: str, destination: str,
             kind: str) -> PacketFate:
        """Draw the fate of the next packet (in transmission order).

        Zero-intensity components consume no randomness, so enabling
        one fault type does not perturb the stream of another run
        that never configured it.
        """
        spec = self.spec
        if spec.is_zero:
            return _CLEAN
        self.fates_drawn += 1
        rng = self._rng
        if spec.drop_rate > 0.0 and rng.random() < spec.drop_rate:
            return PacketFate(dropped=True)
        extra = 0.0
        if spec.jitter_us > 0.0:
            extra += rng.uniform(0.0, spec.jitter_us)
        reordered = False
        if spec.reorder_rate > 0.0 and \
                rng.random() < spec.reorder_rate:
            reordered = True
            extra += rng.uniform(0.0, spec.reorder_window_us)
        duplicated = spec.duplicate_rate > 0.0 and \
            rng.random() < spec.duplicate_rate
        return PacketFate(extra_delay_us=extra, reordered=reordered,
                          duplicated=duplicated,
                          duplicate_delay_us=spec.duplicate_gap_us
                          if duplicated else 0.0)
