"""The fault plan a distributed system is built with.

A :class:`FaultPlan` bundles the packet fault intensities, the node
crash/recovery windows, the MP retransmission policy, and the seed.
``DistributedSystem(arch, faults=plan)`` wraps its wire in an
:class:`~repro.faults.unreliable.UnreliableNetwork` and gives every
node a :class:`~repro.faults.protocol.ReliableTransport` — unless the
plan is *inactive* (zero fault rates, no outages), in which case the
system stays on the seed reliable-ring code path bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.protocol import RetryPolicy
from repro.faults.schedule import (FaultSchedule, NodeOutage,
                                   PacketFaultSpec)


@dataclass(frozen=True)
class FaultPlan:
    """Everything needed to run a system over an unreliable network."""

    spec: PacketFaultSpec = PacketFaultSpec()
    outages: tuple[NodeOutage, ...] = ()
    policy: RetryPolicy = RetryPolicy()
    seed: int | None = None

    @property
    def active(self) -> bool:
        """Whether this plan changes anything at all."""
        return (not self.spec.is_zero) or bool(self.outages)

    def build_schedule(self) -> FaultSchedule:
        """A fresh seeded schedule (one per system, so two systems
        built from the same plan draw identical fault streams)."""
        return FaultSchedule(self.spec, self.outages, seed=self.seed)

    @classmethod
    def packet_loss(cls, rate: float, *, seed: int | None = None,
                    policy: RetryPolicy | None = None) -> "FaultPlan":
        """Convenience: a plan that only drops packets."""
        return cls(spec=PacketFaultSpec(drop_rate=rate),
                   policy=policy if policy is not None
                   else RetryPolicy(),
                   seed=seed)
