"""Deterministic fault injection for the kernel simulator.

The thesis evaluates the message coprocessor over an idealised wire
("the network is assumed reliable and not a bottleneck", section
6.6.4).  This package relaxes that assumption the way the related
NIC-level reliability work does — by pushing retransmission into the
communication layer the MP already owns:

* :mod:`repro.faults.schedule` — a seeded, deterministic fault
  schedule: per-packet drop / duplication / reordering / extra
  latency, plus node crash/recovery windows;
* :mod:`repro.faults.unreliable` — :class:`UnreliableNetwork`, a wire
  wrapper applying a schedule to every packet (the reliable ring is
  the zero-fault special case);
* :mod:`repro.faults.protocol` — the MP acknowledgement /
  retransmission protocol: sequence numbers, acks, per-destination
  timeout with exponential backoff, a retry budget, and duplicate
  suppression, all costed with the chapter 6 activity times;
* :mod:`repro.faults.plan` — :class:`FaultPlan`, the bundle a
  :class:`repro.kernel.system.DistributedSystem` accepts;
* :mod:`repro.faults.chaos` — the chaos harness sweeping fault
  intensity across architectures and reporting degradation curves.

Invariant: a plan whose schedule cannot fault leaves the simulator on
the seed code path, so its results are bit-identical to a run without
any plan at all.
"""

from repro.faults.chaos import (ChaosResult, degradation_figure,
                                outage_recovery_table,
                                run_chaos_experiment, sweep_table)
from repro.faults.plan import FaultPlan
from repro.faults.protocol import (ProtocolStats, ReliableTransport,
                                   RetryPolicy)
from repro.faults.schedule import (FaultSchedule, NodeOutage,
                                   PacketFaultSpec, PacketFate)
from repro.faults.unreliable import FaultStats, UnreliableNetwork

__all__ = [
    "ChaosResult",
    "FaultPlan",
    "FaultSchedule",
    "FaultStats",
    "NodeOutage",
    "PacketFaultSpec",
    "PacketFate",
    "ProtocolStats",
    "ReliableTransport",
    "RetryPolicy",
    "UnreliableNetwork",
    "degradation_figure",
    "outage_recovery_table",
    "run_chaos_experiment",
    "sweep_table",
]
