"""An unreliable network layered over the reliable token ring.

:class:`UnreliableNetwork` exposes the same ``transmit`` interface as
:class:`repro.kernel.network.Wire` and applies a
:class:`~repro.faults.schedule.FaultSchedule` to every packet: drops,
duplicates, reordering delays, jitter, and crash-window losses.  A
schedule that cannot fault short-circuits to the wrapped wire, so the
reliable ring is the exact zero-fault special case — same events,
same order, same packet log.

All packets (including dropped and duplicate ones) are recorded in
the underlying wire's packet log with a ``status`` annotation, so
loss accounting is inspectable through the usual
``system.wire.packets`` / ``counts_by_*`` interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.faults.schedule import FaultSchedule
from repro.kernel.network import PacketRecord, Wire


@dataclass
class FaultStats:
    """What the unreliable network did to the offered packets."""

    offered: int = 0
    delivered: int = 0
    dropped: int = 0
    outage_drops: int = 0
    duplicates: int = 0
    reordered: int = 0

    @property
    def lost(self) -> int:
        return self.dropped + self.outage_drops


class UnreliableNetwork:
    """Wire wrapper that subjects every packet to a fault schedule."""

    def __init__(self, wire: Wire, schedule: FaultSchedule):
        self.wire = wire
        self.schedule = schedule
        self.stats = FaultStats()

    # -- wire interface -------------------------------------------------
    @property
    def sim(self):
        return self.wire.sim

    @property
    def latency_us(self) -> float:
        return self.wire.latency_us

    @property
    def packets(self) -> list[PacketRecord]:
        return self.wire.packets

    @property
    def packet_count(self) -> int:
        return self.wire.packet_count

    def counts_by_destination(self) -> dict[str, int]:
        return self.wire.counts_by_destination()

    def counts_by_kind(self) -> dict[str, int]:
        return self.wire.counts_by_kind()

    def counts_by_status(self) -> dict[str, int]:
        return self.wire.counts_by_status()

    # -- transmission ---------------------------------------------------
    def transmit(self, source: str, destination: str, kind: str,
                 deliver: Callable[[], None]) -> None:
        """Carry a packet subject to the fault schedule."""
        self.stats.offered += 1
        if not self.schedule.can_fault:
            # the reliable ring, bit-identically
            self.wire.transmit(source, destination, kind, deliver)
            self.stats.delivered += 1
            return

        sim = self.wire.sim
        now = sim.now
        fate = self.schedule.draw(source, destination, kind)
        delay = self.wire.latency_us + fate.extra_delay_us

        def record(status: str) -> None:
            self.wire.packets.append(PacketRecord(
                source=source, destination=destination, kind=kind,
                sent_at=now, status=status))

        if self.schedule.is_down(source, now) or \
                self.schedule.is_down(destination, now + delay):
            self.stats.outage_drops += 1
            record("outage")
            return
        if fate.dropped:
            self.stats.dropped += 1
            record("dropped")
            return

        record("delivered")
        sim.after(delay, deliver)
        self.stats.delivered += 1
        if fate.reordered:
            self.stats.reordered += 1
        if fate.duplicated:
            dup_delay = delay + fate.duplicate_delay_us
            if not self.schedule.is_down(destination,
                                         now + dup_delay):
                record("duplicate")
                sim.after(dup_delay, deliver)
                self.stats.duplicates += 1
