"""Open-arrival traffic engine over the kernel DES.

The closed-loop benchmark (``kernel/workload.py``) models *k* patient
clients who re-send the instant a reply lands — offered load is
whatever the system can absorb, so saturation is invisible.  This
engine models the opposite regime: arrivals come from an external
:class:`~repro.traffic.arrivals.ArrivalProcess` at a configured rate
regardless of how the system is doing, which is what exposes the
offered-load -> latency knee the paper's §6.6.4 assumptions hide.

Session multiplexing: the client *population* is logical (message
``client_id``s, millions are fine) while sending happens through a
bounded pool of real kernel :class:`~repro.kernel.tasks.Task` objects
("open workers").  An arrival grabs a free worker if any; otherwise it
waits in a bounded ingress queue in front of the message processor;
when that is full too, the configured admission policy decides — and
*pays for the decision* with Table 6.x activity times on the node's
IPC processor, because a real MP examines a message before it can
refuse it:

* ``drop`` — discard silently; charges one ``match`` time
  ("admission drop (MP)").
* ``reject`` — discard but generate a refusal the client can see;
  charges ``match`` + ``process_reply`` ("admission reject (MP)").
* ``backpressure`` — park the message upstream (unbounded overflow,
  modelling sources that block); charges one ``match`` per deferral
  ("admission defer (MP)") and feeds the ingress queue as it drains.

The examination charge makes the MP itself a saturable resource: at
``match`` = 1.26 ms (Table 6.x) a refusal stream past ~0.8 msgs/ms
would grow the MP's work backlog without bound — classic receive
livelock.  The engine bounds it the way hardware does: at most
``examine_limit`` refusal examinations may be outstanding on the MP;
past that the *interface* tail-drops, recording the refusal but
charging nothing (``tail_drops`` counts these).  That keeps memory
bounded at any offered rate, which the million-message CI bench
(``benchmarks/test_bench_traffic.py``) asserts.

Determinism: the arrival stream draws from its own
:class:`random.Random` seeded with ``crc32(b"traffic") ^ seed``, so
attaching traffic never perturbs the server compute-time streams.  A
null process attaches nothing and consumes no randomness — the
zero-rate open system is *bit-identical* to the closed-loop system
built from the same seed (``tests/traffic/test_zero_rate_identity``).
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from collections import deque
from itertools import islice
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro import config, obs
from repro.errors import TrafficError
from repro.kernel.metrics import ConversationMeter, emit_busy_events
from repro.kernel.node import Node
from repro.kernel.system import DistributedSystem
from repro.kernel.tasks import Task
from repro.kernel.transport import DeliveryFailure
from repro.kernel.workload import (SERVICE_NAME, ClientProgram,
                                   build_benchmark_nodes,
                                   install_bench_service)
from repro.models.params import Architecture, Mode
from repro.seeding import resolve_seed
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.metrics import TrafficMeter, TrafficResult

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan

#: Admission policies at a full ingress queue.
POLICY_NAMES = ("drop", "reject", "backpressure")

#: Seed-stream label for the traffic RNG (same derivation idiom as the
#: fault planner), keeping arrival draws out of the server streams.
TRAFFIC_SEED_SALT = zlib.crc32(b"traffic")

#: Arrivals pregenerated per batch.  Gaps are drawn in one go, summed
#: into absolute timestamps with ``np.cumsum`` (sequential, so the
#: result is bit-identical to the one-at-a-time ``now + gap`` walk the
#: engine used to do) and bulk-posted as a presorted run — one
#: ``Simulator.post_run`` per chunk instead of one ``at()`` per
#: message.
ARRIVAL_CHUNK = 4096

#: Bound on the recycled-message pool (admitted messages only; the
#: overload drop path allocates nothing at all).
_MESSAGE_POOL_MAX = 1024


def check_policy(policy: str) -> str:
    if policy not in POLICY_NAMES:
        raise TrafficError(
            f"unknown admission policy {policy!r}; "
            f"choose from {', '.join(POLICY_NAMES)}")
    return policy


class _OpenMessage:
    """One offered message while it is alive inside the engine.

    Slotted and pooled: the engine recycles completed records, so the
    steady-state run allocates no per-message objects."""

    __slots__ = ("client_id", "arrived_at", "dispatched_at")

    def __init__(self, client_id: int, arrived_at: float):
        self.client_id = client_id
        self.arrived_at = arrived_at
        self.dispatched_at = 0.0


class OpenTrafficSource:
    """Generates arrivals and runs them through admission + dispatch.

    Construction is passive; :meth:`attach` wires the source to a
    built system and schedules the first arrival (nothing at all for a
    null process).  Arrivals stop at ``horizon_us``; in-flight work
    after the horizon still completes and is recorded.
    """

    def __init__(self, process: ArrivalProcess, *,
                 pool_size: int = 32, queue_limit: int = 64,
                 policy: str = "drop", population: int = 1_000_000,
                 seed: int = 0, horizon_us: float = float("inf"),
                 examine_limit: int = 64):
        if pool_size < 1:
            raise TrafficError(
                f"pool_size must be >= 1, got {pool_size!r}")
        if queue_limit < 0:
            raise TrafficError(
                f"queue_limit must be >= 0, got {queue_limit!r}")
        if population < 1:
            raise TrafficError(
                f"population must be >= 1, got {population!r}")
        if examine_limit < 1:
            raise TrafficError(
                f"examine_limit must be >= 1, got {examine_limit!r}")
        self.process = process
        self.pool_size = pool_size
        self.queue_limit = queue_limit
        self.policy = check_policy(policy)
        self.population = population
        self.seed = seed
        self.horizon_us = horizon_us
        self.examine_limit = examine_limit
        self.rng = random.Random(TRAFFIC_SEED_SALT ^ seed)
        self._stream: Iterator[float] | None = None
        self._node: Node | None = None
        self._meter: TrafficMeter | None = None
        self._free: list[Task] = []
        self._ingress: deque[_OpenMessage] = deque()
        self._overflow: deque[_OpenMessage] = deque()
        self._message_pool: list[_OpenMessage] = []
        self._next_client = 0
        self._examining = 0
        self.tail_drops = 0
        self.in_flight = 0
        # chunked-arrival state (see _post_chunk)
        self._batched = False
        self._last_time = 0.0
        self._chunk_remaining = 0
        self._exhausted = False
        # admission costs, precomputed at attach
        self._drop_cost = 0.0
        self._reject_cost = 0.0
        self._defer_cost = 0.0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, client_node: Node, meter: TrafficMeter) -> None:
        """Create the worker pool and schedule the first arrival.

        A null process is a strict no-op: no tasks, no events, no RNG
        draws — the attached system is indistinguishable from one that
        never saw this source.
        """
        if self.process.is_null:
            return
        self._node = client_node
        self._meter = meter
        self._free = [client_node.create_task(f"open{i}")
                      for i in range(self.pool_size)]
        costs = client_node.default_costs
        self._drop_cost = costs.match
        self._reject_cost = costs.match + costs.process_reply
        self._defer_cost = costs.match
        # a zero-length probe draws nothing: it only asks the process
        # whether it can batch (stateless) or needs a persistent
        # stream (MMPP's modulating chain)
        self._batched = self.process.sample_gaps(self.rng, 0) is not None
        if not self._batched:
            self._stream = self.process.stream(self.rng)
        self._last_time = client_node.sim.now
        self._post_chunk()

    def _post_chunk(self) -> None:
        """Pregenerate up to ``ARRIVAL_CHUNK`` arrivals and bulk-post
        them as one presorted run.

        The gap draws come from the identical per-draw arithmetic the
        streaming path used (``sample_gaps`` is pinned bit-identical
        to ``stream``), and ``np.cumsum`` accumulates them exactly
        like the old ``now + gap`` walk, so the arrival timestamps are
        reproduced bit-for-bit.  Drawing a few gaps past the horizon
        is harmless: the traffic RNG feeds nothing else.
        """
        if self._batched:
            gaps = self.process.sample_gaps(self.rng, ARRIVAL_CHUNK)
        else:
            gaps = list(islice(self._stream, ARRIVAL_CHUNK))
        times = np.empty(len(gaps) + 1)
        times[0] = self._last_time
        times[1:] = gaps
        np.cumsum(times, out=times)
        arrivals = times[1:]
        cut = int(np.searchsorted(arrivals, self.horizon_us,
                                  side="right"))
        if cut < len(arrivals):
            self._exhausted = True
        if cut == 0:
            return
        self._last_time = float(arrivals[cut - 1])
        self._chunk_remaining = cut
        self._node.sim.post_run(arrivals[:cut].tolist(), self._arrive)

    def _new_message(self, client_id: int,
                     arrived_at: float) -> _OpenMessage:
        pool = self._message_pool
        if pool:
            message = pool.pop()
            message.client_id = client_id
            message.arrived_at = arrived_at
            message.dispatched_at = 0.0
            return message
        return _OpenMessage(client_id, arrived_at)

    # ------------------------------------------------------------------
    # arrival + admission
    # ------------------------------------------------------------------
    def _arrive(self) -> None:
        now = self._node.sim.now
        client = self._next_client
        self._next_client = (client + 1) % self.population
        meter = self._meter
        meter.record_offered(now)
        if self._free:
            meter.record_dispatched(now)
            self._dispatch(self._new_message(client, now))
        elif len(self._ingress) < self.queue_limit:
            meter.record_queued(now)
            self._ingress.append(self._new_message(client, now))
        else:
            # refusal: charge the MP for examining the message it is
            # about to turn away (costs precomputed at attach); the
            # drop path allocates no message object at all
            policy = self.policy
            if policy == "drop":
                self._charge_examination(self._drop_cost,
                                         "admission drop (MP)")
                meter.record_dropped(now)
            elif policy == "reject":
                self._charge_examination(self._reject_cost,
                                         "admission reject (MP)")
                meter.record_rejected(now)
            else:   # backpressure
                self._charge_examination(self._defer_cost,
                                         "admission defer (MP)")
                meter.record_deferred(now)
                self._overflow.append(self._new_message(client, now))
        remaining = self._chunk_remaining - 1
        self._chunk_remaining = remaining
        if not remaining and not self._exhausted:
            self._post_chunk()

    def _charge_examination(self, duration: float, label: str) -> None:
        """Charge the MP for examining a refused message — unless its
        examination backlog is already at ``examine_limit``, in which
        case the interface tail-drops: the refusal still happened (the
        meter recorded it) but a livelocked MP never saw the message,
        so no work is charged and memory stays bounded."""
        if self._examining >= self.examine_limit:
            self.tail_drops += 1
            return
        self._examining += 1
        self._node.processors.ipc.submit(
            duration, action=self._examination_done, label=label)

    def _examination_done(self) -> None:
        self._examining -= 1

    # ------------------------------------------------------------------
    # dispatch + completion
    # ------------------------------------------------------------------
    def _dispatch(self, message: _OpenMessage) -> None:
        worker = self._free.pop()
        message.dispatched_at = self._node.sim.now
        self.in_flight += 1
        self._node.kernel.send(
            worker, SERVICE_NAME,
            payload=("open", message.client_id),
            on_reply=lambda payload: self._on_reply(
                worker, message, payload))

    def _on_reply(self, worker: Task, message: _OpenMessage,
                  payload: object) -> None:
        now = self._node.sim.now
        self.in_flight -= 1
        if isinstance(payload, DeliveryFailure):
            self._meter.record_failure(message.arrived_at, now)
        else:
            self._meter.record_completion(
                message.arrived_at, message.dispatched_at, now)
        if len(self._message_pool) < _MESSAGE_POOL_MAX:
            self._message_pool.append(message)
        self._free.append(worker)
        if self._ingress:
            self._dispatch(self._ingress.popleft())
        # a freed ingress slot drains the backpressure overflow
        while self._overflow and len(self._ingress) < self.queue_limit:
            self._ingress.append(self._overflow.popleft())
            if self._free:
                self._dispatch(self._ingress.popleft())

    @property
    def backlog(self) -> int:
        """Messages admitted but not yet dispatched."""
        return len(self._ingress) + len(self._overflow)


@dataclass
class OpenBench:
    """A built-but-not-run open-arrival system."""

    system: DistributedSystem
    source: OpenTrafficSource
    meter: TrafficMeter
    closed_meter: ConversationMeter = field(
        default_factory=ConversationMeter)


def build_open_system(architecture: Architecture, mode: Mode,
                      process: ArrivalProcess, *,
                      servers: int = 2, mean_compute: float = 0.0,
                      pool_size: int = 32, queue_limit: int = 64,
                      policy: str = "drop",
                      deadline_us: float | None = None,
                      population: int = 1_000_000,
                      seed: int | None = None, hosts: int = 1,
                      faults: "FaultPlan | None" = None,
                      closed_conversations: int = 0,
                      measure_from: float = 0.0,
                      horizon_us: float = float("inf"),
                      examine_limit: int = 64,
                      relative_error: float = 0.01) -> OpenBench:
    """Assemble an open-arrival system without running it.

    The node layout and the server pool are built through the *same*
    seam as :func:`repro.kernel.workload.build_conversation_system`
    with the same RNG discipline, so for a null *process* and
    ``closed_conversations=k`` the result is bit-identical to the
    closed-loop builder's ``conversations=k`` system.  ``servers``
    only has to match ``closed_conversations`` in that identity
    configuration; an open run normally sizes them independently.
    """
    if servers < 1:
        raise TrafficError(f"servers must be >= 1, got {servers!r}")
    if faults is None:
        faults = config.default_fault_plan()
    seed = resolve_seed(seed, fallback=0)
    system = DistributedSystem(architecture, faults=faults)
    rng = random.Random(seed)

    client_node, server_node = build_benchmark_nodes(system, mode,
                                                     hosts)
    install_bench_service(server_node, servers, mean_compute, rng)

    closed_meter = ConversationMeter()
    for i in range(closed_conversations):
        client_task = client_node.create_task(f"client{i}")
        ClientProgram(client_node, client_task, closed_meter).start()

    meter = TrafficMeter(measure_from=measure_from,
                         deadline_us=deadline_us,
                         relative_error=relative_error)
    source = OpenTrafficSource(
        process, pool_size=pool_size, queue_limit=queue_limit,
        policy=policy, population=population, seed=seed,
        horizon_us=horizon_us, examine_limit=examine_limit)
    source.attach(client_node, meter)
    return OpenBench(system=system, source=source, meter=meter,
                     closed_meter=closed_meter)


def _sketch_stat(sketch, fn):
    return fn(sketch) if sketch.count else None


def run_open_experiment(architecture: Architecture, mode: Mode,
                        process: ArrivalProcess, *,
                        servers: int = 2, mean_compute: float = 0.0,
                        warmup_us: float = 200_000.0,
                        measure_us: float = 2_000_000.0,
                        drain: bool = True,
                        pool_size: int = 32, queue_limit: int = 64,
                        policy: str = "drop",
                        deadline_us: float | None = None,
                        population: int = 1_000_000,
                        seed: int | None = None, hosts: int = 1,
                        faults: "FaultPlan | None" = None,
                        examine_limit: int = 64,
                        relative_error: float = 0.01,
                        ) -> TrafficResult:
    """Offer *process* traffic for ``warmup_us + measure_us`` and
    measure the steady-state window.

    Arrivals stop at the horizon; with ``drain`` (the default) the
    simulation then runs on until in-flight work settles, so
    completion counters are not truncated mid-conversation.  Latency
    percentiles/counters cover the measurement window only; memory
    stays bounded by the quantile sketch regardless of how many
    messages were offered.
    """
    horizon = warmup_us + measure_us
    bench = build_open_system(
        architecture, mode, process, servers=servers,
        mean_compute=mean_compute, pool_size=pool_size,
        queue_limit=queue_limit, policy=policy,
        deadline_us=deadline_us, population=population, seed=seed,
        hosts=hosts, faults=faults, measure_from=warmup_us,
        horizon_us=horizon, examine_limit=examine_limit,
        relative_error=relative_error)
    system, source, meter = bench.system, bench.source, bench.meter
    with obs.span("kernel.run", architecture=architecture.name,
                  mode=mode.name, workload="open",
                  process=process.describe(), policy=policy):
        system.run_for(horizon)
        if drain:
            # arrivals have stopped; let the calendar empty so every
            # admitted message resolves (backpressure overflow included)
            system.sim.run()
    emit_busy_events(system)
    elapsed = system.now
    utilization = {name: node.utilization(elapsed)
                   for name, node in system.nodes.items()}
    return TrafficResult(
        architecture=architecture, mode=mode,
        process=process.describe(),
        offered_rate_per_us=process.mean_rate_per_us,
        policy=policy, servers=servers, pool_size=pool_size,
        queue_limit=queue_limit, deadline_us=deadline_us,
        population=population, warmup_us=warmup_us,
        measured_us=measure_us, counts=meter.measured,
        throughput_per_us=meter.throughput_per_us(measure_us),
        goodput_per_us=meter.goodput_per_us(measure_us),
        drop_rate=meter.drop_rate,
        deadline_miss_rate=meter.deadline_miss_rate,
        latency_p50=_sketch_stat(meter.latency,
                                 lambda s: s.quantile(0.50)),
        latency_p99=_sketch_stat(meter.latency,
                                 lambda s: s.quantile(0.99)),
        latency_p999=_sketch_stat(meter.latency,
                                  lambda s: s.quantile(0.999)),
        latency_mean=_sketch_stat(meter.latency, lambda s: s.mean()),
        queue_wait_p99=_sketch_stat(meter.queue_wait,
                                    lambda s: s.quantile(0.99)),
        utilization=utilization,
        events_processed=system.sim.events_processed,
        meter=meter)
