"""Pluggable open-arrival processes for the traffic engine.

Every process is a frozen, picklable specification; the *stream* of
interarrival times is produced by :meth:`ArrivalProcess.stream` from a
:class:`random.Random` the engine seeds, so two engines built from the
same seed draw bit-identical arrival timestamps (the determinism
contract tested in ``tests/traffic/test_determinism.py``).

The contract every process honours:

* ``mean_rate_per_us`` is the long-run mean arrival rate (arrivals per
  simulated microsecond).  A zero rate is valid on every process and
  means *no arrivals at all*: the engine then attaches nothing to the
  system and consumes no randomness, which is what makes the zero-rate
  open workload reduce bit-identically to the closed-loop path.
* ``stream(rng)`` yields strictly finite, non-negative interarrival
  gaps (microseconds) forever; the engine stops drawing at its
  horizon.
* Specifications validate loudly at construction
  (:class:`~repro.errors.TrafficError`), not at first draw.

Three shapes cover the regimes of interest: :class:`PoissonArrivals`
(memoryless baseline), :class:`MMPPArrivals` (bursty on/off
Markov-modulated Poisson — hot-spot load), and
:class:`ParetoArrivals` (heavy-tailed interarrivals — the regime where
mean-only metrics hide the knee).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import TrafficError


def _check_rate(rate: float, what: str = "rate_per_us") -> float:
    rate = float(rate)
    if not math.isfinite(rate) or rate < 0.0:
        raise TrafficError(
            f"{what} must be finite and >= 0, got {rate!r}")
    return rate


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: a seed-deterministic stream of interarrival gaps."""

    def stream(self, rng: random.Random) -> Iterator[float]:
        raise NotImplementedError

    def sample_gaps(self, rng: random.Random,
                    n: int) -> list[float] | None:
        """Draw *n* interarrival gaps as one batch, or ``None``.

        A batch-capable (stateless) process returns a list of *n* gaps
        drawn from *rng* **bit-identically** to *n* ``next()`` calls on
        a fresh :meth:`stream` over the same *rng* — same draws, same
        order, same float arithmetic (the engine's chunked hot path
        depends on this; ``tests/traffic/test_arrivals.py`` pins it).
        Stateful processes (MMPP's modulating chain) return ``None``
        and the engine falls back to slicing one persistent stream.
        """
        return None

    @property
    def mean_rate_per_us(self) -> float:
        """Long-run mean arrivals per microsecond."""
        raise NotImplementedError

    @property
    def is_null(self) -> bool:
        """True when the process can never produce an arrival."""
        return self.mean_rate_per_us == 0.0

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential interarrival gaps."""

    rate_per_us: float

    def __post_init__(self):
        _check_rate(self.rate_per_us)

    def stream(self, rng: random.Random) -> Iterator[float]:
        rate = self.rate_per_us
        while True:
            yield rng.expovariate(rate) if rate > 0.0 else math.inf

    def sample_gaps(self, rng: random.Random, n: int) -> list[float]:
        rate = self.rate_per_us
        if rate <= 0.0:
            return [math.inf] * n
        expovariate = rng.expovariate
        return [expovariate(rate) for _ in range(n)]

    @property
    def mean_rate_per_us(self) -> float:
        return self.rate_per_us

    def describe(self) -> str:
        return f"poisson({self.rate_per_us * 1e3:g} msgs/ms)"


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Two-state on/off Markov-modulated Poisson process.

    The modulating chain alternates between an *on* state (rate
    ``rate_on_per_us``) and an *off* state (``rate_off_per_us``,
    typically much smaller or zero) with exponentially distributed
    dwell times — the canonical bursty-traffic model.  Candidate
    arrivals are drawn per state; a candidate falling beyond the
    state's residual dwell is discarded and the draw restarts in the
    next state, preserving the exponential-gap property within each
    state.
    """

    rate_on_per_us: float
    rate_off_per_us: float
    mean_on_us: float
    mean_off_us: float

    def __post_init__(self):
        _check_rate(self.rate_on_per_us, "rate_on_per_us")
        _check_rate(self.rate_off_per_us, "rate_off_per_us")
        for name in ("mean_on_us", "mean_off_us"):
            value = float(getattr(self, name))
            if not math.isfinite(value) or value <= 0.0:
                raise TrafficError(
                    f"{name} must be finite and > 0, got {value!r}")

    def stream(self, rng: random.Random) -> Iterator[float]:
        on = True
        residual = rng.expovariate(1.0 / self.mean_on_us)
        gap = 0.0
        while True:
            rate = self.rate_on_per_us if on else self.rate_off_per_us
            candidate = rng.expovariate(rate) if rate > 0.0 \
                else math.inf
            if candidate <= residual:
                residual -= candidate
                yield gap + candidate
                gap = 0.0
            else:
                gap += residual
                on = not on
                mean = self.mean_on_us if on else self.mean_off_us
                residual = rng.expovariate(1.0 / mean)

    @property
    def mean_rate_per_us(self) -> float:
        cycle = self.mean_on_us + self.mean_off_us
        return (self.rate_on_per_us * self.mean_on_us
                + self.rate_off_per_us * self.mean_off_us) / cycle

    @property
    def is_null(self) -> bool:
        return self.rate_on_per_us == 0.0 and \
            self.rate_off_per_us == 0.0

    def describe(self) -> str:
        return (f"mmpp(on {self.rate_on_per_us * 1e3:g}/"
                f"off {self.rate_off_per_us * 1e3:g} msgs/ms, "
                f"dwell {self.mean_on_us:g}/{self.mean_off_us:g} us)")


@dataclass(frozen=True)
class ParetoArrivals(ArrivalProcess):
    """Heavy-tailed interarrivals: Pareto(alpha) gaps, matched mean.

    ``alpha`` is the tail index; ``alpha <= 1`` has no finite mean and
    is rejected.  The scale is chosen so the mean gap is
    ``1 / rate_per_us``, making the offered-load axis directly
    comparable with the Poisson baseline while the variance (infinite
    for ``alpha <= 2``) stresses the tail of every latency metric.
    """

    rate_per_us: float
    alpha: float = 1.5

    def __post_init__(self):
        _check_rate(self.rate_per_us)
        alpha = float(self.alpha)
        if not math.isfinite(alpha) or alpha <= 1.0:
            raise TrafficError(
                f"Pareto tail index alpha must be > 1 (finite mean), "
                f"got {alpha!r}")

    @property
    def scale_us(self) -> float:
        """Minimum gap x_m with mean x_m * alpha / (alpha - 1)."""
        if self.rate_per_us == 0.0:
            return math.inf
        return (self.alpha - 1.0) / (self.alpha * self.rate_per_us)

    def stream(self, rng: random.Random) -> Iterator[float]:
        scale, inv_alpha = self.scale_us, 1.0 / self.alpha
        while True:
            yield scale * (1.0 - rng.random()) ** -inv_alpha

    def sample_gaps(self, rng: random.Random, n: int) -> list[float]:
        scale, inv_alpha = self.scale_us, 1.0 / self.alpha
        random_ = rng.random
        return [scale * (1.0 - random_()) ** -inv_alpha
                for _ in range(n)]

    @property
    def mean_rate_per_us(self) -> float:
        return self.rate_per_us

    def describe(self) -> str:
        return (f"pareto({self.rate_per_us * 1e3:g} msgs/ms, "
                f"alpha={self.alpha:g})")


#: CLI spelling -> constructor, the `repro traffic --process` choices.
PROCESS_NAMES = ("poisson", "mmpp", "pareto")


def make_process(name: str, rate_per_us: float, *,
                 alpha: float = 1.5,
                 burst_ratio: float = 4.0,
                 mean_on_us: float = 20_000.0,
                 mean_off_us: float = 60_000.0) -> ArrivalProcess:
    """Build a named process at a target *mean* rate.

    For ``mmpp`` the on/off rates are derived from ``burst_ratio``
    (peak rate over mean rate) with the off rate solved so the
    time-weighted mean equals *rate_per_us* exactly; the derivation is
    validated (a ratio too large for the duty cycle would need a
    negative off rate and is rejected).
    """
    rate_per_us = _check_rate(rate_per_us)
    if name == "poisson":
        return PoissonArrivals(rate_per_us)
    if name == "pareto":
        return ParetoArrivals(rate_per_us, alpha=alpha)
    if name == "mmpp":
        if burst_ratio < 1.0:
            raise TrafficError(
                f"burst_ratio must be >= 1, got {burst_ratio!r}")
        cycle = mean_on_us + mean_off_us
        rate_on = burst_ratio * rate_per_us
        rate_off = (rate_per_us * cycle - rate_on * mean_on_us) \
            / mean_off_us
        if rate_off < 0.0:
            raise TrafficError(
                f"burst_ratio {burst_ratio:g} is impossible at duty "
                f"cycle {mean_on_us / cycle:.2f} (off rate would be "
                "negative); lower the ratio or the on-dwell")
        return MMPPArrivals(rate_on, rate_off, mean_on_us, mean_off_us)
    raise TrafficError(
        f"unknown arrival process {name!r}; "
        f"choose from {', '.join(PROCESS_NAMES)}")
