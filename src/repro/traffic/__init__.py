"""Open-arrival traffic: workload generation beyond the closed loop.

The paper evaluates architectures with *k* patient closed-loop clients
(§6.3) under never-saturated-network assumptions (§6.6.4).  This
package drives the same kernel DES with *open* arrivals — load offered
by an external process regardless of system state — which is the
regime where admission control, bounded queues, and tail latency
separate the architectures:

* :mod:`~repro.traffic.arrivals` — pluggable arrival processes
  (Poisson / bursty MMPP / heavy-tailed Pareto), seed-deterministic.
* :mod:`~repro.traffic.engine` — session-multiplexed client
  population over a bounded task pool, bounded MP ingress queue,
  drop/reject/backpressure admission charged with Table 6.x times.
* :mod:`~repro.traffic.metrics` — streaming counters +
  :class:`~repro.obs.metrics.QuantileSketch` latency distributions
  (p50/p99/p999 in bounded memory), goodput/drop/deadline-miss rates.
* :mod:`~repro.traffic.experiments` — the registered knee sweep
  (``traffic-knee-quick`` / ``traffic-knee``) and chaos-under-load
  (``traffic-chaos``).
"""

from repro.traffic.arrivals import (ArrivalProcess, MMPPArrivals,
                                    ParetoArrivals, PoissonArrivals,
                                    PROCESS_NAMES, make_process)
from repro.traffic.engine import (OpenBench, OpenTrafficSource,
                                  POLICY_NAMES, build_open_system,
                                  run_open_experiment)
from repro.traffic.metrics import (TrafficCounts, TrafficMeter,
                                   TrafficResult, phase_breakdown)

__all__ = [
    "ArrivalProcess", "PoissonArrivals", "MMPPArrivals",
    "ParetoArrivals", "PROCESS_NAMES", "make_process",
    "OpenBench", "OpenTrafficSource", "POLICY_NAMES",
    "build_open_system", "run_open_experiment",
    "TrafficCounts", "TrafficMeter", "TrafficResult",
    "phase_breakdown",
]
