"""Streaming measurement for open-arrival runs: no sample retention.

The closed-loop :class:`~repro.kernel.metrics.ConversationMeter` keeps
every :class:`~repro.kernel.metrics.RoundTripSample`; at a million
offered messages that is a million dataclass instances before the
first percentile query.  :class:`TrafficMeter` keeps *counters and
sketches only*: per-event it does O(1) work and holds O(bins) memory
(:class:`~repro.obs.metrics.QuantileSketch`, declared relative error),
which is what lets the CI smoke run offer 10^6 messages in bounded
memory.

Phases: total latency is measured from *arrival* (the offered
timestamp) to completion, so ingress-queue wait is part of what a
client of the system would see; the same event also feeds separate
``queue_wait`` (arrival -> dispatch) and ``service`` (dispatch ->
completion) sketches, the per-phase breakdown.  A deeper per-activity
split (syscall vs kernel processing vs DMA) comes from the sim-time
``kernel.work`` obs stream via :func:`phase_breakdown`, keyed by the
same work-item labels ``repro stats`` reconciles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TrafficError
from repro.obs.metrics import QuantileSketch

#: Tail quantiles every traffic artifact reports.
TAIL_QUANTILES = (0.50, 0.99, 0.999)

#: ``kernel.work`` label prefix -> round-trip phase, the breakdown
#: EXPERIMENTS.md walks through over a recorded trace.  Unlisted
#: labels (application compute, protocol retransmissions) fall into
#: "other" so the phase sums always reconcile with total busy time.
WORK_LABEL_PHASES = (
    ("syscall", "syscall"),
    ("process", "kernel processing"),
    ("match", "kernel processing"),
    ("cleanup client", "kernel processing"),
    ("restart", "scheduling"),
    ("DMA", "network DMA"),
    ("admission", "admission control"),
    ("compute", "application compute"),
)


def classify_work_label(label: str) -> str:
    """Map one ``kernel.work`` label to its round-trip phase."""
    for prefix, phase in WORK_LABEL_PHASES:
        if label.startswith(prefix):
            return phase
    return "other"


def phase_breakdown(records) -> dict[str, float]:
    """Sum sim-time ``kernel.work`` events into per-phase busy time.

    *records* is an iterable of JSONL record dicts as read by
    :func:`repro.obs.export.read_jsonl`; only ``kernel.work`` events
    contribute.  Returns ``{phase: busy_us}``.
    """
    phases: dict[str, float] = {}
    for record in records:
        if record.get("type") != "event" or \
                record.get("name") != "kernel.work":
            continue
        attrs = record.get("attrs", {})
        phase = classify_work_label(attrs.get("label", ""))
        phases[phase] = phases.get(phase, 0.0) \
            + attrs.get("duration_us", 0.0)
    return phases


@dataclass
class TrafficCounts:
    """Event totals over one accounting window."""

    offered: int = 0
    dispatched: int = 0        # handed a free worker immediately
    queued: int = 0            # admitted into the bounded ingress queue
    dropped: int = 0
    rejected: int = 0
    deferred: int = 0          # backpressure: parked upstream
    completed: int = 0
    failed: int = 0            # transport DeliveryFailure
    deadline_misses: int = 0
    goodput: int = 0           # completed within deadline

    @property
    def admitted(self) -> int:
        return self.dispatched + self.queued + self.deferred

    def as_dict(self) -> dict:
        return {
            "offered": self.offered, "dispatched": self.dispatched,
            "queued": self.queued, "dropped": self.dropped,
            "rejected": self.rejected, "deferred": self.deferred,
            "completed": self.completed, "failed": self.failed,
            "deadline_misses": self.deadline_misses,
            "goodput": self.goodput,
        }

    def signature(self) -> tuple:
        return tuple(sorted(self.as_dict().items()))


class TrafficMeter:
    """Collects open-arrival outcomes as counters + quantile sketches.

    ``measure_from`` splits warmup from measurement: offered/admission
    events are attributed by *arrival* time, completion events by
    *completion* time (mirroring the closed meter's window semantics).
    Both windows keep full counters; only the measurement window feeds
    the latency sketches.
    """

    def __init__(self, *, measure_from: float = 0.0,
                 deadline_us: float | None = None,
                 relative_error: float = 0.01):
        if deadline_us is not None and deadline_us <= 0:
            raise TrafficError(
                f"deadline_us must be > 0, got {deadline_us!r}")
        self.measure_from = measure_from
        self.deadline_us = deadline_us
        self.warmup = TrafficCounts()
        self.measured = TrafficCounts()
        self.latency = QuantileSketch(relative_error)
        self.queue_wait = QuantileSketch(relative_error)
        self.service = QuantileSketch(relative_error)

    # ------------------------------------------------------------------
    # admission-side events (attributed by arrival time)
    # ------------------------------------------------------------------
    def _window(self, time: float) -> TrafficCounts:
        return self.measured if time >= self.measure_from \
            else self.warmup

    def record_offered(self, arrived_at: float) -> None:
        self._window(arrived_at).offered += 1

    def record_dispatched(self, arrived_at: float) -> None:
        self._window(arrived_at).dispatched += 1

    def record_queued(self, arrived_at: float) -> None:
        self._window(arrived_at).queued += 1

    def record_dropped(self, arrived_at: float) -> None:
        self._window(arrived_at).dropped += 1

    def record_rejected(self, arrived_at: float) -> None:
        self._window(arrived_at).rejected += 1

    def record_deferred(self, arrived_at: float) -> None:
        self._window(arrived_at).deferred += 1

    # ------------------------------------------------------------------
    # completion-side events (attributed by completion time)
    # ------------------------------------------------------------------
    def record_completion(self, arrived_at: float, dispatched_at: float,
                          completed_at: float) -> None:
        if completed_at < arrived_at or dispatched_at < arrived_at:
            raise TrafficError("completion before arrival")
        counts = self._window(completed_at)
        counts.completed += 1
        latency = completed_at - arrived_at
        missed = self.deadline_us is not None \
            and latency > self.deadline_us
        if missed:
            counts.deadline_misses += 1
        else:
            counts.goodput += 1
        if counts is self.measured:
            self.latency.add(latency)
            self.queue_wait.add(dispatched_at - arrived_at)
            self.service.add(completed_at - dispatched_at)

    def record_failure(self, arrived_at: float,
                       failed_at: float) -> None:
        if failed_at < arrived_at:
            raise TrafficError("failure before arrival")
        self._window(failed_at).failed += 1

    # ------------------------------------------------------------------
    # derived rates over the measurement window
    # ------------------------------------------------------------------
    def throughput_per_us(self, measured_us: float) -> float:
        if measured_us <= 0:
            raise TrafficError("empty measurement window")
        return self.measured.completed / measured_us

    def goodput_per_us(self, measured_us: float) -> float:
        if measured_us <= 0:
            raise TrafficError("empty measurement window")
        return self.measured.goodput / measured_us

    @property
    def drop_rate(self) -> float:
        """(dropped + rejected) / offered over the window (0 if idle)."""
        counts = self.measured
        if counts.offered == 0:
            return 0.0
        return (counts.dropped + counts.rejected) / counts.offered

    @property
    def deadline_miss_rate(self) -> float:
        """Misses / completions over the window (0 when none
        completed)."""
        counts = self.measured
        if counts.completed == 0:
            return 0.0
        return counts.deadline_misses / counts.completed

    def signature(self) -> tuple:
        """Exact digest of everything recorded — the determinism and
        identity comparisons (two behaviourally identical runs must
        produce equal signatures, bit for bit)."""
        return (self.warmup.signature(), self.measured.signature(),
                self.latency.signature(), self.queue_wait.signature(),
                self.service.signature())


@dataclass(frozen=True)
class TrafficResult:
    """Measured outcome of one open-arrival experiment."""

    architecture: object                 # models.params.Architecture
    mode: object                         # models.params.Mode
    process: str                         # ArrivalProcess.describe()
    offered_rate_per_us: float           # mean configured rate
    policy: str
    servers: int
    pool_size: int
    queue_limit: int
    deadline_us: float | None
    population: int
    warmup_us: float
    measured_us: float
    counts: TrafficCounts
    throughput_per_us: float
    goodput_per_us: float
    drop_rate: float
    deadline_miss_rate: float
    latency_p50: float | None
    latency_p99: float | None
    latency_p999: float | None
    latency_mean: float | None
    queue_wait_p99: float | None
    utilization: dict[str, dict[str, float]]
    events_processed: int
    meter: TrafficMeter = field(repr=False, compare=False,
                                default=None)

    @property
    def offered_rate_per_ms(self) -> float:
        return self.offered_rate_per_us * 1e3

    @property
    def throughput_per_ms(self) -> float:
        return self.throughput_per_us * 1e3

    @property
    def goodput_per_ms(self) -> float:
        return self.goodput_per_us * 1e3
