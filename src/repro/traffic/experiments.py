"""Registered open-arrival experiments: the knee and chaos-under-load.

The knee sweep is the open-loop counterpart of figures 6.18-6.23: each
architecture is offered Poisson traffic at fractions of its *exact*
closed-loop capacity (from :func:`repro.models.solve.solve`), so the
x-axis is directly comparable across architectures and the knee —
where p99/p999 latency departs from the flat region and drops begin —
appears at the same relative position the analytical model predicts
saturation.  Points fan out over :func:`repro.perf.backends.map_sweep`
like every other sweep (``--jobs``), with identical results at any
job count.

Chaos-under-load composes :mod:`repro.faults` with a bursty MMPP
spike: packet loss all along, plus a server-node outage timed inside
the spike, reported as a before/during/after phase table.

All runners honour the global traffic knobs (``--duration`` /
``--deadline`` / ``--queue-limit`` and their environment variables);
the knobs are resolved in the parent so pool workers see explicit
values.
"""

from __future__ import annotations

from repro import config
from repro.experiments.reporting import Figure, Series, Table
from repro.faults.chaos import CHAOS_POLICY
from repro.faults.plan import FaultPlan
from repro.faults.schedule import NodeOutage, PacketFaultSpec
from repro.models.params import Architecture, Mode
from repro.models.solve import solve
from repro.perf.backends import last_map_info, map_sweep
from repro.seeding import resolve_seed
from repro.traffic.arrivals import MMPPArrivals, PoissonArrivals
from repro.traffic.engine import run_open_experiment
from repro.traffic.metrics import TrafficResult

#: Offered load as fractions of the exact closed-loop capacity; spans
#: the flat region, the knee, and past saturation.
DEFAULT_LOAD_FRACTIONS = (0.2, 0.5, 0.8, 1.0, 1.2, 1.5)

QUICK_ARCHITECTURES = (Architecture.II,)
FULL_ARCHITECTURES = (Architecture.I, Architecture.II,
                      Architecture.III, Architecture.IV)

#: Defaults a set ``--queue-limit`` / ``--deadline`` knob overrides.
DEFAULT_QUEUE_LIMIT = 64
DEFAULT_SERVERS = 4
DEFAULT_POOL = 32


def closed_loop_capacity(architecture: Architecture, mode: Mode,
                         servers: int,
                         mean_compute: float = 0.0) -> float:
    """Exact saturated throughput (round trips per us) with *servers*
    conversations — the load axis is normalised to this."""
    return solve(architecture, mode, servers,
                 compute_time=mean_compute).throughput


def _knee_point(architecture: Architecture, mode: Mode,
                fraction: float, rate_per_us: float, servers: int,
                mean_compute: float, queue_bound: int,
                deadline_us: float | None, seed: int,
                warmup_us: float,
                measure_us: float) -> TrafficResult:
    """One picklable grid point for :func:`map_sweep`."""
    return run_open_experiment(
        architecture, mode, PoissonArrivals(rate_per_us),
        servers=servers, mean_compute=mean_compute,
        warmup_us=warmup_us, measure_us=measure_us,
        pool_size=DEFAULT_POOL, queue_limit=queue_bound,
        policy="drop", deadline_us=deadline_us, seed=seed)


def _pool_note() -> str:
    info = last_map_info()
    if info is None or info.mode == "serial":
        reason = info.reason if info is not None else "no sweep ran"
        return f"sweep ran serially ({reason})"
    return (f"sweep ran on {info.jobs_used} workers, chunk size "
            f"{info.chunk_size}")


def knee_figure(experiment_id: str,
                architectures=QUICK_ARCHITECTURES, *,
                mode: Mode = Mode.LOCAL,
                fractions=DEFAULT_LOAD_FRACTIONS,
                servers: int = DEFAULT_SERVERS,
                mean_compute: float = 0.0,
                seed: int | None = None,
                warmup_us: float = 100_000.0,
                measure_us: float = 1_000_000.0,
                jobs: int | None = None) -> Figure:
    """Offered load vs tail latency / goodput across architectures."""
    architectures = tuple(architectures)
    fractions = tuple(sorted(fractions))
    seed = resolve_seed(seed, fallback=0)
    measure_us = config.duration() or measure_us
    deadline_us = config.deadline()
    queue_bound = config.queue_limit() or DEFAULT_QUEUE_LIMIT

    points = []
    for arch in architectures:
        capacity = closed_loop_capacity(arch, mode, servers,
                                        mean_compute)
        for fraction in fractions:
            points.append((arch, mode, fraction, fraction * capacity,
                           servers, mean_compute, queue_bound,
                           deadline_us, seed, warmup_us, measure_us))
    results = map_sweep(_knee_point, points, jobs=jobs, star=True)

    series = []
    it = iter(results)
    for arch in architectures:
        arch_results = [next(it) for _f in fractions]
        xs = list(fractions)
        for label, values in (
                ("p50 (us)", [r.latency_p50 for r in arch_results]),
                ("p99 (us)", [r.latency_p99 for r in arch_results]),
                ("p999 (us)", [r.latency_p999 for r in arch_results]),
                ("goodput (msgs/ms)",
                 [r.goodput_per_ms for r in arch_results]),
                ("drop rate",
                 [r.drop_rate for r in arch_results]),
                ("deadline-miss rate",
                 [r.deadline_miss_rate for r in arch_results])):
            series.append(Series(f"arch {arch.name} {label}", xs,
                                 values))
    notes = [
        "x = offered load as a fraction of the exact closed-loop "
        f"capacity with {servers} conversations "
        "(repro.models.solve); knee at x ~ 1 by construction",
        f"Poisson arrivals, {mode.name.lower()} mode, drop policy, "
        f"queue limit {queue_bound}, worker pool {DEFAULT_POOL}, "
        f"seed={seed}",
        f"measured {measure_us:g} us after {warmup_us:g} us warmup; "
        "latencies include ingress-queue wait",
        ("deadline " + format(deadline_us, "g") + " us")
        if deadline_us else "no deadline set (--deadline)",
        _pool_note()]
    return Figure(
        experiment_id=experiment_id,
        title="Open-arrival load/latency knee "
              f"({'/'.join(a.name for a in architectures)})",
        x_label="offered load (fraction of closed-loop capacity)",
        y_label="latency (us) / goodput / rates",
        series=series, notes=notes)


def knee_quick_figure(**kwargs) -> Figure:
    return knee_figure("traffic-knee-quick", QUICK_ARCHITECTURES,
                       **kwargs)


def knee_full_figure(**kwargs) -> Figure:
    return knee_figure("traffic-knee", FULL_ARCHITECTURES, **kwargs)


def chaos_under_load_table(architecture: Architecture =
                           Architecture.II, *,
                           servers: int = DEFAULT_SERVERS,
                           loss_rate: float = 0.01,
                           seed: int | None = None,
                           spike_start_us: float = 300_000.0,
                           spike_end_us: float = 600_000.0,
                           horizon_us: float = 900_000.0) -> Table:
    """Traffic spike + packet loss + outage, composed.

    A bursty MMPP source (on-state at several times the sustainable
    rate, dwell times sized so bursts and lulls both occur within the
    horizon) runs over a lossy network while the server node rides
    through a crash/recovery; rejections, deadline misses, and
    failures tell apart admission control (load shedding) from the
    retransmission protocol (fault masking).
    """
    seed = resolve_seed(seed, fallback=0)
    measure_us = config.duration()
    if measure_us:
        horizon_us = measure_us
        spike_start_us = horizon_us / 3.0
        spike_end_us = 2.0 * horizon_us / 3.0
    deadline_us = config.deadline() or 5_000.0
    queue_bound = config.queue_limit() or 16

    capacity = closed_loop_capacity(architecture, Mode.NONLOCAL,
                                    servers)
    base_rate = config.arrival_rate()
    base = base_rate / 1e3 if base_rate else 0.3 * capacity
    spike = MMPPArrivals(
        rate_on_per_us=3.0 * capacity, rate_off_per_us=base,
        mean_on_us=spike_end_us - spike_start_us,
        mean_off_us=spike_start_us)
    outage_start = spike_start_us + (spike_end_us - spike_start_us) / 3
    outage_end = spike_start_us + 2 * (spike_end_us - spike_start_us) / 3
    plan = FaultPlan(
        spec=PacketFaultSpec(drop_rate=loss_rate),
        outages=(NodeOutage("servers", outage_start, outage_end),),
        policy=CHAOS_POLICY, seed=seed)

    result = run_open_experiment(
        architecture, Mode.NONLOCAL, spike, servers=servers,
        warmup_us=0.0, measure_us=horizon_us, pool_size=DEFAULT_POOL,
        queue_limit=queue_bound, policy="reject",
        deadline_us=deadline_us, seed=seed, faults=plan)
    counts = result.counts
    rows = [
        ["offered", counts.offered],
        ["admitted", counts.admitted],
        ["completed", counts.completed],
        ["goodput (in deadline)", counts.goodput],
        ["rejected (admission)", counts.rejected],
        ["failed (transport)", counts.failed],
        ["deadline misses", counts.deadline_misses],
        ["p50 latency (us)", result.latency_p50],
        ["p99 latency (us)", result.latency_p99],
        ["p999 latency (us)", result.latency_p999],
    ]
    return Table(
        experiment_id="traffic-chaos",
        title="Chaos under load: MMPP spike + packet loss + outage",
        headers=["metric", "value"],
        rows=rows,
        notes=[
            f"arch {architecture.name} non-local, {servers} servers; "
            f"MMPP bursts at 3x closed-loop capacity (mean on dwell "
            f"{spike_end_us - spike_start_us:g} us) over a "
            f"{horizon_us:g} us run",
            f"packet loss {loss_rate:g}, server outage on "
            f"[{outage_start:g}, {outage_end:g}) us",
            f"reject policy, queue limit {queue_bound}, deadline "
            f"{deadline_us:g} us, seed={seed}",
            "rejections are admission control shedding load; "
            "failures are the retransmission protocol giving up"])
